file(REMOVE_RECURSE
  "CMakeFiles/vecdb_shell.dir/vecdb_shell.cpp.o"
  "CMakeFiles/vecdb_shell.dir/vecdb_shell.cpp.o.d"
  "vecdb_shell"
  "vecdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
