# Empty compiler generated dependencies file for vecdb_shell.
# This may be replaced when dependencies are built.
