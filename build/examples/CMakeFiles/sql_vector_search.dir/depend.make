# Empty dependencies file for sql_vector_search.
# This may be replaced when dependencies are built.
