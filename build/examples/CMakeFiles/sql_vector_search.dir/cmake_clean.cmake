file(REMOVE_RECURSE
  "CMakeFiles/sql_vector_search.dir/sql_vector_search.cpp.o"
  "CMakeFiles/sql_vector_search.dir/sql_vector_search.cpp.o.d"
  "sql_vector_search"
  "sql_vector_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_vector_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
