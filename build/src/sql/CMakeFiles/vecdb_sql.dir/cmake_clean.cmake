file(REMOVE_RECURSE
  "CMakeFiles/vecdb_sql.dir/database.cc.o"
  "CMakeFiles/vecdb_sql.dir/database.cc.o.d"
  "CMakeFiles/vecdb_sql.dir/lexer.cc.o"
  "CMakeFiles/vecdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/vecdb_sql.dir/parser.cc.o"
  "CMakeFiles/vecdb_sql.dir/parser.cc.o.d"
  "libvecdb_sql.a"
  "libvecdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
