file(REMOVE_RECURSE
  "libvecdb_sql.a"
)
