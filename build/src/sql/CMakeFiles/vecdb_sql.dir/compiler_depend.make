# Empty compiler generated dependencies file for vecdb_sql.
# This may be replaced when dependencies are built.
