# Empty dependencies file for vecdb_common.
# This may be replaced when dependencies are built.
