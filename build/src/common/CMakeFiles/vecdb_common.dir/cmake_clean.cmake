file(REMOVE_RECURSE
  "CMakeFiles/vecdb_common.dir/random.cc.o"
  "CMakeFiles/vecdb_common.dir/random.cc.o.d"
  "CMakeFiles/vecdb_common.dir/serialize.cc.o"
  "CMakeFiles/vecdb_common.dir/serialize.cc.o.d"
  "CMakeFiles/vecdb_common.dir/status.cc.o"
  "CMakeFiles/vecdb_common.dir/status.cc.o.d"
  "CMakeFiles/vecdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/vecdb_common.dir/thread_pool.cc.o.d"
  "libvecdb_common.a"
  "libvecdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
