file(REMOVE_RECURSE
  "libvecdb_common.a"
)
