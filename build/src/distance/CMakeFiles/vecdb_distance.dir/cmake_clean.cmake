file(REMOVE_RECURSE
  "CMakeFiles/vecdb_distance.dir/kernels.cc.o"
  "CMakeFiles/vecdb_distance.dir/kernels.cc.o.d"
  "CMakeFiles/vecdb_distance.dir/sgemm.cc.o"
  "CMakeFiles/vecdb_distance.dir/sgemm.cc.o.d"
  "libvecdb_distance.a"
  "libvecdb_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
