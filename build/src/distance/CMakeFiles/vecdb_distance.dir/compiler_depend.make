# Empty compiler generated dependencies file for vecdb_distance.
# This may be replaced when dependencies are built.
