file(REMOVE_RECURSE
  "libvecdb_distance.a"
)
