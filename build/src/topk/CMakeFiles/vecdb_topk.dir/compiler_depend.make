# Empty compiler generated dependencies file for vecdb_topk.
# This may be replaced when dependencies are built.
