file(REMOVE_RECURSE
  "libvecdb_topk.a"
)
