file(REMOVE_RECURSE
  "CMakeFiles/vecdb_topk.dir/heaps.cc.o"
  "CMakeFiles/vecdb_topk.dir/heaps.cc.o.d"
  "libvecdb_topk.a"
  "libvecdb_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
