# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("distance")
subdirs("topk")
subdirs("clustering")
subdirs("quantizer")
subdirs("datasets")
subdirs("faisslike")
subdirs("pgstub")
subdirs("pase")
subdirs("bridge")
subdirs("sql")
subdirs("core")
