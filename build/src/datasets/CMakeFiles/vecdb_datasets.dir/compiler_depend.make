# Empty compiler generated dependencies file for vecdb_datasets.
# This may be replaced when dependencies are built.
