
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/ground_truth.cc" "src/datasets/CMakeFiles/vecdb_datasets.dir/ground_truth.cc.o" "gcc" "src/datasets/CMakeFiles/vecdb_datasets.dir/ground_truth.cc.o.d"
  "/root/repo/src/datasets/io.cc" "src/datasets/CMakeFiles/vecdb_datasets.dir/io.cc.o" "gcc" "src/datasets/CMakeFiles/vecdb_datasets.dir/io.cc.o.d"
  "/root/repo/src/datasets/registry.cc" "src/datasets/CMakeFiles/vecdb_datasets.dir/registry.cc.o" "gcc" "src/datasets/CMakeFiles/vecdb_datasets.dir/registry.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/datasets/CMakeFiles/vecdb_datasets.dir/synthetic.cc.o" "gcc" "src/datasets/CMakeFiles/vecdb_datasets.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/vecdb_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vecdb_topk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
