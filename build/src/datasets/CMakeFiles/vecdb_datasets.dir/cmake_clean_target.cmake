file(REMOVE_RECURSE
  "libvecdb_datasets.a"
)
