file(REMOVE_RECURSE
  "CMakeFiles/vecdb_datasets.dir/ground_truth.cc.o"
  "CMakeFiles/vecdb_datasets.dir/ground_truth.cc.o.d"
  "CMakeFiles/vecdb_datasets.dir/io.cc.o"
  "CMakeFiles/vecdb_datasets.dir/io.cc.o.d"
  "CMakeFiles/vecdb_datasets.dir/registry.cc.o"
  "CMakeFiles/vecdb_datasets.dir/registry.cc.o.d"
  "CMakeFiles/vecdb_datasets.dir/synthetic.cc.o"
  "CMakeFiles/vecdb_datasets.dir/synthetic.cc.o.d"
  "libvecdb_datasets.a"
  "libvecdb_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
