file(REMOVE_RECURSE
  "libvecdb_pgstub.a"
)
