# Empty dependencies file for vecdb_pgstub.
# This may be replaced when dependencies are built.
