file(REMOVE_RECURSE
  "CMakeFiles/vecdb_pgstub.dir/bufmgr.cc.o"
  "CMakeFiles/vecdb_pgstub.dir/bufmgr.cc.o.d"
  "CMakeFiles/vecdb_pgstub.dir/heap_table.cc.o"
  "CMakeFiles/vecdb_pgstub.dir/heap_table.cc.o.d"
  "CMakeFiles/vecdb_pgstub.dir/index_am.cc.o"
  "CMakeFiles/vecdb_pgstub.dir/index_am.cc.o.d"
  "CMakeFiles/vecdb_pgstub.dir/page.cc.o"
  "CMakeFiles/vecdb_pgstub.dir/page.cc.o.d"
  "CMakeFiles/vecdb_pgstub.dir/smgr.cc.o"
  "CMakeFiles/vecdb_pgstub.dir/smgr.cc.o.d"
  "CMakeFiles/vecdb_pgstub.dir/wal.cc.o"
  "CMakeFiles/vecdb_pgstub.dir/wal.cc.o.d"
  "libvecdb_pgstub.a"
  "libvecdb_pgstub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_pgstub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
