
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pgstub/bufmgr.cc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/bufmgr.cc.o" "gcc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/bufmgr.cc.o.d"
  "/root/repo/src/pgstub/heap_table.cc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/heap_table.cc.o" "gcc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/heap_table.cc.o.d"
  "/root/repo/src/pgstub/index_am.cc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/index_am.cc.o" "gcc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/index_am.cc.o.d"
  "/root/repo/src/pgstub/page.cc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/page.cc.o" "gcc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/page.cc.o.d"
  "/root/repo/src/pgstub/smgr.cc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/smgr.cc.o" "gcc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/smgr.cc.o.d"
  "/root/repo/src/pgstub/wal.cc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/wal.cc.o" "gcc" "src/pgstub/CMakeFiles/vecdb_pgstub.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vecdb_topk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
