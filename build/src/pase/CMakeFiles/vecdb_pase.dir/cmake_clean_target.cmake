file(REMOVE_RECURSE
  "libvecdb_pase.a"
)
