file(REMOVE_RECURSE
  "CMakeFiles/vecdb_pase.dir/hnsw.cc.o"
  "CMakeFiles/vecdb_pase.dir/hnsw.cc.o.d"
  "CMakeFiles/vecdb_pase.dir/ivf_flat.cc.o"
  "CMakeFiles/vecdb_pase.dir/ivf_flat.cc.o.d"
  "CMakeFiles/vecdb_pase.dir/ivf_pq.cc.o"
  "CMakeFiles/vecdb_pase.dir/ivf_pq.cc.o.d"
  "CMakeFiles/vecdb_pase.dir/ivf_sq8.cc.o"
  "CMakeFiles/vecdb_pase.dir/ivf_sq8.cc.o.d"
  "CMakeFiles/vecdb_pase.dir/pase_common.cc.o"
  "CMakeFiles/vecdb_pase.dir/pase_common.cc.o.d"
  "libvecdb_pase.a"
  "libvecdb_pase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_pase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
