# Empty dependencies file for vecdb_pase.
# This may be replaced when dependencies are built.
