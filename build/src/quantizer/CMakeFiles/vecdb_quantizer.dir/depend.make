# Empty dependencies file for vecdb_quantizer.
# This may be replaced when dependencies are built.
