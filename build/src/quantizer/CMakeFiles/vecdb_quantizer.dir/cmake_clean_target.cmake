file(REMOVE_RECURSE
  "libvecdb_quantizer.a"
)
