file(REMOVE_RECURSE
  "CMakeFiles/vecdb_quantizer.dir/pq.cc.o"
  "CMakeFiles/vecdb_quantizer.dir/pq.cc.o.d"
  "CMakeFiles/vecdb_quantizer.dir/sq8.cc.o"
  "CMakeFiles/vecdb_quantizer.dir/sq8.cc.o.d"
  "libvecdb_quantizer.a"
  "libvecdb_quantizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_quantizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
