# Empty dependencies file for vecdb_clustering.
# This may be replaced when dependencies are built.
