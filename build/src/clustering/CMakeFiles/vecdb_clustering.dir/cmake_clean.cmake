file(REMOVE_RECURSE
  "CMakeFiles/vecdb_clustering.dir/kmeans.cc.o"
  "CMakeFiles/vecdb_clustering.dir/kmeans.cc.o.d"
  "libvecdb_clustering.a"
  "libvecdb_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
