file(REMOVE_RECURSE
  "libvecdb_clustering.a"
)
