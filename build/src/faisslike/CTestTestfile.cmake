# CMake generated Testfile for 
# Source directory: /root/repo/src/faisslike
# Build directory: /root/repo/build/src/faisslike
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
