file(REMOVE_RECURSE
  "CMakeFiles/vecdb_faisslike.dir/flat_index.cc.o"
  "CMakeFiles/vecdb_faisslike.dir/flat_index.cc.o.d"
  "CMakeFiles/vecdb_faisslike.dir/hnsw.cc.o"
  "CMakeFiles/vecdb_faisslike.dir/hnsw.cc.o.d"
  "CMakeFiles/vecdb_faisslike.dir/ivf_flat.cc.o"
  "CMakeFiles/vecdb_faisslike.dir/ivf_flat.cc.o.d"
  "CMakeFiles/vecdb_faisslike.dir/ivf_pq.cc.o"
  "CMakeFiles/vecdb_faisslike.dir/ivf_pq.cc.o.d"
  "CMakeFiles/vecdb_faisslike.dir/ivf_sq8.cc.o"
  "CMakeFiles/vecdb_faisslike.dir/ivf_sq8.cc.o.d"
  "CMakeFiles/vecdb_faisslike.dir/persistence.cc.o"
  "CMakeFiles/vecdb_faisslike.dir/persistence.cc.o.d"
  "libvecdb_faisslike.a"
  "libvecdb_faisslike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_faisslike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
