
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faisslike/flat_index.cc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/flat_index.cc.o" "gcc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/flat_index.cc.o.d"
  "/root/repo/src/faisslike/hnsw.cc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/hnsw.cc.o" "gcc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/hnsw.cc.o.d"
  "/root/repo/src/faisslike/ivf_flat.cc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/ivf_flat.cc.o" "gcc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/ivf_flat.cc.o.d"
  "/root/repo/src/faisslike/ivf_pq.cc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/ivf_pq.cc.o" "gcc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/ivf_pq.cc.o.d"
  "/root/repo/src/faisslike/ivf_sq8.cc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/ivf_sq8.cc.o" "gcc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/ivf_sq8.cc.o.d"
  "/root/repo/src/faisslike/persistence.cc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/persistence.cc.o" "gcc" "src/faisslike/CMakeFiles/vecdb_faisslike.dir/persistence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/vecdb_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vecdb_topk.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/vecdb_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/quantizer/CMakeFiles/vecdb_quantizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
