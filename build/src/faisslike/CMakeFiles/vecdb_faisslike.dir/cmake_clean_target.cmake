file(REMOVE_RECURSE
  "libvecdb_faisslike.a"
)
