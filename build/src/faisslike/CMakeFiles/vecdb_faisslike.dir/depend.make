# Empty dependencies file for vecdb_faisslike.
# This may be replaced when dependencies are built.
