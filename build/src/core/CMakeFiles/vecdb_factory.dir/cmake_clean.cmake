file(REMOVE_RECURSE
  "CMakeFiles/vecdb_factory.dir/factory.cc.o"
  "CMakeFiles/vecdb_factory.dir/factory.cc.o.d"
  "libvecdb_factory.a"
  "libvecdb_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
