# Empty compiler generated dependencies file for vecdb_factory.
# This may be replaced when dependencies are built.
