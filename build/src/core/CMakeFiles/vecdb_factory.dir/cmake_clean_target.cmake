file(REMOVE_RECURSE
  "libvecdb_factory.a"
)
