file(REMOVE_RECURSE
  "CMakeFiles/vecdb_core.dir/experiment.cc.o"
  "CMakeFiles/vecdb_core.dir/experiment.cc.o.d"
  "libvecdb_core.a"
  "libvecdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
