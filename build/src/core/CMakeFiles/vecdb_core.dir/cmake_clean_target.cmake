file(REMOVE_RECURSE
  "libvecdb_core.a"
)
