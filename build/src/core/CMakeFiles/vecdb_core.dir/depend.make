# Empty dependencies file for vecdb_core.
# This may be replaced when dependencies are built.
