file(REMOVE_RECURSE
  "libvecdb_bridge.a"
)
