# Empty compiler generated dependencies file for vecdb_bridge.
# This may be replaced when dependencies are built.
