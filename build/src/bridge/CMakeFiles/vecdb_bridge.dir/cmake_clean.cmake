file(REMOVE_RECURSE
  "CMakeFiles/vecdb_bridge.dir/bridged_hnsw.cc.o"
  "CMakeFiles/vecdb_bridge.dir/bridged_hnsw.cc.o.d"
  "CMakeFiles/vecdb_bridge.dir/bridged_ivf_flat.cc.o"
  "CMakeFiles/vecdb_bridge.dir/bridged_ivf_flat.cc.o.d"
  "libvecdb_bridge.a"
  "libvecdb_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecdb_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
