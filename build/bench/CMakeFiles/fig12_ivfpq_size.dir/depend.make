# Empty dependencies file for fig12_ivfpq_size.
# This may be replaced when dependencies are built.
