file(REMOVE_RECURSE
  "CMakeFiles/fig06_ivfpq_build_nosgemm.dir/fig06_ivfpq_build_nosgemm.cc.o"
  "CMakeFiles/fig06_ivfpq_build_nosgemm.dir/fig06_ivfpq_build_nosgemm.cc.o.d"
  "fig06_ivfpq_build_nosgemm"
  "fig06_ivfpq_build_nosgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ivfpq_build_nosgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
