# Empty dependencies file for fig06_ivfpq_build_nosgemm.
# This may be replaced when dependencies are built.
