# Empty compiler generated dependencies file for fig05_ivfpq_build.
# This may be replaced when dependencies are built.
