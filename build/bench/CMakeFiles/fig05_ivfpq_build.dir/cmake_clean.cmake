file(REMOVE_RECURSE
  "CMakeFiles/fig05_ivfpq_build.dir/fig05_ivfpq_build.cc.o"
  "CMakeFiles/fig05_ivfpq_build.dir/fig05_ivfpq_build.cc.o.d"
  "fig05_ivfpq_build"
  "fig05_ivfpq_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ivfpq_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
