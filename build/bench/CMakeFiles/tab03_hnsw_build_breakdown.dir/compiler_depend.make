# Empty compiler generated dependencies file for tab03_hnsw_build_breakdown.
# This may be replaced when dependencies are built.
