file(REMOVE_RECURSE
  "CMakeFiles/tab03_hnsw_build_breakdown.dir/tab03_hnsw_build_breakdown.cc.o"
  "CMakeFiles/tab03_hnsw_build_breakdown.dir/tab03_hnsw_build_breakdown.cc.o.d"
  "tab03_hnsw_build_breakdown"
  "tab03_hnsw_build_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_hnsw_build_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
