file(REMOVE_RECURSE
  "CMakeFiles/fig16_ivfpq_search.dir/fig16_ivfpq_search.cc.o"
  "CMakeFiles/fig16_ivfpq_search.dir/fig16_ivfpq_search.cc.o.d"
  "fig16_ivfpq_search"
  "fig16_ivfpq_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ivfpq_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
