# Empty compiler generated dependencies file for fig16_ivfpq_search.
# This may be replaced when dependencies are built.
