file(REMOVE_RECURSE
  "CMakeFiles/fig14_ivfflat_search.dir/fig14_ivfflat_search.cc.o"
  "CMakeFiles/fig14_ivfflat_search.dir/fig14_ivfflat_search.cc.o.d"
  "fig14_ivfflat_search"
  "fig14_ivfflat_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ivfflat_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
