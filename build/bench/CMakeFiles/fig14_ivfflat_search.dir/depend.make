# Empty dependencies file for fig14_ivfflat_search.
# This may be replaced when dependencies are built.
