file(REMOVE_RECURSE
  "CMakeFiles/fig17_hnsw_search.dir/fig17_hnsw_search.cc.o"
  "CMakeFiles/fig17_hnsw_search.dir/fig17_hnsw_search.cc.o.d"
  "fig17_hnsw_search"
  "fig17_hnsw_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_hnsw_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
