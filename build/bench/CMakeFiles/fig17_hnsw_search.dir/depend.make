# Empty dependencies file for fig17_hnsw_search.
# This may be replaced when dependencies are built.
