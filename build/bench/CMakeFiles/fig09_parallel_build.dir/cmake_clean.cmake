file(REMOVE_RECURSE
  "CMakeFiles/fig09_parallel_build.dir/fig09_parallel_build.cc.o"
  "CMakeFiles/fig09_parallel_build.dir/fig09_parallel_build.cc.o.d"
  "fig09_parallel_build"
  "fig09_parallel_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_parallel_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
