# Empty compiler generated dependencies file for fig09_parallel_build.
# This may be replaced when dependencies are built.
