file(REMOVE_RECURSE
  "CMakeFiles/fig18_parallel_search.dir/fig18_parallel_search.cc.o"
  "CMakeFiles/fig18_parallel_search.dir/fig18_parallel_search.cc.o.d"
  "fig18_parallel_search"
  "fig18_parallel_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_parallel_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
