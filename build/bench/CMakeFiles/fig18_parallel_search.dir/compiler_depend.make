# Empty compiler generated dependencies file for fig18_parallel_search.
# This may be replaced when dependencies are built.
