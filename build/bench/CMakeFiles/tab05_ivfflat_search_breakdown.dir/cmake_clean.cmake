file(REMOVE_RECURSE
  "CMakeFiles/tab05_ivfflat_search_breakdown.dir/tab05_ivfflat_search_breakdown.cc.o"
  "CMakeFiles/tab05_ivfflat_search_breakdown.dir/tab05_ivfflat_search_breakdown.cc.o.d"
  "tab05_ivfflat_search_breakdown"
  "tab05_ivfflat_search_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_ivfflat_search_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
