# Empty compiler generated dependencies file for tab05_ivfflat_search_breakdown.
# This may be replaced when dependencies are built.
