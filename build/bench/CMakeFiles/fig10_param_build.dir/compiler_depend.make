# Empty compiler generated dependencies file for fig10_param_build.
# This may be replaced when dependencies are built.
