file(REMOVE_RECURSE
  "CMakeFiles/fig10_param_build.dir/fig10_param_build.cc.o"
  "CMakeFiles/fig10_param_build.dir/fig10_param_build.cc.o.d"
  "fig10_param_build"
  "fig10_param_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_param_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
