file(REMOVE_RECURSE
  "CMakeFiles/fig04_ivfflat_build_nosgemm.dir/fig04_ivfflat_build_nosgemm.cc.o"
  "CMakeFiles/fig04_ivfflat_build_nosgemm.dir/fig04_ivfflat_build_nosgemm.cc.o.d"
  "fig04_ivfflat_build_nosgemm"
  "fig04_ivfflat_build_nosgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ivfflat_build_nosgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
