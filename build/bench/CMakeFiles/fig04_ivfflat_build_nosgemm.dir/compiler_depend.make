# Empty compiler generated dependencies file for fig04_ivfflat_build_nosgemm.
# This may be replaced when dependencies are built.
