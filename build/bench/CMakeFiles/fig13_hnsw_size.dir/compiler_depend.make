# Empty compiler generated dependencies file for fig13_hnsw_size.
# This may be replaced when dependencies are built.
