# Empty compiler generated dependencies file for fig03_ivfflat_build.
# This may be replaced when dependencies are built.
