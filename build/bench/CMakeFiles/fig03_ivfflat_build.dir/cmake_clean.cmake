file(REMOVE_RECURSE
  "CMakeFiles/fig03_ivfflat_build.dir/fig03_ivfflat_build.cc.o"
  "CMakeFiles/fig03_ivfflat_build.dir/fig03_ivfflat_build.cc.o.d"
  "fig03_ivfflat_build"
  "fig03_ivfflat_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ivfflat_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
