# Empty compiler generated dependencies file for tab04_hnsw_page_size.
# This may be replaced when dependencies are built.
