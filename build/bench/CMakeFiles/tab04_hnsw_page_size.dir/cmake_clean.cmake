file(REMOVE_RECURSE
  "CMakeFiles/tab04_hnsw_page_size.dir/tab04_hnsw_page_size.cc.o"
  "CMakeFiles/tab04_hnsw_page_size.dir/tab04_hnsw_page_size.cc.o.d"
  "tab04_hnsw_page_size"
  "tab04_hnsw_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_hnsw_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
