# Empty compiler generated dependencies file for ext_quantization_comparison.
# This may be replaced when dependencies are built.
