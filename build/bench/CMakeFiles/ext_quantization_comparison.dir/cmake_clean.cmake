file(REMOVE_RECURSE
  "CMakeFiles/ext_quantization_comparison.dir/ext_quantization_comparison.cc.o"
  "CMakeFiles/ext_quantization_comparison.dir/ext_quantization_comparison.cc.o.d"
  "ext_quantization_comparison"
  "ext_quantization_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quantization_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
