# Empty dependencies file for fig02_generalized_comparison.
# This may be replaced when dependencies are built.
