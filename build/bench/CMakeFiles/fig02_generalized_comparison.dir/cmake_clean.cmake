file(REMOVE_RECURSE
  "CMakeFiles/fig02_generalized_comparison.dir/fig02_generalized_comparison.cc.o"
  "CMakeFiles/fig02_generalized_comparison.dir/fig02_generalized_comparison.cc.o.d"
  "fig02_generalized_comparison"
  "fig02_generalized_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_generalized_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
