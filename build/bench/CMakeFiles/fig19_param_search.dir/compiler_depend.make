# Empty compiler generated dependencies file for fig19_param_search.
# This may be replaced when dependencies are built.
