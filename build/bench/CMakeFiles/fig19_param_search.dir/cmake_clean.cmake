file(REMOVE_RECURSE
  "CMakeFiles/fig19_param_search.dir/fig19_param_search.cc.o"
  "CMakeFiles/fig19_param_search.dir/fig19_param_search.cc.o.d"
  "fig19_param_search"
  "fig19_param_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_param_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
