# Empty compiler generated dependencies file for fig15_ivfflat_replaced_centroids.
# This may be replaced when dependencies are built.
