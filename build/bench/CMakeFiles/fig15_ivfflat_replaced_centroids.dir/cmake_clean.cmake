file(REMOVE_RECURSE
  "CMakeFiles/fig15_ivfflat_replaced_centroids.dir/fig15_ivfflat_replaced_centroids.cc.o"
  "CMakeFiles/fig15_ivfflat_replaced_centroids.dir/fig15_ivfflat_replaced_centroids.cc.o.d"
  "fig15_ivfflat_replaced_centroids"
  "fig15_ivfflat_replaced_centroids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ivfflat_replaced_centroids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
