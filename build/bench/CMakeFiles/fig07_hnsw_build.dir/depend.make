# Empty dependencies file for fig07_hnsw_build.
# This may be replaced when dependencies are built.
