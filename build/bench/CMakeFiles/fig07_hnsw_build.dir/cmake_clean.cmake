file(REMOVE_RECURSE
  "CMakeFiles/fig07_hnsw_build.dir/fig07_hnsw_build.cc.o"
  "CMakeFiles/fig07_hnsw_build.dir/fig07_hnsw_build.cc.o.d"
  "fig07_hnsw_build"
  "fig07_hnsw_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hnsw_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
