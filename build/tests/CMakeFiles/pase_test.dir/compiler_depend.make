# Empty compiler generated dependencies file for pase_test.
# This may be replaced when dependencies are built.
