file(REMOVE_RECURSE
  "CMakeFiles/pase_test.dir/pase_test.cc.o"
  "CMakeFiles/pase_test.dir/pase_test.cc.o.d"
  "pase_test"
  "pase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
