file(REMOVE_RECURSE
  "CMakeFiles/index_am_test.dir/index_am_test.cc.o"
  "CMakeFiles/index_am_test.dir/index_am_test.cc.o.d"
  "index_am_test"
  "index_am_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_am_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
