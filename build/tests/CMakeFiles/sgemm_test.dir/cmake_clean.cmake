file(REMOVE_RECURSE
  "CMakeFiles/sgemm_test.dir/sgemm_test.cc.o"
  "CMakeFiles/sgemm_test.dir/sgemm_test.cc.o.d"
  "sgemm_test"
  "sgemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
