# Empty dependencies file for sgemm_test.
# This may be replaced when dependencies are built.
