# Empty compiler generated dependencies file for heaps_test.
# This may be replaced when dependencies are built.
