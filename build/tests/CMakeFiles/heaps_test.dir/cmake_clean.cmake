file(REMOVE_RECURSE
  "CMakeFiles/heaps_test.dir/heaps_test.cc.o"
  "CMakeFiles/heaps_test.dir/heaps_test.cc.o.d"
  "heaps_test"
  "heaps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heaps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
