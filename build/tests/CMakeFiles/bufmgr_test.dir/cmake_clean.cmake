file(REMOVE_RECURSE
  "CMakeFiles/bufmgr_test.dir/bufmgr_test.cc.o"
  "CMakeFiles/bufmgr_test.dir/bufmgr_test.cc.o.d"
  "bufmgr_test"
  "bufmgr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bufmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
