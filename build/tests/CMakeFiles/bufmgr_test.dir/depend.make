# Empty dependencies file for bufmgr_test.
# This may be replaced when dependencies are built.
