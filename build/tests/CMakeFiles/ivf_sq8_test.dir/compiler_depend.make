# Empty compiler generated dependencies file for ivf_sq8_test.
# This may be replaced when dependencies are built.
