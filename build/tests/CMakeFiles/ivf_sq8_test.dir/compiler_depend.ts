# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ivf_sq8_test.
