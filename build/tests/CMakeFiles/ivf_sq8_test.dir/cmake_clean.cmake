file(REMOVE_RECURSE
  "CMakeFiles/ivf_sq8_test.dir/ivf_sq8_test.cc.o"
  "CMakeFiles/ivf_sq8_test.dir/ivf_sq8_test.cc.o.d"
  "ivf_sq8_test"
  "ivf_sq8_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivf_sq8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
