
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/distance_test.cc" "tests/CMakeFiles/distance_test.dir/distance_test.cc.o" "gcc" "tests/CMakeFiles/distance_test.dir/distance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vecdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/vecdb_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vecdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vecdb_factory.dir/DependInfo.cmake"
  "/root/repo/build/src/bridge/CMakeFiles/vecdb_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/faisslike/CMakeFiles/vecdb_faisslike.dir/DependInfo.cmake"
  "/root/repo/build/src/pase/CMakeFiles/vecdb_pase.dir/DependInfo.cmake"
  "/root/repo/build/src/quantizer/CMakeFiles/vecdb_quantizer.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/vecdb_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/vecdb_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/pgstub/CMakeFiles/vecdb_pgstub.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vecdb_topk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vecdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
