# Empty dependencies file for delete_test.
# This may be replaced when dependencies are built.
