# Empty dependencies file for sq8_test.
# This may be replaced when dependencies are built.
