file(REMOVE_RECURSE
  "CMakeFiles/sq8_test.dir/sq8_test.cc.o"
  "CMakeFiles/sq8_test.dir/sq8_test.cc.o.d"
  "sq8_test"
  "sq8_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
