# Empty compiler generated dependencies file for smgr_test.
# This may be replaced when dependencies are built.
