file(REMOVE_RECURSE
  "CMakeFiles/insert_test.dir/insert_test.cc.o"
  "CMakeFiles/insert_test.dir/insert_test.cc.o.d"
  "insert_test"
  "insert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
