# Empty dependencies file for faisslike_test.
# This may be replaced when dependencies are built.
