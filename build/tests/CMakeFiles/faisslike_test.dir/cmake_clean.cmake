file(REMOVE_RECURSE
  "CMakeFiles/faisslike_test.dir/faisslike_test.cc.o"
  "CMakeFiles/faisslike_test.dir/faisslike_test.cc.o.d"
  "faisslike_test"
  "faisslike_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faisslike_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
