file(REMOVE_RECURSE
  "CMakeFiles/sql_database_test.dir/sql_database_test.cc.o"
  "CMakeFiles/sql_database_test.dir/sql_database_test.cc.o.d"
  "sql_database_test"
  "sql_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
