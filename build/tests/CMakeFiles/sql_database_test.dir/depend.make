# Empty dependencies file for sql_database_test.
# This may be replaced when dependencies are built.
