#include "clustering/kmeans.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/random.h"
#include "distance/kernels.h"
#include "distance/sgemm.h"

namespace vecdb {

namespace {

// Batched SGEMM assignment processes vectors in tiles so the distance
// matrix stays cache-resident.
constexpr size_t kAssignTile = 1024;

void AssignRangeSgemm(const float* data, size_t begin, size_t end, size_t d,
                      const float* centroids, uint32_t c,
                      const float* centroid_norms, uint32_t* out_assign,
                      float* out_dist) {
  std::vector<float> dists(kAssignTile * c);
  std::vector<float> x_norms(kAssignTile);
  for (size_t t0 = begin; t0 < end; t0 += kAssignTile) {
    const size_t nb = std::min(kAssignTile, end - t0);
    RowNormsSqr(data + t0 * d, nb, d, x_norms.data());
    AllPairsL2Sqr(data + t0 * d, nb, centroids, c, d, x_norms.data(),
                  centroid_norms, dists.data());
    for (size_t i = 0; i < nb; ++i) {
      const float* row = dists.data() + i * c;
      uint32_t best = 0;
      float best_d = row[0];
      for (uint32_t j = 1; j < c; ++j) {
        if (row[j] < best_d) {
          best_d = row[j];
          best = j;
        }
      }
      out_assign[t0 + i] = best;
      if (out_dist != nullptr) out_dist[t0 + i] = best_d;
    }
  }
}

void AssignRangeNaive(const float* data, size_t begin, size_t end, size_t d,
                      const float* centroids, uint32_t c, uint32_t* out_assign,
                      float* out_dist) {
  // The PASE adding path: one reference scalar kernel call per
  // (vector, centroid) pair — the fvec_L2sqr_ref bottleneck of Fig 3.
  for (size_t i = begin; i < end; ++i) {
    const float* x = data + i * d;
    uint32_t best = 0;
    float best_d = std::numeric_limits<float>::infinity();
    for (uint32_t j = 0; j < c; ++j) {
      const float dist = L2SqrRef(x, centroids + j * d, d);
      if (dist < best_d) {
        best_d = dist;
        best = j;
      }
    }
    out_assign[i] = best;
    if (out_dist != nullptr) out_dist[i] = best_d;
  }
}

}  // namespace

void AssignToNearest(const float* data, size_t n, size_t d,
                     const float* centroids, uint32_t num_clusters,
                     bool use_sgemm, uint32_t* out_assign, float* out_dist,
                     ThreadPool* pool, Profiler* profiler) {
  ProfScope scope(profiler, use_sgemm ? "assign_sgemm" : "assign_naive");
  std::vector<float> centroid_norms;
  if (use_sgemm) {
    centroid_norms.resize(num_clusters);
    RowNormsSqr(centroids, num_clusters, d, centroid_norms.data());
  }
  auto run = [&](size_t begin, size_t end) {
    if (use_sgemm) {
      AssignRangeSgemm(data, begin, end, d, centroids, num_clusters,
                       centroid_norms.data(), out_assign, out_dist);
    } else {
      AssignRangeNaive(data, begin, end, d, centroids, num_clusters,
                       out_assign, out_dist);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, [&](int, size_t b, size_t e) { run(b, e); });
  } else {
    run(0, n);
  }
}

Result<KMeansModel> TrainKMeans(const float* data, size_t n, size_t d,
                                const KMeansOptions& options) {
  if (data == nullptr || n == 0 || d == 0) {
    return Status::InvalidArgument("TrainKMeans: empty input");
  }
  const uint32_t c = options.num_clusters;
  if (c == 0) return Status::InvalidArgument("TrainKMeans: num_clusters == 0");
  if (c > n) {
    return Status::InvalidArgument(
        "TrainKMeans: more clusters than vectors (c=" + std::to_string(c) +
        ", n=" + std::to_string(n) + ")");
  }
  if (options.sample_ratio <= 0.0 || options.sample_ratio > 1.0) {
    return Status::InvalidArgument("TrainKMeans: sample_ratio out of (0,1]");
  }

  Rng rng(options.seed);

  // --- Sampling phase: sr * n vectors, at least one per cluster.
  size_t sample_n =
      std::max<size_t>(c, static_cast<size_t>(options.sample_ratio * n));
  sample_n = std::min(sample_n, n);
  AlignedFloats sample(sample_n * d);
  {
    ProfScope scope(options.profiler, "kmeans_sample");
    auto picks = rng.SampleWithoutReplacement(static_cast<uint32_t>(n),
                                              static_cast<uint32_t>(sample_n));
    if (options.style == KMeansStyle::kPaseStyle) {
      // PASE scans pages in order; keep the sample in storage order.
      std::sort(picks.begin(), picks.end());
    }
    for (size_t i = 0; i < sample_n; ++i) {
      std::memcpy(sample.data() + i * d, data + static_cast<size_t>(picks[i]) * d,
                  d * sizeof(float));
    }
  }

  KMeansModel model;
  model.num_clusters = c;
  model.dim = static_cast<uint32_t>(d);
  model.centroids.Resize(static_cast<size_t>(c) * d);

  {
    ProfScope scope(options.profiler, "kmeans_seed");
    if (options.style == KMeansStyle::kFaissStyle) {
      // Random-permutation seeding from the sample (as Faiss does).
      auto seeds = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(sample_n), c);
      for (uint32_t j = 0; j < c; ++j) {
        std::memcpy(model.centroids.data() + static_cast<size_t>(j) * d,
                    sample.data() + static_cast<size_t>(seeds[j]) * d,
                    d * sizeof(float));
      }
    } else {
      // PASE-style: first k sampled vectors seed the codebook.
      std::memcpy(model.centroids.data(), sample.data(),
                  static_cast<size_t>(c) * d * sizeof(float));
    }
  }

  std::vector<uint32_t> assign(sample_n);
  std::vector<float> dist(sample_n);
  std::vector<double> sums(static_cast<size_t>(c) * d);
  std::vector<uint32_t> counts(c);
  const bool sgemm =
      options.style == KMeansStyle::kFaissStyle && options.use_sgemm;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    {
      ProfScope scope(options.profiler, "kmeans_assign");
      AssignToNearest(sample.data(), sample_n, d, model.centroids.data(), c,
                      sgemm, assign.data(), dist.data(), options.pool,
                      options.profiler);
    }
    double inertia = 0.0;
    for (size_t i = 0; i < sample_n; ++i) inertia += dist[i];
    model.inertia = inertia;
    model.iterations = iter + 1;

    // --- Update phase.
    ProfScope scope(options.profiler, "kmeans_update");
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < sample_n; ++i) {
      const uint32_t j = assign[i];
      ++counts[j];
      const float* x = sample.data() + i * d;
      double* s = sums.data() + static_cast<size_t>(j) * d;
      for (size_t t = 0; t < d; ++t) s[t] += x[t];
    }
    for (uint32_t j = 0; j < c; ++j) {
      if (counts[j] == 0) continue;
      float* cj = model.centroids.data() + static_cast<size_t>(j) * d;
      const double* s = sums.data() + static_cast<size_t>(j) * d;
      const double inv = 1.0 / counts[j];
      for (size_t t = 0; t < d; ++t) cj[t] = static_cast<float>(s[t] * inv);
    }

    if (options.style == KMeansStyle::kFaissStyle) {
      // Repair empty clusters by splitting the most populated one: copy its
      // centroid with a tiny symmetric perturbation (Faiss's strategy).
      for (uint32_t j = 0; j < c; ++j) {
        if (counts[j] != 0) continue;
        const uint32_t big = static_cast<uint32_t>(
            std::max_element(counts.begin(), counts.end()) - counts.begin());
        if (counts[big] < 2) break;
        float* dst = model.centroids.data() + static_cast<size_t>(j) * d;
        float* src = model.centroids.data() + static_cast<size_t>(big) * d;
        const float eps = 1.f / 1024.f;
        for (size_t t = 0; t < d; ++t) {
          dst[t] = src[t] * (1.f + eps);
          src[t] = src[t] * (1.f - eps);
        }
        counts[j] = counts[big] / 2;
        counts[big] -= counts[j];
      }
    }
  }

  return model;
}

}  // namespace vecdb
