// K-means training for IVF indexes. Two deliberately different
// implementations reproduce the paper's RC#5 ("PASE and Faiss use a slightly
// different implementation of K-means"), which shifts centroids and hence
// clustering quality and search cost. The Faiss-style variant also exercises
// RC#1: its assignment step can route through the SGEMM decomposition.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/profiler.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace vecdb {

/// Which system's K-means behaviour to emulate.
enum class KMeansStyle : uint8_t {
  /// Faiss-like: random-permutation seeding from the sample, SGEMM-based
  /// assignment, empty clusters repaired by splitting the largest cluster.
  kFaissStyle = 0,
  /// PASE-like: first-k seeding, per-pair distance assignment, empty
  /// clusters left empty (centroid unchanged).
  kPaseStyle = 1,
};

/// Tuning knobs for TrainKMeans. Field names follow the paper's Table II.
struct KMeansOptions {
  uint32_t num_clusters = 256;   ///< c — codebook size
  int max_iterations = 10;       ///< Lloyd iterations over the sample
  double sample_ratio = 0.01;    ///< sr — fraction of base vectors trained on
  KMeansStyle style = KMeansStyle::kFaissStyle;
  bool use_sgemm = true;         ///< Faiss-style only: batched assignment
  uint64_t seed = 42;            ///< PRNG seed for sampling/seeding
  ThreadPool* pool = nullptr;    ///< optional parallel assignment
  Profiler* profiler = nullptr;  ///< optional phase accounting
};

/// Trained codebook plus convergence diagnostics.
struct KMeansModel {
  AlignedFloats centroids;  ///< num_clusters * dim floats, row-major
  uint32_t num_clusters = 0;
  uint32_t dim = 0;
  double inertia = 0.0;  ///< final sum of squared distances on the sample
  int iterations = 0;    ///< Lloyd iterations actually run

  const float* centroid(uint32_t c) const { return centroids.data() + c * dim; }
};

/// Trains a codebook on a sample of `n` row-major d-dim vectors.
///
/// Sampling: `max(num_clusters, sr*n)` vectors drawn without replacement.
/// Fails with InvalidArgument when inputs are degenerate (n == 0, d == 0,
/// num_clusters == 0, or num_clusters > n).
Result<KMeansModel> TrainKMeans(const float* data, size_t n, size_t d,
                                const KMeansOptions& options);

/// Assigns each of `n` vectors to its nearest centroid.
///
/// `use_sgemm` selects the batched decomposition (Faiss add phase, RC#1)
/// versus the per-pair loop (PASE add phase). `out_assign` receives `n`
/// cluster ids; `out_dist` (optional) the squared distances. `pool`
/// (optional) parallelizes over vectors.
void AssignToNearest(const float* data, size_t n, size_t d,
                     const float* centroids, uint32_t num_clusters,
                     bool use_sgemm, uint32_t* out_assign, float* out_dist,
                     ThreadPool* pool = nullptr,
                     Profiler* profiler = nullptr);

}  // namespace vecdb
