// Minimal persistent thread pool plus a static-chunked ParallelFor, used for
// parallel index construction and intra-query parallel search (paper RC#3).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace vecdb {

/// Fixed-size pool of worker threads executing submitted closures.
///
/// `ParallelFor` splits an index range into one contiguous chunk per worker
/// (static scheduling), which matches how both engines partition buckets and
/// vectors, and makes per-thread work accounting deterministic.
///
/// Lock discipline (statically checked under VECDB_TSA): one mutex guards
/// the queue, the in-flight count, and the shutdown flag; `workers_` is
/// written only during construction and joined only in the destructor, so
/// it needs no lock.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);

  /// Drains every already-submitted task, then joins the workers. Tasks
  /// queued before destruction begins are guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on some worker. Aborts (VECDB_CHECK) if
  /// the pool is shutting down: a task enqueued after ~ThreadPool begins
  /// would silently never run.
  void Submit(std::function<void()> fn) VECDB_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() VECDB_EXCLUDES(mu_);

  /// Aborts if internal bookkeeping is inconsistent (queued tasks exceed
  /// the in-flight count, or a live pool has no workers). Test/debug hook.
  void CheckInvariants() const VECDB_EXCLUDES(mu_);

  /// Runs `fn(worker_index, begin, end)` over a static partition of [0, n).
  /// Blocks until all chunks complete. `worker_index` is in
  /// [0, num_threads()) and each index of [0, n) is covered exactly once.
  void ParallelFor(size_t n,
                   const std::function<void(int, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  /// Wake condition for workers: work available or shutdown requested.
  bool WorkerShouldWake() const VECDB_REQUIRES(mu_) {
    return shutdown_ || !tasks_.empty();
  }

  /// Written in the constructor, joined in the destructor; otherwise
  /// read-only, so deliberately not guarded.
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_ VECDB_GUARDED_BY(mu_);
  size_t in_flight_ VECDB_GUARDED_BY(mu_) = 0;
  bool shutdown_ VECDB_GUARDED_BY(mu_) = false;
};

}  // namespace vecdb
