// Minimal persistent thread pool plus a static-chunked ParallelFor, used for
// parallel index construction and intra-query parallel search (paper RC#3).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vecdb {

/// Fixed-size pool of worker threads executing submitted closures.
///
/// `ParallelFor` splits an index range into one contiguous chunk per worker
/// (static scheduling), which matches how both engines partition buckets and
/// vectors, and makes per-thread work accounting deterministic.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on some worker. Aborts (VECDB_CHECK) if
  /// the pool is shutting down: a task enqueued after ~ThreadPool begins
  /// would silently never run.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Aborts if internal bookkeeping is inconsistent (queued tasks exceed
  /// the in-flight count, or a live pool has no workers). Test/debug hook.
  void CheckInvariants() const;

  /// Runs `fn(worker_index, begin, end)` over a static partition of [0, n).
  /// Blocks until all chunks complete. `worker_index` is in
  /// [0, num_threads()) and each index of [0, n) is covered exactly once.
  void ParallelFor(size_t n,
                   const std::function<void(int, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace vecdb
