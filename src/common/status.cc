#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace vecdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace vecdb
