// Deterministic, fast PRNG used throughout vecdb (dataset synthesis,
// K-means seeding, HNSW level draws). A fixed seed makes every experiment
// reproducible run to run.
#pragma once

#include <cstdint>
#include <vector>

namespace vecdb {

/// SplitMix64-seeded xoshiro256** generator.
///
/// Not cryptographic; chosen for speed and high statistical quality.
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with `<random>` distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; the same seed yields the same stream.
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator deterministically via SplitMix64 expansion.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit draw.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal draw (Box-Muller, cached spare).
  float Gaussian();

  /// Samples `k` distinct indices from [0, n) via partial Fisher-Yates.
  /// If k >= n, returns the full permutation of [0, n).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  float spare_ = 0.f;
};

}  // namespace vecdb
