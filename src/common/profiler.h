// Named-counter profiler that replaces the paper's use of Linux `perf` +
// flame graphs. Both engines are instrumented with the same phase labels the
// paper reports (e.g. "fvec_L2sqr", "TupleAccess", "MinHeap",
// "SearchNbToAdd"), so the breakdown tables (Table III, Table V, Fig 8) can
// be regenerated deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/timer.h"

namespace vecdb {

/// Accumulates elapsed nanoseconds and hit counts under string labels.
///
/// Not thread-safe by design: each worker thread profiles into its own
/// Profiler and the harness merges them (see Merge()). Engines accept a
/// nullable `Profiler*`; a null profiler costs one branch per scope.
class Profiler {
 public:
  /// Adds `nanos` (and one hit) to the counter named `label`.
  void Add(std::string_view label, int64_t nanos) {
    auto& e = entries_[std::string(label)];
    e.nanos += nanos;
    e.hits += 1;
  }

  /// Total nanoseconds recorded under `label` (0 if absent).
  int64_t Nanos(std::string_view label) const {
    auto it = entries_.find(std::string(label));
    return it == entries_.end() ? 0 : it->second.nanos;
  }

  /// Number of times `label` was recorded.
  int64_t Hits(std::string_view label) const {
    auto it = entries_.find(std::string(label));
    return it == entries_.end() ? 0 : it->second.hits;
  }

  /// Seconds recorded under `label`.
  double Seconds(std::string_view label) const { return Nanos(label) * 1e-9; }

  /// Folds another profiler's counters into this one.
  void Merge(const Profiler& other) {
    for (const auto& [label, e] : other.entries_) {
      auto& mine = entries_[label];
      mine.nanos += e.nanos;
      mine.hits += e.hits;
    }
  }

  /// Drops all counters.
  void Reset() { entries_.clear(); }

  /// All labels in lexicographic order with their totals.
  struct Entry {
    int64_t nanos = 0;
    int64_t hits = 0;
  };
  const std::map<std::string, Entry>& entries() const { return entries_; }

 private:
  std::map<std::string, Entry> entries_;
};

/// RAII scope that charges its lifetime to `label` on a (nullable) profiler.
class ProfScope {
 public:
  ProfScope(Profiler* profiler, std::string_view label)
      : profiler_(profiler), label_(label) {
    if (profiler_ != nullptr) start_ = NowNanos();
  }

  ~ProfScope() {
    if (profiler_ != nullptr) profiler_->Add(label_, NowNanos() - start_);
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* profiler_;
  std::string_view label_;
  int64_t start_ = 0;
};

}  // namespace vecdb
