// Minimal binary (de)serialization over stdio FILEs, used for index
// persistence (faisslike Save/Load). Little-endian host format with a
// per-file magic + version header; not portable across endianness.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"

namespace vecdb {

/// Sequential writer with Status-based error reporting.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header.
  static Result<BinaryWriter> Open(const std::string& path, uint32_t magic,
                                   uint32_t version);

  ~BinaryWriter();
  BinaryWriter(BinaryWriter&& other) noexcept;
  BinaryWriter& operator=(BinaryWriter&&) = delete;
  BinaryWriter(const BinaryWriter&) = delete;

  /// Writes a trivially-copyable value.
  template <typename T>
  Status Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&value, sizeof(T));
  }

  /// Writes a length-prefixed array of trivially-copyable elements.
  template <typename T>
  Status WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    VECDB_RETURN_NOT_OK(Write<uint64_t>(values.size()));
    return WriteBytes(values.data(), values.size() * sizeof(T));
  }

  /// Writes a length-prefixed float buffer.
  Status WriteFloats(const AlignedFloats& values);

  /// Writes a length-prefixed string.
  Status WriteString(const std::string& value);

  /// Flushes and closes; further writes are invalid.
  Status Close();

 private:
  explicit BinaryWriter(std::FILE* file) : file_(file) {}
  Status WriteBytes(const void* data, size_t len);

  std::FILE* file_;
};

/// Sequential reader mirroring BinaryWriter.
class BinaryReader {
 public:
  /// Opens `path`, validating magic and version.
  static Result<BinaryReader> Open(const std::string& path, uint32_t magic,
                                   uint32_t expected_version);

  /// Opens `path`, accepting any version in [min_version, max_version] and
  /// reporting which one the file carries via `found_version`. Loaders use
  /// this to keep reading files written by older format revisions.
  static Result<BinaryReader> Open(const std::string& path, uint32_t magic,
                                   uint32_t min_version, uint32_t max_version,
                                   uint32_t* found_version);

  ~BinaryReader();
  BinaryReader(BinaryReader&& other) noexcept;
  BinaryReader& operator=(BinaryReader&&) = delete;
  BinaryReader(const BinaryReader&) = delete;

  template <typename T>
  Status Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  template <typename T>
  Status ReadVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    VECDB_RETURN_NOT_OK(Read(&count));
    if (count > (1ull << 40)) return Status::Corruption("absurd array size");
    values->resize(count);
    return ReadBytes(values->data(), count * sizeof(T));
  }

  Status ReadFloats(AlignedFloats* values);
  Status ReadString(std::string* value);

 private:
  explicit BinaryReader(std::FILE* file) : file_(file) {}
  Status ReadBytes(void* data, size_t len);

  std::FILE* file_;
};

}  // namespace vecdb
