#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace vecdb {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    VECDB_CHECK(!shutdown_)
        << "ThreadPool::Submit after shutdown: task would never run";
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::CheckInvariants() const {
  std::unique_lock<std::mutex> lock(mu_);
  VECDB_CHECK_GE(workers_.size(), 1u) << "pool has no workers";
  // Tasks still queued are a subset of tasks not yet finished.
  VECDB_CHECK_LE(tasks_.size(), in_flight_)
      << "queued tasks exceed in-flight count";
  VECDB_CHECK(!shutdown_) << "CheckInvariants on a shut-down pool";
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(int, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t t = static_cast<size_t>(num_threads());
  const size_t chunk = (n + t - 1) / t;
  for (size_t w = 0; w * chunk < n; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    Submit([&fn, w, begin, end] { fn(static_cast<int>(w), begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vecdb
