#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace vecdb {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    VECDB_CHECK(!shutdown_)
        << "ThreadPool::Submit after shutdown: task would never run";
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) lock.Wait(done_cv_);
}

void ThreadPool::CheckInvariants() const {
  MutexLock lock(mu_);
  VECDB_CHECK_GE(workers_.size(), 1u) << "pool has no workers";
  // Tasks still queued are a subset of tasks not yet finished.
  VECDB_CHECK_LE(tasks_.size(), in_flight_)
      << "queued tasks exceed in-flight count";
  VECDB_CHECK(!shutdown_) << "CheckInvariants on a shut-down pool";
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(int, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t t = static_cast<size_t>(num_threads());
  const size_t chunk = (n + t - 1) / t;
  for (size_t w = 0; w * chunk < n; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    Submit([&fn, w, begin, end] { fn(static_cast<int>(w), begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!WorkerShouldWake()) lock.Wait(task_cv_);
      // Wake condition holds: either work is queued or shutdown was
      // requested. Drain the queue fully before exiting on shutdown.
      if (tasks_.empty()) return;  // implies shutdown_
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vecdb
