// Wall-clock timing helpers used by benchmarks and the profiler.
#pragma once

#include <ctime>

#include <chrono>
#include <cstdint>

namespace vecdb {

/// Monotonic nanosecond timestamp.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nanoseconds of CPU time consumed by the calling thread. Used by the
/// parallel-scaling accounting (core/parallel.h): on an oversubscribed
/// machine, wall time includes time spent descheduled, but per-thread CPU
/// time measures the actual work each worker performed.
inline int64_t ThreadCpuNanos() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

/// Stopwatch over the calling thread's CPU clock.
class CpuTimer {
 public:
  CpuTimer() : start_(ThreadCpuNanos()) {}
  void Reset() { start_ = ThreadCpuNanos(); }
  int64_t ElapsedNanos() const { return ThreadCpuNanos() - start_; }

 private:
  int64_t start_;
};

/// Simple stopwatch over the steady clock.
class Timer {
 public:
  Timer() : start_(NowNanos()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = NowNanos(); }

  /// Nanoseconds since construction or the last Reset().
  int64_t ElapsedNanos() const { return NowNanos() - start_; }

  /// Microseconds since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedNanos() * 1e-3; }

  /// Milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }

  /// Seconds since construction or the last Reset().
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  int64_t start_;
};

}  // namespace vecdb
