#include "common/serialize.h"

#include <utility>

namespace vecdb {

Result<BinaryWriter> BinaryWriter::Open(const std::string& path,
                                        uint32_t magic, uint32_t version) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  BinaryWriter writer(f);
  VECDB_RETURN_NOT_OK(writer.Write(magic));
  VECDB_RETURN_NOT_OK(writer.Write(version));
  return writer;
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

BinaryWriter::BinaryWriter(BinaryWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)) {}

Status BinaryWriter::WriteBytes(const void* data, size_t len) {
  if (file_ == nullptr) return Status::InvalidArgument("writer closed");
  if (len == 0) return Status::OK();
  if (std::fwrite(data, 1, len, file_) != len) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

Status BinaryWriter::WriteFloats(const AlignedFloats& values) {
  VECDB_RETURN_NOT_OK(Write<uint64_t>(values.size()));
  return WriteBytes(values.data(), values.size() * sizeof(float));
}

Status BinaryWriter::WriteString(const std::string& value) {
  VECDB_RETURN_NOT_OK(Write<uint64_t>(value.size()));
  return WriteBytes(value.data(), value.size());
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close failed");
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path,
                                        uint32_t magic,
                                        uint32_t expected_version) {
  uint32_t found = 0;
  return Open(path, magic, expected_version, expected_version, &found);
}

Result<BinaryReader> BinaryReader::Open(const std::string& path,
                                        uint32_t magic, uint32_t min_version,
                                        uint32_t max_version,
                                        uint32_t* found_version) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  BinaryReader reader(f);
  uint32_t got_magic = 0, got_version = 0;
  VECDB_RETURN_NOT_OK(reader.Read(&got_magic));
  VECDB_RETURN_NOT_OK(reader.Read(&got_version));
  if (got_magic != magic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (got_version < min_version || got_version > max_version) {
    return Status::NotSupported(
        path + ": version " + std::to_string(got_version) + " outside [" +
        std::to_string(min_version) + ", " + std::to_string(max_version) +
        "]");
  }
  *found_version = got_version;
  return reader;
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

BinaryReader::BinaryReader(BinaryReader&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)) {}

Status BinaryReader::ReadBytes(void* data, size_t len) {
  if (file_ == nullptr) return Status::InvalidArgument("reader closed");
  if (len == 0) return Status::OK();
  if (std::fread(data, 1, len, file_) != len) {
    return Status::Corruption("truncated file");
  }
  return Status::OK();
}

Status BinaryReader::ReadFloats(AlignedFloats* values) {
  uint64_t count = 0;
  VECDB_RETURN_NOT_OK(Read(&count));
  if (count > (1ull << 40)) return Status::Corruption("absurd float count");
  values->Resize(count);
  return ReadBytes(values->data(), count * sizeof(float));
}

Status BinaryReader::ReadString(std::string* value) {
  uint64_t count = 0;
  VECDB_RETURN_NOT_OK(Read(&count));
  if (count > (1ull << 30)) return Status::Corruption("absurd string size");
  value->resize(count);
  return ReadBytes(value->data(), count);
}

}  // namespace vecdb
