// Clang Thread Safety Analysis support: annotation macros plus annotated
// wrappers over the std synchronization primitives. Every mutex in the
// engine is declared through these wrappers so that, under
// -DVECDB_TSA=ON (clang, -Werror=thread-safety), the compiler proves at
// build time that each VECDB_GUARDED_BY field is only touched with its
// lock held and each VECDB_REQUIRES method is only called from a locked
// context. Under gcc (or clang without the flag) every macro expands to
// nothing and the wrappers compile down to the raw std types — zero
// runtime or layout cost. See docs/ANALYSIS.md §5 for conventions and
// the VECDB_NO_TSA escape-hatch policy.
#pragma once

#include <condition_variable>
#include <mutex>         // wrapped below; raw-mutex lint allowlists this file
#include <shared_mutex>

// GNU-style thread-safety attributes. SWIG and non-clang compilers see
// empty expansions; clang always accepts the attributes (they are inert
// without -Wthread-safety, enforced with it).
#if defined(__clang__) && !defined(SWIG)
#define VECDB_TSA_ATTRIBUTE_(x) __attribute__((x))
#else
#define VECDB_TSA_ATTRIBUTE_(x)
#endif

/// Declares a class to be a lockable capability ("mutex", "shared_mutex").
#define VECDB_CAPABILITY(x) VECDB_TSA_ATTRIBUTE_(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define VECDB_SCOPED_CAPABILITY VECDB_TSA_ATTRIBUTE_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define VECDB_GUARDED_BY(x) VECDB_TSA_ATTRIBUTE_(guarded_by(x))

/// Pointee of this pointer field may only be accessed while holding `x`.
#define VECDB_PT_GUARDED_BY(x) VECDB_TSA_ATTRIBUTE_(pt_guarded_by(x))

/// Documented lock-ordering edges (deadlock detection).
#define VECDB_ACQUIRED_BEFORE(...) \
  VECDB_TSA_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define VECDB_ACQUIRED_AFTER(...) \
  VECDB_TSA_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared) on entry.
#define VECDB_REQUIRES(...) \
  VECDB_TSA_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define VECDB_REQUIRES_SHARED(...) \
  VECDB_TSA_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability and holds it across return.
#define VECDB_ACQUIRE(...) \
  VECDB_TSA_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define VECDB_ACQUIRE_SHARED(...) \
  VECDB_TSA_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define VECDB_RELEASE(...) \
  VECDB_TSA_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define VECDB_RELEASE_SHARED(...) \
  VECDB_TSA_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define VECDB_TRY_ACQUIRE(b, ...) \
  VECDB_TSA_ATTRIBUTE_(try_acquire_capability(b, __VA_ARGS__))
#define VECDB_TRY_ACQUIRE_SHARED(b, ...) \
  VECDB_TSA_ATTRIBUTE_(try_acquire_shared_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant critical sections).
#define VECDB_EXCLUDES(...) VECDB_TSA_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define VECDB_ASSERT_CAPABILITY(x) \
  VECDB_TSA_ATTRIBUTE_(assert_capability(x))

/// Function returns a reference to the named capability.
#define VECDB_RETURN_CAPABILITY(x) VECDB_TSA_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use MUST
/// carry a comment justifying why the access pattern is safe but not
/// expressible (docs/ANALYSIS.md §5); unexplained uses fail review.
#define VECDB_NO_TSA VECDB_TSA_ATTRIBUTE_(no_thread_safety_analysis)

namespace vecdb {

/// std::mutex wrapper carrying the "mutex" capability. Identical layout
/// and cost; exists so VECDB_GUARDED_BY has a capability to name and so
/// tools/lint.py can ban raw std::mutex members (rule: raw-mutex).
class VECDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VECDB_ACQUIRE() { mu_.lock(); }
  void Unlock() VECDB_RELEASE() { mu_.unlock(); }
  bool TryLock() VECDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The underlying std::mutex, for std::unique_lock / condition-variable
  /// idioms (MutexLock::Wait uses it). The analysis treats the result as
  /// this capability.
  std::mutex& native() VECDB_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex wrapper: exclusive writers, shared readers.
class VECDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() VECDB_ACQUIRE() { mu_.lock(); }
  void Unlock() VECDB_RELEASE() { mu_.unlock(); }
  bool TryLock() VECDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void ReaderLock() VECDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() VECDB_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() VECDB_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  std::shared_mutex& native() VECDB_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// RAII critical section over a Mutex (std::lock_guard analog) with a
/// condition-variable bridge. Declared as a scoped capability so guarded
/// accesses inside the scope check statically.
class VECDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VECDB_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() VECDB_RELEASE() {}  // unique_lock's destructor unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks on `cv`, atomically releasing and reacquiring the mutex.
  /// Callers loop over their own predicate:
  ///   while (!done_) lock.Wait(cv_);
  /// The analysis (soundly for our usage, though not in general) treats
  /// the lock as held across the wait, which matches the view of the
  /// predicate expression: it is only ever evaluated while locked.
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive section over a SharedMutex.
class VECDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) VECDB_ACQUIRE(mu) : mu_(mu) {
    mu_.native().lock();
  }
  ~WriterMutexLock() VECDB_RELEASE() { mu_.native().unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) section over a SharedMutex.
class VECDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) VECDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.native().lock_shared();
  }
  ~ReaderMutexLock() VECDB_RELEASE() { mu_.native().unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace vecdb
