// Status/Result error model for vecdb, following the RocksDB/Arrow idiom:
// library code never throws; fallible operations return Status or Result<T>.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace vecdb {

/// Machine-readable error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kInternal,
  kCancelled,
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// The result of a fallible operation: a code plus a human-readable message.
///
/// Cheap to copy when OK (no allocation); error states carry a message
/// string. Use the static constructors (`Status::InvalidArgument(...)`) to
/// build errors and `Status::OK()` for success.
///
/// [[nodiscard]]: silently dropping a Status hides failures (a recurring
/// VDBMS bug class); cast to void explicitly when ignoring is intended.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The human-readable error message (empty when OK).
  const std::string& message() const { return msg_; }

  /// Renders "Code: message" for logs and test failures.
  std::string ToString() const;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// A value-or-error holder: either a `T` or a non-OK Status.
///
/// Mirrors arrow::Result. Check `ok()` before dereferencing; `ValueOrDie()`
/// aborts on error and is intended for tests and examples. `T` only needs
/// to be movable (no default constructor required).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Constructs a failed result; `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; undefined behaviour if `!ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or aborts with the error message (test/example use).
  T ValueOrDie() &&;

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!status_.ok()) internal::DieOnBadResult(status_);
  return std::move(*value_);
}

/// Propagates a non-OK Status out of the enclosing function.
#define VECDB_RETURN_NOT_OK(expr)                    \
  do {                                               \
    ::vecdb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result expression, propagating errors, else binds the value.
#define VECDB_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto VECDB_CONCAT_(_res_, __LINE__) = (rexpr);     \
  if (!VECDB_CONCAT_(_res_, __LINE__).ok())          \
    return VECDB_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(VECDB_CONCAT_(_res_, __LINE__)).value()

#define VECDB_CONCAT_IMPL_(a, b) a##b
#define VECDB_CONCAT_(a, b) VECDB_CONCAT_IMPL_(a, b)

}  // namespace vecdb
