#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace vecdb::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << "CHECK failed: " << expr << " at " << file << ":" << line << " ";
}

CheckFailure::~CheckFailure() {
  const std::string msg = stream_.str();
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace vecdb::internal
