// Fatal invariant-check macros for vecdb, following the glog/absl idiom:
// VECDB_CHECK is always on and aborts with file:line plus a streamable
// message; VECDB_DCHECK* compile out of NDEBUG (Release) builds while still
// type-checking their condition so debug-only checks cannot bit-rot.
//
// Use Status for errors callers can handle; use these macros for programmer
// errors where continuing would corrupt state (the "fail fast" tier that
// sanitizer and invariant audits rely on).
#pragma once

#include <sstream>

namespace vecdb::internal {

/// Collects the streamed failure message and aborts when destroyed at the
/// end of the failing check's full expression. Never constructed on the
/// passing path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  /// Prints "CHECK failed: <expr> (<msg>) at <file>:<line>" and aborts.
  ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace vecdb::internal

/// Aborts (in every build type) when `cond` is false. Additional context
/// streams on: VECDB_CHECK(ptr != nullptr) << "while loading " << path;
#define VECDB_CHECK(cond)                                               \
  while (__builtin_expect(!(cond), 0))                                  \
  ::vecdb::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

/// Binary-comparison forms that include both operand values in the failure
/// message. Operands are re-evaluated only on the (aborting) failure path.
#define VECDB_CHECK_OP_(op, a, b)                                       \
  VECDB_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define VECDB_CHECK_EQ(a, b) VECDB_CHECK_OP_(==, a, b)
#define VECDB_CHECK_NE(a, b) VECDB_CHECK_OP_(!=, a, b)
#define VECDB_CHECK_LT(a, b) VECDB_CHECK_OP_(<, a, b)
#define VECDB_CHECK_LE(a, b) VECDB_CHECK_OP_(<=, a, b)
#define VECDB_CHECK_GT(a, b) VECDB_CHECK_OP_(>, a, b)
#define VECDB_CHECK_GE(a, b) VECDB_CHECK_OP_(>=, a, b)

// Debug-only variants. `true || (cond)` keeps the condition compiled (name
// lookup and type checks still run) but never evaluated, so Release builds
// pay nothing and debug-only expressions cannot rot.
#ifdef NDEBUG
#define VECDB_DCHECK(cond) VECDB_CHECK(true || (cond))
#define VECDB_DCHECK_EQ(a, b) VECDB_DCHECK((a) == (b))
#define VECDB_DCHECK_NE(a, b) VECDB_DCHECK((a) != (b))
#define VECDB_DCHECK_LT(a, b) VECDB_DCHECK((a) < (b))
#define VECDB_DCHECK_LE(a, b) VECDB_DCHECK((a) <= (b))
#define VECDB_DCHECK_GT(a, b) VECDB_DCHECK((a) > (b))
#define VECDB_DCHECK_GE(a, b) VECDB_DCHECK((a) >= (b))
#else
#define VECDB_DCHECK(cond) VECDB_CHECK(cond)
#define VECDB_DCHECK_EQ(a, b) VECDB_CHECK_EQ(a, b)
#define VECDB_DCHECK_NE(a, b) VECDB_CHECK_NE(a, b)
#define VECDB_DCHECK_LT(a, b) VECDB_CHECK_LT(a, b)
#define VECDB_DCHECK_LE(a, b) VECDB_CHECK_LE(a, b)
#define VECDB_DCHECK_GT(a, b) VECDB_CHECK_GT(a, b)
#define VECDB_DCHECK_GE(a, b) VECDB_CHECK_GE(a, b)
#endif
