#include "common/random.h"

#include <cmath>
#include <numeric>

namespace vecdb {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  has_spare_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

float Rng::UniformFloat() {
  return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  float u, v, s;
  do {
    u = 2.f * UniformFloat() - 1.f;
    v = 2.f * UniformFloat() - 1.f;
    s = u * u + v * v;
  } while (s >= 1.f || s == 0.f);
  const float mul = std::sqrt(-2.f * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  std::vector<uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  if (k > n) k = n;
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(Uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace vecdb
