// Cache-line/SIMD aligned float storage for vector data. Alignment keeps the
// auto-vectorized distance kernels and the blocked SGEMM on their fast paths.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace vecdb {

/// Owning, 64-byte-aligned float array.
///
/// Movable, non-copyable; `resize` preserves existing contents up to the new
/// size. Intended for bulk vector matrices (`n * dim` floats) where
/// std::vector's value-initialization and unaligned storage would cost.
class AlignedFloats {
 public:
  AlignedFloats() = default;

  explicit AlignedFloats(size_t n) { Resize(n); }

  ~AlignedFloats() { std::free(data_); }

  AlignedFloats(AlignedFloats&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedFloats& operator=(AlignedFloats&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  AlignedFloats(const AlignedFloats&) = delete;
  AlignedFloats& operator=(const AlignedFloats&) = delete;

  /// Grows or shrinks to `n` floats, preserving the common prefix.
  /// New elements are zero-initialized.
  void Resize(size_t n) {
    if (n > capacity_) {
      size_t cap = capacity_ == 0 ? 1024 : capacity_;
      while (cap < n) cap *= 2;
      float* fresh = static_cast<float*>(
          std::aligned_alloc(64, RoundUp(cap * sizeof(float), 64)));
      if (data_ != nullptr) {
        std::memcpy(fresh, data_, size_ * sizeof(float));
        std::free(data_);
      }
      data_ = fresh;
      capacity_ = cap;
    }
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(float));
    size_ = n;
  }

  /// Appends `count` floats from `src`.
  void Append(const float* src, size_t count) {
    const size_t old = size_;
    Resize(old + count);
    std::memcpy(data_ + old, src, count * sizeof(float));
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float& operator[](size_t i) { return data_[i]; }
  const float& operator[](size_t i) const { return data_[i]; }

 private:
  static size_t RoundUp(size_t v, size_t to) { return (v + to - 1) / to * to; }

  float* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace vecdb
