#include "sql/database.h"

#include <algorithm>

#include "common/timer.h"
#include "core/factory.h"
#include "distance/kernels.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "topk/heaps.h"

namespace vecdb::sql {

namespace {
double OptionOr(const std::map<std::string, double>& options,
                const std::string& key, double fallback) {
  auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

/// Sum of every engine's tuples-visited counter; the before/after delta of
/// this across one statement is the executor's rows_scanned.
uint64_t TuplesVisitedSnapshot() {
  auto& m = obs::MetricsRegistry::Global();
  return m.Value(obs::Counter::kFaissTuplesVisited) +
         m.Value(obs::Counter::kPaseTuplesVisited) +
         m.Value(obs::Counter::kBridgeTuplesVisited);
}

/// Row-image column layout predicates bind against: the id column first,
/// then the attribute columns in declaration order.
std::vector<std::string> PredicateColumns(const CreateTableStmt& schema) {
  std::vector<std::string> cols;
  cols.reserve(1 + schema.attr_columns.size());
  cols.push_back(schema.id_column);
  for (const auto& attr : schema.attr_columns) cols.push_back(attr);
  return cols;
}
}  // namespace

Result<std::unique_ptr<MiniDatabase>> MiniDatabase::Open(
    const std::string& data_dir, const DatabaseOptions& options) {
  if (options.pool_pages < 16) {
    return Status::InvalidArgument("pool_pages must be >= 16");
  }
  VECDB_ASSIGN_OR_RETURN(
      pgstub::StorageManager smgr,
      pgstub::StorageManager::Open(data_dir, options.page_size));
  // A SQL session is a serving context: turn the process-wide registry on
  // so SHOW METRICS and ExecStats have live numbers.
  obs::MetricsRegistry::Global().SetEnabled(true);
  return std::unique_ptr<MiniDatabase>(
      new MiniDatabase(std::move(smgr), options.pool_pages));
}

Result<QueryResult> MiniDatabase::Execute(const std::string& statement) {
  Timer timer;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Add(obs::Counter::kSqlStatements);
  auto parsed = Parse(statement);
  if (!parsed.ok()) {
    metrics.Add(obs::Counter::kSqlErrors);
    return parsed.status();
  }
  const Statement& stmt = *parsed;
  Result<QueryResult> result = Dispatch(stmt);
  const auto nanos = static_cast<uint64_t>(timer.ElapsedNanos());
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      metrics.Add(obs::Counter::kSqlCreateTable);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      break;
    case Statement::Kind::kInsert:
      metrics.Add(obs::Counter::kSqlInsertRows, stmt.insert->rows.size());
      metrics.Record(obs::Hist::kSqlInsertNanos, nanos);
      break;
    case Statement::Kind::kCreateIndex:
      metrics.Add(obs::Counter::kSqlCreateIndex);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      break;
    case Statement::Kind::kSelect:
      metrics.Add(obs::Counter::kSqlSelect);
      metrics.Record(obs::Hist::kSqlSelectNanos, nanos);
      break;
    case Statement::Kind::kDrop:
      metrics.Add(obs::Counter::kSqlDrop);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      break;
    case Statement::Kind::kDelete:
      metrics.Add(obs::Counter::kSqlDelete);
      break;
    case Statement::Kind::kShow:
      metrics.Add(obs::Counter::kSqlShow);
      break;
  }
  if (!result.ok()) {
    metrics.Add(obs::Counter::kSqlErrors);
    return result;
  }
  result->stats.wall_seconds = static_cast<double>(nanos) * 1e-9;
  result->stats.rows_returned = result->rows.size();
  return result;
}

Result<QueryResult> MiniDatabase::Dispatch(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      return ExecCreateTable(*stmt.create_table);
    case Statement::Kind::kInsert:
      return ExecInsert(*stmt.insert);
    case Statement::Kind::kCreateIndex:
      return ExecCreateIndex(*stmt.create_index);
    case Statement::Kind::kSelect:
      return ExecSelect(*stmt.select);
    case Statement::Kind::kDrop:
      return ExecDrop(*stmt.drop);
    case Statement::Kind::kDelete:
      return ExecDelete(*stmt.delete_row);
    case Statement::Kind::kShow:
      return ExecShow(*stmt.show);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> MiniDatabase::ExecCreateTable(
    const CreateTableStmt& stmt) {
  if (tables_.count(stmt.table) != 0) {
    return Status::AlreadyExists("table exists: " + stmt.table);
  }
  VECDB_ASSIGN_OR_RETURN(
      pgstub::HeapTable heap,
      pgstub::HeapTable::Create(
          &bufmgr_, &smgr_, stmt.table, stmt.dim,
          static_cast<uint32_t>(stmt.attr_columns.size())));
  TableEntry entry;
  entry.schema = stmt;
  entry.heap = std::make_unique<pgstub::HeapTable>(std::move(heap));
  tables_.emplace(stmt.table, std::move(entry));
  QueryResult out;
  out.message = "CREATE TABLE";
  return out;
}

Result<QueryResult> MiniDatabase::ExecInsert(const InsertStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  TableEntry& table = it->second;
  for (const auto& row : stmt.rows) {
    if (row.vec.size() != table.schema.dim) {
      return Status::InvalidArgument(
          "vector has " + std::to_string(row.vec.size()) +
          " dimensions, table expects " + std::to_string(table.schema.dim));
    }
    if (row.attrs.size() != table.schema.attr_columns.size()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(row.attrs.size()) +
          " attribute values, table expects " +
          std::to_string(table.schema.attr_columns.size()));
    }
  }
  for (const auto& row : stmt.rows) {
    VECDB_RETURN_NOT_OK(
        table.heap
            ->Insert(row.id, row.vec.data(),
                     row.attrs.empty() ? nullptr : row.attrs.data())
            .status());
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        Status s = idx->second.am->AmInsert(row.vec.data(), row.id);
        if (!s.ok() && !s.IsNotSupported()) return s;
        // NotSupported: PASE-era indexes require a rebuild after bulk
        // loads; the paper's workloads build after loading, as we do.
      }
    }
  }
  QueryResult out;
  out.message = "INSERT " + std::to_string(stmt.rows.size());
  return out;
}

Result<std::unique_ptr<VectorIndex>> MiniDatabase::MakeIndex(
    const CreateIndexStmt& stmt, uint32_t dim) {
  // Translate the parsed statement into a factory spec; SQL option keys
  // are the factory's option keys.
  IndexSpec spec;
  spec.method = stmt.method;
  spec.engine = stmt.engine;
  spec.dim = dim;
  spec.options = stmt.options;
  spec.rel_prefix = stmt.index;
  return CreateIndex(spec, pase::PaseEnv{&smgr_, &bufmgr_});
}

Result<QueryResult> MiniDatabase::ExecCreateIndex(
    const CreateIndexStmt& stmt) {
  if (indexes_.count(stmt.index) != 0) {
    return Status::AlreadyExists("index exists: " + stmt.index);
  }
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  TableEntry& table = it->second;
  if (stmt.column != table.schema.vec_column) {
    return Status::InvalidArgument("column " + stmt.column +
                                   " is not the vector column of " +
                                   stmt.table);
  }
  IndexEntry entry;
  entry.def = stmt;
  VECDB_ASSIGN_OR_RETURN(entry.index, MakeIndex(stmt, table.schema.dim));
  entry.am = std::make_unique<pgstub::VectorIndexAm>(entry.index.get());
  VECDB_RETURN_NOT_OK(entry.am->AmBuild(*table.heap));
  table.indexes.push_back(stmt.index);
  indexes_.emplace(stmt.index, std::move(entry));
  QueryResult out;
  out.message = "CREATE INDEX";
  return out;
}

Result<QueryResult> MiniDatabase::SeqScanSelect(
    const SelectStmt& stmt, const TableEntry& table,
    const filter::BoundPredicate* bound) {
  KMaxHeap heap(stmt.limit);
  uint64_t scanned = 0;
  std::vector<int64_t> row_image(1 + table.schema.attr_columns.size());
  VECDB_RETURN_NOT_OK(table.heap->SeqScanFull(
      [&](pgstub::TupleId, int64_t row_id, const float* vec,
          const int64_t* attrs) {
        ++scanned;
        if (!table.deleted.empty() && table.deleted.count(row_id) != 0) {
          return true;  // dead tuple
        }
        if (bound != nullptr) {
          row_image[0] = row_id;
          for (size_t a = 0; a < table.schema.attr_columns.size(); ++a) {
            row_image[1 + a] = attrs[a];
          }
          if (!bound->Eval(row_image.data())) return true;
        }
        heap.Push(Distance(stmt.metric, stmt.query.data(), vec,
                           table.schema.dim),
                  row_id);
        return true;
      }));
  QueryResult out;
  out.stats.rows_scanned = scanned;
  out.columns = stmt.select_distance
                    ? std::vector<std::string>{"id", "distance"}
                    : std::vector<std::string>{"id"};
  for (const auto& nb : heap.TakeSorted()) {
    out.rows.push_back({nb.id, nb.dist});
  }
  return out;
}

Result<MiniDatabase::FilterPlan> MiniDatabase::BuildFilterPlan(
    const TableEntry& table, const filter::BoundPredicate& bound,
    size_t sample_rows) const {
  FilterPlan plan;
  const size_t n = table.heap->num_rows();
  plan.selection = filter::SelectionVector(n);
  // One pass: the exact bitmap for the strategies, and a strided sample
  // for the planner's selectivity estimate (what an attribute-store
  // EstimateSelectivity would see).
  const size_t stride = n <= sample_rows ? 1 : (n + sample_rows - 1) / sample_rows;
  size_t pos = 0;
  size_t sampled = 0;
  size_t sampled_matches = 0;
  std::vector<int64_t> row_image(1 + table.schema.attr_columns.size());
  VECDB_RETURN_NOT_OK(table.heap->SeqScanFull(
      [&](pgstub::TupleId, int64_t row_id, const float*,
          const int64_t* attrs) {
        row_image[0] = row_id;
        for (size_t a = 0; a < table.schema.attr_columns.size(); ++a) {
          row_image[1 + a] = attrs[a];
        }
        const bool dead =
            !table.deleted.empty() && table.deleted.count(row_id) != 0;
        const bool match = !dead && bound.Eval(row_image.data());
        if (match) plan.selection.Set(pos);
        if (pos % stride == 0) {
          ++sampled;
          if (match) ++sampled_matches;
        }
        ++pos;
        return true;
      }));
  plan.est_selectivity =
      sampled == 0 ? 1.0
                   : static_cast<double>(sampled_matches) /
                         static_cast<double>(sampled);
  return plan;
}

Result<QueryResult> MiniDatabase::ExecSelect(const SelectStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  const TableEntry& table = it->second;
  if (!stmt.select_distance && stmt.select_column != table.schema.id_column) {
    return Status::InvalidArgument("can only select the id column ('" +
                                   table.schema.id_column + "') or *");
  }
  if (stmt.order_column != table.schema.vec_column) {
    return Status::InvalidArgument("ORDER BY column must be the vector "
                                   "column '" +
                                   table.schema.vec_column + "'");
  }
  if (stmt.query.size() != table.schema.dim) {
    return Status::InvalidArgument(
        "query vector has " + std::to_string(stmt.query.size()) +
        " dimensions, table expects " + std::to_string(table.schema.dim));
  }

  // Bind the WHERE predicate (if any) against id + attribute columns.
  filter::BoundPredicate bound;
  const bool has_predicate = stmt.predicate != nullptr;
  if (has_predicate) {
    VECDB_ASSIGN_OR_RETURN(
        bound, filter::Bind(*stmt.predicate, PredicateColumns(table.schema)));
  }
  filter::FilterStrategy strategy = filter::FilterStrategy::kAuto;
  auto strat_it = stmt.string_options.find("filter_strategy");
  if (strat_it != stmt.string_options.end()) {
    VECDB_ASSIGN_OR_RETURN(strategy, filter::ParseStrategy(strat_it->second));
  }

  // Plan: an index scan needs an index on this column and an L2 operator
  // (the engines implement Euclidean distance, PASE similarity type 0).
  const IndexEntry* chosen = nullptr;
  if (stmt.metric == Metric::kL2) {
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        chosen = &idx->second;
        break;
      }
    }
  }

  // The exact bitmap + sampled selectivity for the filtered index scan
  // (EXPLAIN reports the same numbers the executor would use).
  const filter::PlannerConfig planner;
  FilterPlan plan;
  if (has_predicate && chosen != nullptr) {
    VECDB_ASSIGN_OR_RETURN(plan,
                           BuildFilterPlan(table, bound, planner.sample_rows));
  }

  if (stmt.explain) {
    QueryResult out;
    if (chosen != nullptr) {
      out.message = "Index Scan using " + chosen->def.index + " (" +
                    chosen->index->Describe() + ") k=" +
                    std::to_string(stmt.limit);
      if (has_predicate) {
        const filter::FilterStrategy effective =
            strategy == filter::FilterStrategy::kAuto
                ? filter::ChooseStrategy(plan.est_selectivity, stmt.limit,
                                         chosen->index->NumVectors(), planner)
                : strategy;
        out.message += " filter=" + filter::ToString(*stmt.predicate) +
                       " strategy=" +
                       std::string(filter::StrategyName(effective)) +
                       " est_selectivity=" +
                       std::to_string(plan.est_selectivity);
      }
    } else {
      out.message = "Seq Scan on " + stmt.table + " (brute force, metric=" +
                    std::string(MetricName(stmt.metric)) + ") k=" +
                    std::to_string(stmt.limit);
      if (has_predicate) {
        out.message += " filter=" + filter::ToString(*stmt.predicate);
      }
    }
    return out;
  }

  if (chosen == nullptr) {
    return SeqScanSelect(stmt, table, has_predicate ? &bound : nullptr);
  }

  pgstub::AmScanOptions scan;
  scan.k = stmt.limit;
  scan.nprobe = static_cast<uint32_t>(OptionOr(stmt.options, "nprobe", 20));
  // Engines reject efs < k at the API boundary, so the default must track
  // the requested LIMIT.
  scan.efs = static_cast<uint32_t>(OptionOr(
      stmt.options, "efs",
      std::max<double>(200, static_cast<double>(stmt.limit))));
  if (has_predicate) {
    scan.filter.selection = &plan.selection;
    scan.filter.strategy = strategy;
    scan.filter.est_selectivity = plan.est_selectivity;
    scan.filter.planner = planner;
  }
  const uint64_t visited_before = TuplesVisitedSnapshot();
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<pgstub::IndexScanCursor> cursor,
                         chosen->am->AmBeginScan(stmt.query.data(), scan));
  QueryResult out;
  out.columns = stmt.select_distance
                    ? std::vector<std::string>{"id", "distance"}
                    : std::vector<std::string>{"id"};
  Neighbor nb;
  for (;;) {
    VECDB_ASSIGN_OR_RETURN(bool more, cursor->AmGetTuple(&nb));
    if (!more) break;
    out.rows.push_back({nb.id, nb.dist});
  }
  // The engine flushed its scan counters when the scan materialized in
  // AmBeginScan, so the delta is this statement's tuple traffic. Fall back
  // to the result size if the registry was toggled off mid-statement.
  const uint64_t delta = TuplesVisitedSnapshot() - visited_before;
  out.stats.rows_scanned =
      std::max<uint64_t>(delta, out.rows.size());
  return out;
}

Result<QueryResult> MiniDatabase::ExecShow(const ShowStmt& stmt) {
  auto& metrics = obs::MetricsRegistry::Global();
  QueryResult out;
  out.message = metrics.ExportTable();
  if (stmt.reset) metrics.ResetAll();
  return out;
}

Result<QueryResult> MiniDatabase::ExecDelete(const DeleteStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  TableEntry& table = it->second;
  if (stmt.predicate == nullptr) {
    return Status::InvalidArgument("DELETE requires a WHERE clause");
  }

  // Fast path for the classic `WHERE id = n`: no predicate binding, and
  // the historical NotFound errors for missing / already-deleted rows.
  const filter::Predicate& pred = *stmt.predicate;
  if (pred.kind == filter::Predicate::Kind::kCompare &&
      pred.op == filter::CmpOp::kEq &&
      pred.column == table.schema.id_column) {
    const int64_t id = pred.value;
    if (table.deleted.count(id) != 0) {
      return Status::NotFound("row " + std::to_string(id) +
                              " already deleted");
    }
    // The row must exist in the heap before it can be tombstoned.
    bool exists = false;
    VECDB_RETURN_NOT_OK(table.heap->SeqScan(
        [&](pgstub::TupleId, int64_t row_id, const float*) {
          if (row_id == id) {
            exists = true;
            return false;
          }
          return true;
        }));
    if (!exists) {
      return Status::NotFound("no row with id " + std::to_string(id));
    }
    table.deleted.insert(id);
    // Tombstone the row in every index on the table; ids unknown to an
    // index (never inserted) surface as NotFound from the check above.
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        Status s = idx->second.am->AmDelete(id);
        if (!s.ok() && !s.IsNotSupported()) return s;
      }
    }
    QueryResult out;
    out.message = "DELETE 1";
    return out;
  }

  // General path: bind the predicate, collect every matching live row,
  // and tombstone them all. Deleting zero rows is not an error (SQL
  // semantics: "DELETE 0").
  filter::BoundPredicate bound;
  VECDB_ASSIGN_OR_RETURN(
      bound, filter::Bind(pred, PredicateColumns(table.schema)));
  std::vector<int64_t> matches;
  std::vector<int64_t> row_image(1 + table.schema.attr_columns.size());
  VECDB_RETURN_NOT_OK(table.heap->SeqScanFull(
      [&](pgstub::TupleId, int64_t row_id, const float*,
          const int64_t* attrs) {
        if (!table.deleted.empty() && table.deleted.count(row_id) != 0) {
          return true;
        }
        row_image[0] = row_id;
        for (size_t a = 0; a < table.schema.attr_columns.size(); ++a) {
          row_image[1 + a] = attrs[a];
        }
        if (bound.Eval(row_image.data())) matches.push_back(row_id);
        return true;
      }));
  for (int64_t id : matches) {
    table.deleted.insert(id);
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        // NotSupported: rebuild-only index; NotFound: the row was never
        // propagated into this index (inserted after a bulk build).
        Status s = idx->second.am->AmDelete(id);
        if (!s.ok() && !s.IsNotSupported() && !s.IsNotFound()) return s;
      }
    }
  }
  QueryResult out;
  out.message = "DELETE " + std::to_string(matches.size());
  return out;
}

Result<QueryResult> MiniDatabase::ExecDrop(const DropStmt& stmt) {
  QueryResult out;
  if (stmt.is_index) {
    auto it = indexes_.find(stmt.name);
    if (it == indexes_.end()) {
      return Status::NotFound("no index named " + stmt.name);
    }
    for (auto& [_, table] : tables_) {
      auto& list = table.indexes;
      list.erase(std::remove(list.begin(), list.end(), stmt.name),
                 list.end());
    }
    indexes_.erase(it);
    out.message = "DROP INDEX";
    return out;
  }
  auto it = tables_.find(stmt.name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.name);
  }
  if (!it->second.indexes.empty()) {
    return Status::InvalidArgument("drop indexes on " + stmt.name +
                                   " first");
  }
  tables_.erase(it);
  out.message = "DROP TABLE";
  return out;
}

}  // namespace vecdb::sql
