#include "sql/database.h"

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "core/factory.h"
#include "distance/dispatch.h"
#include "distance/kernels.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "topk/heaps.h"

namespace vecdb::sql {

namespace {
/// Sum of every engine's tuples-visited counter in `m`; the before/after
/// delta of this across one statement is the executor's rows_scanned.
/// Under concurrency the delta can include other statements' traffic
/// (counters are process-wide unless the session sets a private sink).
uint64_t TuplesVisitedSnapshot(const obs::MetricsRegistry& m) {
  return m.Value(obs::Counter::kFaissTuplesVisited) +
         m.Value(obs::Counter::kPaseTuplesVisited) +
         m.Value(obs::Counter::kBridgeTuplesVisited);
}

/// Row-image column layout predicates bind against: the id column first,
/// then the attribute columns in declaration order.
std::vector<std::string> PredicateColumns(const CreateTableStmt& schema) {
  std::vector<std::string> cols;
  cols.reserve(1 + schema.attr_columns.size());
  cols.push_back(schema.id_column);
  for (const auto& attr : schema.attr_columns) cols.push_back(attr);
  return cols;
}

/// Scoped table lock whose mode is chosen at runtime: shared for scans
/// that may run concurrently, exclusive when the chosen index's Search is
/// not concurrency-safe (HNSW scratch state). Declared to the analysis as
/// a shared acquisition — an exclusive hold satisfies every shared read
/// the scan performs, so the claim is sound; the ctor/dtor bodies are
/// VECDB_NO_TSA because the mode is a runtime value.
class VECDB_SCOPED_CAPABILITY TableScanLock {
 public:
  TableScanLock(SharedMutex& mu, bool exclusive)
      VECDB_ACQUIRE_SHARED(mu) VECDB_NO_TSA
      : mu_(mu), exclusive_(exclusive) {
    if (exclusive_) {
      mu_.Lock();
    } else {
      mu_.ReaderLock();
    }
  }
  ~TableScanLock() VECDB_RELEASE() VECDB_NO_TSA {
    if (exclusive_) {
      mu_.Unlock();
    } else {
      mu_.ReaderUnlock();
    }
  }

  TableScanLock(const TableScanLock&) = delete;
  TableScanLock& operator=(const TableScanLock&) = delete;

 private:
  SharedMutex& mu_;
  const bool exclusive_;
};

const char* kWalFileName = "/wal.log";

/// Upper bound for every statement_timeout_ms source (DatabaseOptions,
/// SET, statement OPTIONS): 24 hours. A "timeout" past that is a typo.
constexpr uint32_t kMaxStatementTimeoutMs = 24u * 60 * 60 * 1000;

/// Knob validation shared by `SET name = value` and the per-statement
/// OPTIONS list (PR 3 convention: reject nonsense at the boundary with
/// InvalidArgument, never clamp silently).
Status ValidateSessionOption(const std::string& name, double value) {
  auto require_positive_int = [&]() -> Status {
    if (value < 1 || value != static_cast<double>(static_cast<uint64_t>(value))) {
      return Status::InvalidArgument(name + " must be a positive integer");
    }
    return Status::OK();
  };
  if (name == "nprobe" || name == "efs" || name == "num_threads") {
    return require_positive_int();
  }
  if (name == "statement_timeout_ms") {
    if (value < 0 ||
        value != static_cast<double>(static_cast<uint64_t>(value))) {
      return Status::InvalidArgument(
          "statement_timeout_ms must be a non-negative integer");
    }
    if (value > static_cast<double>(kMaxStatementTimeoutMs)) {
      return Status::InvalidArgument("statement_timeout_ms must be <= " +
                                     std::to_string(kMaxStatementTimeoutMs) +
                                     " (24h); 0 disables the deadline");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown session option: " + name +
                                 " (expected nprobe, efs, num_threads, or "
                                 "statement_timeout_ms)");
}
}  // namespace

MiniDatabase::MiniDatabase(pgstub::StorageManager smgr, pgstub::Vfs* vfs,
                           const DatabaseOptions& options)
    : options_(options),
      vfs_(vfs),
      smgr_(std::move(smgr)),
      bufmgr_(&smgr_, options.pool_pages) {}

Result<std::unique_ptr<MiniDatabase>> MiniDatabase::Open(
    const std::string& data_dir, const DatabaseOptions& options) {
  if (options.pool_pages < 16) {
    return Status::InvalidArgument("pool_pages must be >= 16");
  }
  if (options.max_concurrent_queries == 0) {
    return Status::InvalidArgument("max_concurrent_queries must be >= 1");
  }
  if (options.max_inflight_per_session == 0) {
    return Status::InvalidArgument("max_inflight_per_session must be >= 1");
  }
  if (options.statement_timeout_ms > kMaxStatementTimeoutMs) {
    return Status::InvalidArgument("statement_timeout_ms must be <= " +
                                   std::to_string(kMaxStatementTimeoutMs) +
                                   " (24h); 0 disables the deadline");
  }
  pgstub::Vfs* vfs =
      options.vfs != nullptr ? options.vfs : pgstub::Vfs::Default();
  // A SQL session is a serving context: turn the process-wide registry on
  // so SHOW METRICS and ExecStats (and recovery counters) have live
  // numbers.
  obs::MetricsRegistry::Global().SetEnabled(true);

  VECDB_ASSIGN_OR_RETURN(
      pgstub::StorageManager smgr,
      pgstub::StorageManager::Open(vfs, data_dir, options.page_size));

  // Durable schema state; a fresh directory simply has none.
  Catalog catalog;
  auto loaded = LoadCatalog(vfs, data_dir);
  if (loaded.ok()) {
    catalog = std::move(*loaded);
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();
  }

  // Garbage-collect relations no cataloged table owns: page-resident index
  // relations (rebuilt from the heap below), plus leftovers from drops that
  // crashed between the manifest commit and the file unlink. Doing this
  // BEFORE REDO also makes replay skip their stale full-page images.
  for (const auto& [rel, name] : smgr.ListRelations()) {
    if (catalog.tables.count(name) == 0) {
      VECDB_RETURN_NOT_OK(smgr.DropRelation(rel));
    }
  }

  // ARIES-lite REDO: write intact post-checkpoint page images back into
  // the storage manager, and collect logical deletes for the tables below.
  std::unique_ptr<pgstub::WalManager> wal;
  std::vector<pgstub::WalTombstone> wal_tombstones;
  if (options.wal_enabled) {
    const std::string wal_path = data_dir + kWalFileName;
    VECDB_ASSIGN_OR_RETURN(pgstub::WalManager opened,
                           pgstub::WalManager::Open(vfs, wal_path));
    wal = std::make_unique<pgstub::WalManager>(std::move(opened));
    VECDB_RETURN_NOT_OK(
        pgstub::WalManager::Recover(vfs, wal_path, &smgr, &wal_tombstones));
  }

  std::unique_ptr<MiniDatabase> db(
      new MiniDatabase(std::move(smgr), vfs, options));
  db->admission_ = std::make_unique<AdmissionController>(
      options.max_concurrent_queries, options.max_inflight_per_session);
  db->sessions_ = std::make_unique<SessionManager>(db.get());
  db->wal_ = std::move(wal);
  {
    WriterMutexLock lock(db->catalog_mu_);
    VECDB_RETURN_NOT_OK(db->RecoverFrom(catalog, wal_tombstones));
  }
  // Attach the WAL only now: index rebuilds above regenerate state that is
  // already recoverable from the heap, so logging their pages would only
  // bloat the fresh log.
  db->bufmgr_.SetWal(db->wal_.get());
  // End-of-recovery checkpoint (PostgreSQL does the same): makes the
  // recovered pages durable and resets the WAL so the next crash replays
  // only new work.
  if (db->wal_ != nullptr) {
    VECDB_RETURN_NOT_OK(db->Checkpoint());
  }
  return db;
}

MiniDatabase::~MiniDatabase() {
  // Mark every session closed so a handle that outlives the database
  // fails fast instead of dereferencing it. (Sessions must not have
  // statements in flight when the database is destroyed.)
  if (sessions_ != nullptr) sessions_->CloseAll();
}

std::shared_ptr<Session> MiniDatabase::CreateSession() {
  return sessions_->Create();
}

const std::unordered_set<int64_t>& MiniDatabase::DeletedRows(
    const TableEntry& table) {
  static const std::unordered_set<int64_t> kEmpty;
  const TableSnapshot* snap =
      table.state->snapshot.load(std::memory_order_acquire);
  return snap != nullptr && snap->deleted != nullptr ? *snap->deleted
                                                     : kEmpty;
}

void MiniDatabase::PublishSnapshot(
    TableEntry& table, uint64_t visible_rows,
    std::shared_ptr<const std::unordered_set<int64_t>> deleted) {
  auto* next = new TableSnapshot{visible_rows, std::move(deleted)};
  // Release: a reader that acquire-loads `next` must observe every heap
  // and tombstone write the statement performed before publishing.
  const TableSnapshot* old =
      table.state->snapshot.exchange(next, std::memory_order_acq_rel);
  if (old != nullptr) {
    // Readers pinned before this retirement may still hold `old`; the
    // epoch manager frees it once they all exit.
    epochs_.Retire([old] { delete old; });
    epochs_.ReclaimReady();
  }
}

Status MiniDatabase::RecoverFrom(
    const Catalog& catalog,
    const std::vector<pgstub::WalTombstone>& wal_tombstones) {
  std::map<std::string, std::unordered_set<int64_t>> dead;
  for (const auto& [name, cat_table] : catalog.tables) {
    TableEntry entry;
    entry.schema = cat_table.schema;
    VECDB_ASSIGN_OR_RETURN(
        pgstub::HeapTable heap,
        pgstub::HeapTable::Attach(
            &bufmgr_, &smgr_, name, cat_table.schema.dim,
            static_cast<uint32_t>(cat_table.schema.attr_columns.size())));
    entry.heap = std::make_unique<pgstub::HeapTable>(std::move(heap));
    entry.state = std::make_unique<TableState>();
    dead[name].insert(cat_table.tombstones.begin(),
                      cat_table.tombstones.end());
    tables_.emplace(name, std::move(entry));
  }
  // Deletes issued after the last catalog write survive only as WAL
  // tombstone records; fold them into the per-table sets (idempotent).
  for (const auto& tomb : wal_tombstones) {
    for (auto& [name, table] : tables_) {
      if (table.heap->rel() == tomb.rel) {
        dead[name].insert(tomb.row_id);
        break;
      }
    }
  }
  // Publish each table's initial snapshot: every recovered row visible,
  // tombstones as recovered. No readers exist yet (recovery runs under
  // the exclusive catalog lock before any session is created).
  for (auto& [name, table] : tables_) {
    std::unordered_set<int64_t>& set = dead[name];
    std::shared_ptr<const std::unordered_set<int64_t>> ptr;
    if (!set.empty()) {
      ptr = std::make_shared<const std::unordered_set<int64_t>>(
          std::move(set));
    }
    table.state->snapshot.store(
        new TableSnapshot{table.heap->num_rows(), std::move(ptr)},
        std::memory_order_release);
  }
  for (const auto& [name, cat_index] : catalog.indexes) {
    auto tbl = tables_.find(cat_index.def.table);
    if (tbl == tables_.end()) {
      return Status::Corruption("catalog index " + name +
                                " references missing table " +
                                cat_index.def.table);
    }
    IndexEntry entry;
    entry.def = cat_index.def;
    if (options_.index_recovery != IndexRecovery::kReload ||
        !TryReloadIndex(cat_index, tbl->second, &entry)) {
      VECDB_RETURN_NOT_OK(RebuildIndex(tbl->second, &entry));
    }
    tbl->second.indexes.push_back(name);
    indexes_.emplace(name, std::move(entry));
  }
  return Status::OK();
}

Status MiniDatabase::RebuildIndex(const TableEntry& table, IndexEntry* entry) {
  VECDB_ASSIGN_OR_RETURN(entry->index,
                         MakeIndex(entry->def, table.schema.dim));
  entry->am = std::make_unique<pgstub::VectorIndexAm>(entry->index.get());
  entry->has_snapshot = false;
  entry->rows_at_snapshot = 0;
  // An index can be cataloged only after a successful build over >= 1 row,
  // but guard anyway: an empty heap leaves the index untrained, exactly as
  // a freshly created one would be.
  if (table.heap->num_rows() == 0) return Status::OK();
  VECDB_RETURN_NOT_OK(entry->am->AmBuild(*table.heap));
  for (int64_t id : DeletedRows(table)) {
    Status s = entry->am->AmDelete(id);
    if (!s.ok() && !s.IsNotFound() && !s.IsNotSupported()) return s;
  }
  return Status::OK();
}

std::string MiniDatabase::SnapshotPath(const std::string& name,
                                       uint64_t rows) const {
  return smgr_.dir() + "/" + name + "." + std::to_string(rows) + ".snap";
}

bool MiniDatabase::TryReloadIndex(const CatalogIndex& cat,
                                  const TableEntry& table,
                                  IndexEntry* entry) {
  // Only the "faiss" engine has Save/Load; page-resident engines rebuild.
  if (cat.def.engine != "faiss" || !cat.has_snapshot) return false;
  if (table.heap->num_rows() < cat.rows_at_snapshot) return false;
  const std::string path = SnapshotPath(cat.def.index, cat.rows_at_snapshot);
  auto exists = vfs_->Exists(path);
  if (!exists.ok() || !*exists) return false;

  std::unique_ptr<VectorIndex> loaded;
  if (cat.def.method == "ivfflat") {
    auto r = faisslike::IvfFlatIndex::Load(path);
    if (!r.ok()) return false;
    loaded = std::make_unique<faisslike::IvfFlatIndex>(std::move(*r));
  } else if (cat.def.method == "ivfpq") {
    auto r = faisslike::IvfPqIndex::Load(path);
    if (!r.ok()) return false;
    loaded = std::make_unique<faisslike::IvfPqIndex>(std::move(*r));
  } else if (cat.def.method == "hnsw") {
    auto r = faisslike::HnswIndex::Load(path);
    if (!r.ok()) return false;
    loaded = std::make_unique<faisslike::HnswIndex>(std::move(*r));
  } else {
    return false;
  }
  if (loaded->NumVectors() != cat.rows_at_snapshot) return false;

  auto am = std::make_unique<pgstub::VectorIndexAm>(loaded.get());
  if (!am->AmAttach(*table.heap, cat.rows_at_snapshot).ok()) return false;
  // Top up with the rows inserted after the snapshot (recovered into the
  // heap by REDO), in heap scan order — the same order AmInsert would have
  // seen them live.
  size_t pos = 0;
  Status insert_status;
  Status scan = table.heap->SeqScan(
      [&](pgstub::TupleId, int64_t row_id, const float* vec) {
        if (pos++ < cat.rows_at_snapshot) return true;
        insert_status = am->AmInsert(vec, row_id);
        return insert_status.ok();
      });
  if (!scan.ok() || !insert_status.ok()) return false;
  // Snapshots are taken only when the table has no tombstones, so every
  // recovered delete must be re-applied here.
  for (int64_t id : DeletedRows(table)) {
    Status s = am->AmDelete(id);
    if (!s.ok() && !s.IsNotFound() && !s.IsNotSupported()) return false;
  }
  entry->index = std::move(loaded);
  entry->am = std::move(am);
  entry->has_snapshot = true;
  entry->rows_at_snapshot = cat.rows_at_snapshot;
  return true;
}

Status MiniDatabase::SaveCatalogNow() const {
  Catalog catalog;
  for (const auto& [name, table] : tables_) {
    CatalogTable cat;
    cat.schema = table.schema;
    const std::unordered_set<int64_t>& dead = DeletedRows(table);
    cat.tombstones.assign(dead.begin(), dead.end());
    std::sort(cat.tombstones.begin(), cat.tombstones.end());
    cat.rows_at_checkpoint = table.heap->num_rows();
    catalog.tables.emplace(name, std::move(cat));
  }
  for (const auto& [name, index] : indexes_) {
    CatalogIndex cat;
    cat.def = index.def;
    cat.has_snapshot = index.has_snapshot;
    cat.rows_at_snapshot = index.rows_at_snapshot;
    catalog.indexes.emplace(name, std::move(cat));
  }
  return SaveCatalog(vfs_, smgr_.dir(), catalog);
}

Status MiniDatabase::Checkpoint() {
  WriterMutexLock lock(catalog_mu_);
  return CheckpointLocked();
}

Status MiniDatabase::CheckpointLocked() {
  // The exclusive catalog lock quiesces every statement: no buffer pins
  // are held (FlushAll requires that) and no writer is mid-publish.
  // 1. Index snapshots (reload policy only). Best-effort: a table with
  //    tombstones cannot be snapshot (persistence refuses deleted-from
  //    indexes), and a failed save just leaves the rebuild path.
  std::vector<std::string> stale_snapshots;
  if (options_.index_recovery == IndexRecovery::kReload) {
    for (auto& [name, entry] : indexes_) {
      if (entry.def.engine != "faiss") continue;
      auto tbl = tables_.find(entry.def.table);
      if (tbl == tables_.end() || !DeletedRows(tbl->second).empty()) continue;
      const uint64_t rows = tbl->second.heap->num_rows();
      if (rows == 0 || (entry.has_snapshot && entry.rows_at_snapshot == rows))
        continue;
      if (entry.index->NumVectors() != rows) continue;
      const std::string path = SnapshotPath(name, rows);
      const std::string tmp = path + ".tmp";
      Status saved;
      if (auto* ivf =
              dynamic_cast<const faisslike::IvfFlatIndex*>(entry.index.get())) {
        saved = ivf->Save(tmp);
      } else if (auto* pq = dynamic_cast<const faisslike::IvfPqIndex*>(
                     entry.index.get())) {
        saved = pq->Save(tmp);
      } else if (auto* hnsw = dynamic_cast<const faisslike::HnswIndex*>(
                     entry.index.get())) {
        saved = hnsw->Save(tmp);
      } else {
        continue;  // flat/ivfsq8: no persistence support
      }
      if (!saved.ok() || !vfs_->Rename(tmp, path).ok()) continue;
      if (entry.has_snapshot) {
        stale_snapshots.push_back(
            SnapshotPath(name, entry.rows_at_snapshot));
      }
      entry.has_snapshot = true;
      entry.rows_at_snapshot = rows;
    }
  }
  // 2. Force every dirty page (WAL first — FlushAll enforces that) and the
  //    relation files themselves to storage.
  VECDB_RETURN_NOT_OK(bufmgr_.FlushAll());
  VECDB_RETURN_NOT_OK(smgr_.SyncAll());
  // 3. Persist the catalog: schemas, index defs, and the tombstone sets as
  //    of this instant (deletes after this point live in the new WAL).
  VECDB_RETURN_NOT_OK(SaveCatalogNow());
  // 4. Only NOW is the checkpoint record's claim true. Rotate afterwards:
  //    everything the old log protected is durable, so the log can shrink
  //    to a bare header. A crash between the two steps replays from the
  //    old log's checkpoint record — same result.
  if (wal_ != nullptr) {
    VECDB_RETURN_NOT_OK(wal_->LogCheckpoint().status());
    VECDB_RETURN_NOT_OK(wal_->Rotate());
  }
  // 5. Old snapshot files are unreferenced once the catalog commit landed.
  for (const auto& path : stale_snapshots) {
    (void)vfs_->Remove(path);
  }
  // Retired table snapshots can be freed: the exclusive lock excludes
  // every epoch-pinned reader.
  epochs_.ReclaimAll();
  return Status::OK();
}

Result<QueryResult> MiniDatabase::ExecuteForSession(
    const std::string& statement, Session* session) {
  Timer timer;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Add(obs::Counter::kSqlStatements);
  auto parsed = Parse(statement);
  if (!parsed.ok()) {
    metrics.Add(obs::Counter::kSqlErrors);
    return parsed.status();
  }
  const Statement& stmt = *parsed;
  const bool ddl = stmt.kind == Statement::Kind::kCreateTable ||
                   stmt.kind == Statement::Kind::kCreateIndex ||
                   stmt.kind == Statement::Kind::kDrop ||
                   stmt.kind == Statement::Kind::kCheckpoint;
  Result<QueryResult> result = Status::Internal("statement not dispatched");
  if (stmt.kind == Statement::Kind::kSet ||
      stmt.kind == Statement::Kind::kCancel) {
    // Session-control statements touch no catalog state — they run under
    // neither lock mode, so a CANCEL reaches its target even while DDL
    // holds the catalog exclusively.
    result = stmt.kind == Statement::Kind::kSet
                 ? ExecSet(*stmt.set, session)
                 : ExecCancel(*stmt.cancel);
  } else if (ddl) {
    // DDL (and CHECKPOINT) quiesce the database: exclusive catalog lock.
    WriterMutexLock lock(catalog_mu_);
    result = DispatchDdl(stmt);
  } else {
    // DML and queries run concurrently under the shared catalog lock;
    // per-table locks / snapshots order them against each other.
    ReaderMutexLock lock(catalog_mu_);
    result = DispatchShared(stmt, session);
  }
  const auto nanos = static_cast<uint64_t>(timer.ElapsedNanos());
  bool mutating = false;
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      metrics.Add(obs::Counter::kSqlCreateTable);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      mutating = true;
      break;
    case Statement::Kind::kInsert:
      metrics.Add(obs::Counter::kSqlInsertRows, stmt.insert->rows.size());
      metrics.Record(obs::Hist::kSqlInsertNanos, nanos);
      mutating = true;
      break;
    case Statement::Kind::kCreateIndex:
      metrics.Add(obs::Counter::kSqlCreateIndex);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      mutating = true;
      break;
    case Statement::Kind::kSelect:
      metrics.Add(obs::Counter::kSqlSelect);
      metrics.Record(obs::Hist::kSqlSelectNanos, nanos);
      break;
    case Statement::Kind::kDrop:
      metrics.Add(obs::Counter::kSqlDrop);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      mutating = true;
      break;
    case Statement::Kind::kDelete:
      metrics.Add(obs::Counter::kSqlDelete);
      mutating = true;
      break;
    case Statement::Kind::kShow:
      metrics.Add(obs::Counter::kSqlShow);
      break;
    case Statement::Kind::kCheckpoint:
      metrics.Add(obs::Counter::kSqlCheckpoint);
      metrics.Record(obs::Hist::kSqlDdlNanos, nanos);
      break;
    case Statement::Kind::kSet:
      metrics.Add(obs::Counter::kSqlSet);
      break;
    case Statement::Kind::kCancel:
      metrics.Add(obs::Counter::kSqlCancel);
      break;
  }
  if (!result.ok()) {
    metrics.Add(obs::Counter::kSqlErrors);
    if (result.status().IsCancelled()) {
      // CheckStop tags deadline expiries with "statement timeout"; the
      // two abort causes get separate counters (docs/OBSERVABILITY.md).
      const bool timeout = result.status().message().find(
                               "statement timeout") != std::string::npos;
      metrics.Add(timeout ? obs::Counter::kServerStatementTimeouts
                          : obs::Counter::kServerStatementCancels);
    }
    return result;
  }
  if (mutating && wal_ != nullptr) {
    // The statement's records must be out of the appender's buffer before
    // the statement is acknowledged (group "commit" per statement).
    VECDB_RETURN_NOT_OK(wal_->Flush());
    // Size-triggered checkpoint: bounds WAL growth across any workload.
    // Runs after the statement's lock is released (Checkpoint retakes the
    // catalog lock exclusively); concurrent triggers serialize there.
    if (options_.checkpoint_wal_bytes > 0 &&
        wal_->size_bytes() >= options_.checkpoint_wal_bytes) {
      VECDB_RETURN_NOT_OK(Checkpoint());
    }
  }
  result->stats.wall_seconds = static_cast<double>(nanos) * 1e-9;
  result->stats.rows_returned = result->rows.size();
  return result;
}

Result<QueryResult> MiniDatabase::DispatchDdl(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      return ExecCreateTable(*stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecCreateIndex(*stmt.create_index);
    case Statement::Kind::kDrop:
      return ExecDrop(*stmt.drop);
    case Statement::Kind::kCheckpoint:
      return ExecCheckpoint();
    default:
      return Status::Internal("statement is not DDL");
  }
}

Result<QueryResult> MiniDatabase::DispatchShared(const Statement& stmt,
                                                 Session* session) {
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      return ExecInsert(*stmt.insert);
    case Statement::Kind::kSelect:
      return ExecSelect(*stmt.select, session);
    case Statement::Kind::kDelete:
      return ExecDelete(*stmt.delete_row);
    case Statement::Kind::kShow:
      return ExecShow(*stmt.show);
    default:
      return Status::Internal("statement is not DML");
  }
}

Result<QueryResult> MiniDatabase::ExecCreateTable(
    const CreateTableStmt& stmt) {
  if (tables_.count(stmt.table) != 0) {
    return Status::AlreadyExists("table exists: " + stmt.table);
  }
  VECDB_ASSIGN_OR_RETURN(
      pgstub::HeapTable heap,
      pgstub::HeapTable::Create(
          &bufmgr_, &smgr_, stmt.table, stmt.dim,
          static_cast<uint32_t>(stmt.attr_columns.size())));
  const pgstub::RelId rel = heap.rel();
  TableEntry entry;
  entry.schema = stmt;
  entry.heap = std::make_unique<pgstub::HeapTable>(std::move(heap));
  entry.state = std::make_unique<TableState>();
  entry.state->snapshot.store(new TableSnapshot{0, nullptr},
                              std::memory_order_release);
  tables_.emplace(stmt.table, std::move(entry));
  // Relation first, catalog second: a cataloged table always has its file.
  Status saved = SaveCatalogNow();
  if (!saved.ok()) {
    tables_.erase(stmt.table);
    (void)smgr_.DropRelation(rel);
    return saved;
  }
  QueryResult out;
  out.message = "CREATE TABLE";
  return out;
}

Status MiniDatabase::InsertRowsLocked(TableEntry& table,
                                      const InsertStmt& stmt) {
  for (const auto& row : stmt.rows) {
    VECDB_RETURN_NOT_OK(
        table.heap
            ->Insert(row.id, row.vec.data(),
                     row.attrs.empty() ? nullptr : row.attrs.data())
            .status());
    VECDB_RETURN_NOT_OK(bufmgr_.wal_error());
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        Status s = idx->second.am->AmInsert(row.vec.data(), row.id);
        if (!s.ok() && !s.IsNotSupported()) return s;
        // NotSupported: PASE-era indexes require a rebuild after bulk
        // loads; the paper's workloads build after loading, as we do.
      }
    }
  }
  return Status::OK();
}

Result<QueryResult> MiniDatabase::ExecInsert(const InsertStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  TableEntry& table = it->second;
  for (const auto& row : stmt.rows) {
    if (row.vec.size() != table.schema.dim) {
      return Status::InvalidArgument(
          "vector has " + std::to_string(row.vec.size()) +
          " dimensions, table expects " + std::to_string(table.schema.dim));
    }
    if (row.attrs.size() != table.schema.attr_columns.size()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(row.attrs.size()) +
          " attribute values, table expects " +
          std::to_string(table.schema.attr_columns.size()));
    }
  }
  Status inserted;
  {
    WriterMutexLock lock(table.state->mu);
    const TableSnapshot* snap =
        table.state->snapshot.load(std::memory_order_acquire);
    std::shared_ptr<const std::unordered_set<int64_t>> deleted =
        snap != nullptr ? snap->deleted : nullptr;
    inserted = InsertRowsLocked(table, stmt);
    // Publish exactly once per statement (statement-atomic visibility for
    // lock-free readers); on a mid-statement failure the rows already in
    // the heap become visible — they were durably inserted.
    PublishSnapshot(table, table.heap->num_rows(), std::move(deleted));
  }
  VECDB_RETURN_NOT_OK(inserted);
  QueryResult out;
  out.message = "INSERT " + std::to_string(stmt.rows.size());
  return out;
}

Result<std::unique_ptr<VectorIndex>> MiniDatabase::MakeIndex(
    const CreateIndexStmt& stmt, uint32_t dim) {
  // Translate the parsed statement into a factory spec; SQL option keys
  // are the factory's option keys.
  IndexSpec spec;
  spec.method = stmt.method;
  spec.engine = stmt.engine;
  spec.dim = dim;
  spec.options = stmt.options;
  spec.rel_prefix = stmt.index;
  return CreateIndex(spec, pase::PaseEnv{&smgr_, &bufmgr_});
}

Result<QueryResult> MiniDatabase::ExecCreateIndex(
    const CreateIndexStmt& stmt) {
  if (indexes_.count(stmt.index) != 0) {
    return Status::AlreadyExists("index exists: " + stmt.index);
  }
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  TableEntry& table = it->second;
  if (stmt.column != table.schema.vec_column) {
    return Status::InvalidArgument("column " + stmt.column +
                                   " is not the vector column of " +
                                   stmt.table);
  }
  IndexEntry entry;
  entry.def = stmt;
  VECDB_ASSIGN_OR_RETURN(entry.index, MakeIndex(stmt, table.schema.dim));
  entry.am = std::make_unique<pgstub::VectorIndexAm>(entry.index.get());
  VECDB_RETURN_NOT_OK(entry.am->AmBuild(*table.heap));
  table.indexes.push_back(stmt.index);
  indexes_.emplace(stmt.index, std::move(entry));
  Status saved = SaveCatalogNow();
  if (!saved.ok()) {
    indexes_.erase(stmt.index);
    table.indexes.pop_back();
    return saved;
  }
  QueryResult out;
  out.message = "CREATE INDEX";
  return out;
}

Result<QueryResult> MiniDatabase::SeqScanSelect(
    const SelectStmt& stmt, const TableEntry& table,
    const filter::BoundPredicate* bound, const QueryContext& ctx) {
  // Lock-free snapshot scan: pin an epoch, acquire-load the published
  // snapshot, and read only its heap prefix. Concurrent INSERT statements
  // extend the heap past visible_rows, but those rows (and any snapshot
  // the writers retire meanwhile) stay invisible and alive until we exit.
  pgstub::EpochGuard guard(epochs());
  const TableSnapshot* snap =
      table.state->snapshot.load(std::memory_order_acquire);
  const uint64_t visible = snap != nullptr ? snap->visible_rows : 0;
  const std::unordered_set<int64_t>* deleted =
      snap != nullptr && snap->deleted != nullptr ? snap->deleted.get()
                                                  : nullptr;
  KMaxHeap heap(stmt.limit);
  uint64_t scanned = 0;
  // Cancellation checkpoint cadence: the flag/deadline loads are cheap
  // relaxed atomics plus a clock read, but per-row they would still tax
  // the scan's hot loop, so poll every 256 rows. `stop` carries the
  // Cancelled status out of the callback (returning false only halts the
  // scan; ScanPrefixFull itself stays OK).
  Status stop;
  const uint64_t delay = options_.seqscan_delay_nanos_for_test;
  std::vector<int64_t> row_image(1 + table.schema.attr_columns.size());
  VECDB_RETURN_NOT_OK(table.heap->ScanPrefixFull(
      visible,
      [&](pgstub::TupleId, int64_t row_id, const float* vec,
          const int64_t* attrs) {
        ++scanned;
        if ((scanned & 255u) == 0u) {
          stop = ctx.CheckStop("seqscan");
          if (!stop.ok()) return false;
        }
        if (delay != 0) {
          // Test seam: stretch the scan so cancel/timeout tests have a
          // reliably long statement to abort (busy-wait, not sleep, to
          // keep the loop's cooperative structure honest).
          const int64_t until = NowNanos() + static_cast<int64_t>(delay);
          while (NowNanos() < until) {
          }
        }
        if (deleted != nullptr && deleted->count(row_id) != 0) {
          return true;  // dead tuple
        }
        if (bound != nullptr) {
          row_image[0] = row_id;
          for (size_t a = 0; a < table.schema.attr_columns.size(); ++a) {
            row_image[1 + a] = attrs[a];
          }
          if (!bound->Eval(row_image.data())) return true;
        }
        heap.Push(Distance(stmt.metric, stmt.query.data(), vec,
                           table.schema.dim),
                  row_id);
        return true;
      }));
  VECDB_RETURN_NOT_OK(stop);
  QueryResult out;
  out.stats.rows_scanned = scanned;
  out.columns = stmt.select_distance
                    ? std::vector<std::string>{"id", "distance"}
                    : std::vector<std::string>{"id"};
  for (const auto& nb : heap.TakeSorted()) {
    out.rows.push_back({nb.id, nb.dist});
  }
  return out;
}

Result<MiniDatabase::FilterPlan> MiniDatabase::BuildFilterPlan(
    const TableEntry& table, const filter::BoundPredicate& bound,
    size_t sample_rows) const {
  FilterPlan plan;
  const size_t n = table.heap->num_rows();
  const std::unordered_set<int64_t>& dead_rows = DeletedRows(table);
  plan.selection = filter::SelectionVector(n);
  // One pass: the exact bitmap for the strategies, and a strided sample
  // for the planner's selectivity estimate (what an attribute-store
  // EstimateSelectivity would see).
  const size_t stride = n <= sample_rows ? 1 : (n + sample_rows - 1) / sample_rows;
  size_t pos = 0;
  size_t sampled = 0;
  size_t sampled_matches = 0;
  std::vector<int64_t> row_image(1 + table.schema.attr_columns.size());
  VECDB_RETURN_NOT_OK(table.heap->SeqScanFull(
      [&](pgstub::TupleId, int64_t row_id, const float*,
          const int64_t* attrs) {
        row_image[0] = row_id;
        for (size_t a = 0; a < table.schema.attr_columns.size(); ++a) {
          row_image[1 + a] = attrs[a];
        }
        const bool dead = dead_rows.count(row_id) != 0;
        const bool match = !dead && bound.Eval(row_image.data());
        if (match) plan.selection.Set(pos);
        if (pos % stride == 0) {
          ++sampled;
          if (match) ++sampled_matches;
        }
        ++pos;
        return true;
      }));
  plan.est_selectivity =
      sampled == 0 ? 1.0
                   : static_cast<double>(sampled_matches) /
                         static_cast<double>(sampled);
  return plan;
}

Result<QueryResult> MiniDatabase::ExecSelect(const SelectStmt& stmt,
                                             Session* session) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  const TableEntry& table = it->second;
  if (!stmt.select_distance && stmt.select_column != table.schema.id_column) {
    return Status::InvalidArgument("can only select the id column ('" +
                                   table.schema.id_column + "') or *");
  }
  if (stmt.order_column != table.schema.vec_column) {
    return Status::InvalidArgument("ORDER BY column must be the vector "
                                   "column '" +
                                   table.schema.vec_column + "'");
  }
  if (stmt.query.size() != table.schema.dim) {
    return Status::InvalidArgument(
        "query vector has " + std::to_string(stmt.query.size()) +
        " dimensions, table expects " + std::to_string(table.schema.dim));
  }

  // Session defaults fill knobs the statement's OPTIONS (...) leaves
  // unset; explicit options always win.
  std::map<std::string, double> session_defaults;
  obs::MetricsRegistry* sink = nullptr;
  if (session != nullptr) {
    session_defaults = session->default_options();
    sink = session->metrics_sink();
  }
  auto option_or = [&](const std::string& key, double fallback) {
    auto opt = stmt.options.find(key);
    if (opt != stmt.options.end()) return opt->second;
    auto def = session_defaults.find(key);
    if (def != session_defaults.end()) return def->second;
    return fallback;
  };

  // Statement control: deadline (OPTIONS > SET default > DatabaseOptions;
  // 0 = none) and the session's cancel flag, carried by the same
  // QueryContext the engines already thread through their scan loops.
  // Statement OPTIONS bypass ExecSet, so the value is re-validated here.
  const double timeout_ms = option_or(
      "statement_timeout_ms", static_cast<double>(options_.statement_timeout_ms));
  VECDB_RETURN_NOT_OK(ValidateSessionOption("statement_timeout_ms", timeout_ms));
  QueryContext ctx;
  ctx.metrics = sink;
  if (session != nullptr) ctx.cancel = session->cancel_flag();
  if (timeout_ms > 0) {
    ctx.deadline_nanos = NowNanos() + static_cast<int64_t>(timeout_ms * 1e6);
  }

  // Bind the WHERE predicate (if any) against id + attribute columns.
  filter::BoundPredicate bound;
  const bool has_predicate = stmt.predicate != nullptr;
  if (has_predicate) {
    VECDB_ASSIGN_OR_RETURN(
        bound, filter::Bind(*stmt.predicate, PredicateColumns(table.schema)));
  }
  filter::FilterStrategy strategy = filter::FilterStrategy::kAuto;
  auto strat_it = stmt.string_options.find("filter_strategy");
  if (strat_it != stmt.string_options.end()) {
    VECDB_ASSIGN_OR_RETURN(strategy, filter::ParseStrategy(strat_it->second));
  }

  // Plan: an index scan needs an index on this column and an L2 operator
  // (the engines implement Euclidean distance, PASE similarity type 0).
  const IndexEntry* chosen = nullptr;
  if (stmt.metric == Metric::kL2) {
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        chosen = &idx->second;
        break;
      }
    }
  }

  if (chosen == nullptr) {
    if (stmt.explain) {
      QueryResult out;
      out.message = "Seq Scan on " + stmt.table + " (brute force, metric=" +
                    std::string(MetricName(stmt.metric)) + ") k=" +
                    std::to_string(stmt.limit);
      if (has_predicate) {
        out.message += " filter=" + filter::ToString(*stmt.predicate);
      }
      return out;
    }
    return SeqScanSelect(stmt, table, has_predicate ? &bound : nullptr, ctx);
  }

  // Index scan (or its EXPLAIN): lock the table — shared, so scans run
  // concurrently with each other, or exclusive when this index's Search
  // mutates shared scratch. Either mode excludes writers, which is what
  // BuildFilterPlan's full heap scan and the index itself require.
  TableScanLock lock(table.state->mu,
                     !chosen->index->SupportsConcurrentSearch());

  // The exact bitmap + sampled selectivity for the filtered index scan
  // (EXPLAIN reports the same numbers the executor would use).
  const filter::PlannerConfig planner;
  FilterPlan plan;
  if (has_predicate) {
    VECDB_ASSIGN_OR_RETURN(plan,
                           BuildFilterPlan(table, bound, planner.sample_rows));
  }

  if (stmt.explain) {
    QueryResult out;
    out.message = "Index Scan using " + chosen->def.index + " (" +
                  chosen->index->Describe() + ") k=" +
                  std::to_string(stmt.limit);
    if (has_predicate) {
      const filter::FilterStrategy effective =
          strategy == filter::FilterStrategy::kAuto
              ? filter::ChooseStrategy(plan.est_selectivity, stmt.limit,
                                       chosen->index->NumVectors(), planner)
              : strategy;
      out.message += " filter=" + filter::ToString(*stmt.predicate) +
                     " strategy=" +
                     std::string(filter::StrategyName(effective)) +
                     " est_selectivity=" +
                     std::to_string(plan.est_selectivity);
    }
    return out;
  }

  pgstub::AmScanOptions scan;
  scan.k = stmt.limit;
  scan.nprobe = static_cast<uint32_t>(option_or("nprobe", 20));
  // Engines reject efs < k at the API boundary, so the default must track
  // the requested LIMIT.
  scan.efs = static_cast<uint32_t>(option_or(
      "efs", std::max<double>(200, static_cast<double>(stmt.limit))));
  // The context routes the engine's scan metrics into the session's sink
  // (process-wide registry when unset) and carries the cancel flag and
  // deadline into the engine scan loops.
  scan.ctx = ctx;
  if (has_predicate) {
    scan.filter.selection = &plan.selection;
    scan.filter.strategy = strategy;
    scan.filter.est_selectivity = plan.est_selectivity;
    scan.filter.planner = planner;
  }
  const obs::MetricsRegistry& scan_registry =
      sink != nullptr ? *sink : obs::MetricsRegistry::Global();
  const uint64_t visited_before = TuplesVisitedSnapshot(scan_registry);
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<pgstub::IndexScanCursor> cursor,
                         chosen->am->AmBeginScan(stmt.query.data(), scan));
  QueryResult out;
  out.columns = stmt.select_distance
                    ? std::vector<std::string>{"id", "distance"}
                    : std::vector<std::string>{"id"};
  Neighbor nb;
  for (;;) {
    VECDB_ASSIGN_OR_RETURN(bool more, cursor->AmGetTuple(&nb));
    if (!more) break;
    out.rows.push_back({nb.id, nb.dist});
  }
  // The engine flushed its scan counters when the scan materialized in
  // AmBeginScan, so the delta is this statement's tuple traffic. Fall back
  // to the result size if the registry was toggled off mid-statement.
  const uint64_t delta = TuplesVisitedSnapshot(scan_registry) - visited_before;
  out.stats.rows_scanned =
      std::max<uint64_t>(delta, out.rows.size());
  return out;
}

Result<QueryResult> MiniDatabase::ExecShow(const ShowStmt& stmt) {
  QueryResult out;
  if (stmt.what == ShowStmt::What::kSessions) {
    char line[192];
    out.message =
        "session  state   peer                   in_flight  statements  "
        "queued\n";
    for (const auto& session : sessions_->Snapshot()) {
      std::snprintf(line, sizeof(line),
                    "%-8llu %-7s %-22s %9u %11llu %7llu\n",
                    static_cast<unsigned long long>(session->id()),
                    session->closed() ? "closed" : "open",
                    session->peer().c_str(), session->inflight(),
                    static_cast<unsigned long long>(
                        session->statements_executed()),
                    static_cast<unsigned long long>(
                        session->statements_queued()));
      out.message += line;
    }
    std::snprintf(
        line, sizeof(line),
        "admission: running=%u queued=%zu max_concurrent=%u "
        "max_per_session=%u\n",
        admission_->running(), admission_->queued(),
        admission_->max_concurrent(), admission_->max_per_session());
    out.message += line;
    return out;
  }
  auto& metrics = obs::MetricsRegistry::Global();
  out.message = metrics.ExportTable();
  // Resolved kernel tier: a config fact, not a counter, so it rides along
  // as its own line like the wal.* health lines below.
  out.message +=
      std::string("distance.isa: ") + KernelIsaName(ActiveKernelIsa()) + "\n";
  // WAL health lines: the sticky wal_error() surfaces logging failures
  // that would otherwise hide inside void Unpin calls.
  if (wal_ != nullptr) {
    out.message += "wal.next_lsn: " + std::to_string(wal_->next_lsn()) + "\n";
    out.message +=
        "wal.size_bytes: " + std::to_string(wal_->size_bytes()) + "\n";
  }
  const Status wal_error = bufmgr_.wal_error();
  out.message +=
      "wal.error: " + (wal_error.ok() ? "none" : wal_error.ToString()) + "\n";
  if (stmt.reset) metrics.ResetAll();
  return out;
}

Result<QueryResult> MiniDatabase::ExecCheckpoint() {
  VECDB_RETURN_NOT_OK(CheckpointLocked());
  QueryResult out;
  out.message = "CHECKPOINT";
  return out;
}

Result<QueryResult> MiniDatabase::ExecSet(const SetStmt& stmt,
                                          Session* session) {
  VECDB_RETURN_NOT_OK(ValidateSessionOption(stmt.name, stmt.value));
  if (session == nullptr) {
    return Status::InvalidArgument("SET requires a session");
  }
  session->SetDefaultOption(stmt.name, stmt.value);
  QueryResult out;
  out.message = "SET";
  return out;
}

Result<QueryResult> MiniDatabase::ExecCancel(const CancelStmt& stmt) {
  std::shared_ptr<Session> target = sessions_->Find(stmt.session_id);
  if (target == nullptr) {
    return Status::NotFound("no session with id " +
                            std::to_string(stmt.session_id));
  }
  // Fire-and-forget like pg_cancel_backend: the flag is set even when the
  // target has nothing in flight (the next-statement reset drops it), and
  // "CANCEL" is returned without waiting for the target to notice.
  target->RequestCancel();
  QueryResult out;
  out.message = "CANCEL";
  return out;
}

Result<QueryResult> MiniDatabase::ExecDelete(const DeleteStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  TableEntry& table = it->second;
  if (stmt.predicate == nullptr) {
    return Status::InvalidArgument("DELETE requires a WHERE clause");
  }

  // A delete mutates no heap page, so durability rides on a logical WAL
  // record per tombstone (replayed into the deleted sets at recovery).
  auto log_tombstone = [&](int64_t id) -> Status {
    if (wal_ == nullptr) return Status::OK();
    return wal_->LogTombstone(table.heap->rel(), id).status();
  };

  // Writers serialize on the table lock; lock-free readers keep seeing
  // the pre-statement snapshot until the single publish below.
  WriterMutexLock lock(table.state->mu);
  const TableSnapshot* snap =
      table.state->snapshot.load(std::memory_order_acquire);
  const uint64_t visible = snap != nullptr ? snap->visible_rows : 0;
  // Copy-on-write: mutate a private copy of the tombstone set, publish it
  // once the statement's deletes (and WAL records) are in.
  std::unordered_set<int64_t> dead = DeletedRows(table);
  auto publish = [&]() {
    PublishSnapshot(table, visible,
                    std::make_shared<const std::unordered_set<int64_t>>(
                        std::move(dead)));
  };

  // Fast path for the classic `WHERE id = n`: no predicate binding, and
  // the historical NotFound errors for missing / already-deleted rows.
  const filter::Predicate& pred = *stmt.predicate;
  if (pred.kind == filter::Predicate::Kind::kCompare &&
      pred.op == filter::CmpOp::kEq &&
      pred.column == table.schema.id_column) {
    const int64_t id = pred.value;
    if (dead.count(id) != 0) {
      return Status::NotFound("row " + std::to_string(id) +
                              " already deleted");
    }
    // The row must exist in the heap before it can be tombstoned.
    bool exists = false;
    VECDB_RETURN_NOT_OK(table.heap->SeqScan(
        [&](pgstub::TupleId, int64_t row_id, const float*) {
          if (row_id == id) {
            exists = true;
            return false;
          }
          return true;
        }));
    if (!exists) {
      return Status::NotFound("no row with id " + std::to_string(id));
    }
    VECDB_RETURN_NOT_OK(log_tombstone(id));
    dead.insert(id);
    // Tombstone the row in every index on the table; ids unknown to an
    // index (never inserted) surface as NotFound from the check above.
    Status index_status;
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        Status s = idx->second.am->AmDelete(id);
        if (!s.ok() && !s.IsNotSupported()) {
          index_status = s;
          break;
        }
      }
    }
    // The tombstone is WAL-logged: publish it even when an index delete
    // failed, exactly what recovery would reconstruct.
    publish();
    VECDB_RETURN_NOT_OK(index_status);
    QueryResult out;
    out.message = "DELETE 1";
    return out;
  }

  // General path: bind the predicate, collect every matching live row,
  // and tombstone them all. Deleting zero rows is not an error (SQL
  // semantics: "DELETE 0").
  filter::BoundPredicate bound;
  VECDB_ASSIGN_OR_RETURN(
      bound, filter::Bind(pred, PredicateColumns(table.schema)));
  std::vector<int64_t> matches;
  std::vector<int64_t> row_image(1 + table.schema.attr_columns.size());
  VECDB_RETURN_NOT_OK(table.heap->SeqScanFull(
      [&](pgstub::TupleId, int64_t row_id, const float*,
          const int64_t* attrs) {
        if (dead.count(row_id) != 0) return true;
        row_image[0] = row_id;
        for (size_t a = 0; a < table.schema.attr_columns.size(); ++a) {
          row_image[1 + a] = attrs[a];
        }
        if (bound.Eval(row_image.data())) matches.push_back(row_id);
        return true;
      }));
  Status loop_status;
  size_t deleted_count = 0;
  for (int64_t id : matches) {
    loop_status = log_tombstone(id);
    if (!loop_status.ok()) break;
    dead.insert(id);
    ++deleted_count;
    for (const auto& index_name : table.indexes) {
      auto idx = indexes_.find(index_name);
      if (idx != indexes_.end()) {
        // NotSupported: rebuild-only index; NotFound: the row was never
        // propagated into this index (inserted after a bulk build).
        Status s = idx->second.am->AmDelete(id);
        if (!s.ok() && !s.IsNotSupported() && !s.IsNotFound()) {
          loop_status = s;
          break;
        }
      }
    }
    if (!loop_status.ok()) break;
  }
  // Tombstones inserted before a mid-loop failure are WAL-logged and
  // stay: publish what was applied, then surface the error.
  publish();
  VECDB_RETURN_NOT_OK(loop_status);
  QueryResult out;
  out.message = "DELETE " + std::to_string(deleted_count);
  return out;
}

Result<QueryResult> MiniDatabase::ExecDrop(const DropStmt& stmt) {
  QueryResult out;
  if (stmt.is_index) {
    auto it = indexes_.find(stmt.name);
    if (it == indexes_.end()) {
      return Status::NotFound("no index named " + stmt.name);
    }
    if (it->second.has_snapshot) {
      (void)vfs_->Remove(
          SnapshotPath(stmt.name, it->second.rows_at_snapshot));
    }
    for (auto& [_, table] : tables_) {
      auto& list = table.indexes;
      list.erase(std::remove(list.begin(), list.end(), stmt.name),
                 list.end());
    }
    indexes_.erase(it);
    VECDB_RETURN_NOT_OK(SaveCatalogNow());
    // Page-resident engines (pase/bridge) park their data in relations
    // named off the index; reclaim them (best-effort — any leftover is
    // garbage-collected at the next Open).
    for (const char* suffix : {"_data", "_centroid", "_nbr"}) {
      auto rel = smgr_.FindRelation(stmt.name + suffix);
      if (rel.ok()) {
        (void)bufmgr_.InvalidateRelation(*rel);
        (void)smgr_.DropRelation(*rel);
      }
    }
    out.message = "DROP INDEX";
    return out;
  }
  auto it = tables_.find(stmt.name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.name);
  }
  if (!it->second.indexes.empty()) {
    return Status::InvalidArgument("drop indexes on " + stmt.name +
                                   " first");
  }
  const pgstub::RelId rel = it->second.heap->rel();
  // The exclusive catalog lock excludes every reader (epoch-pinned scans
  // hold the shared lock for their whole statement), so the entry — and
  // its current snapshot, freed by ~TableState — can go away immediately;
  // previously retired snapshots drain through the epoch manager.
  tables_.erase(it);
  // Catalog first, then the file: a crash in between leaves an orphan
  // relation that the next Open garbage-collects. The relation id is
  // never reused (smgr ids are monotonic), so WAL images logged for the
  // dropped table can never replay into a future one.
  VECDB_RETURN_NOT_OK(SaveCatalogNow());
  VECDB_RETURN_NOT_OK(bufmgr_.InvalidateRelation(rel));
  VECDB_RETURN_NOT_OK(smgr_.DropRelation(rel));
  out.message = "DROP TABLE";
  return out;
}

}  // namespace vecdb::sql
