// The multi-session front end over MiniDatabase: Session handles with
// per-session defaults and statistics, an admission controller bounding
// concurrent statement execution, and the SessionManager that creates and
// enumerates them (SHOW SESSIONS). One MiniDatabase serves many Sessions;
// each Session may be driven from its own thread. See docs/SESSIONS.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "sql/database.h"

namespace vecdb::sql {

/// Bounds the number of statements executing at once, PostgreSQL's
/// max_connections-style backpressure: excess statements queue FIFO and
/// block in Admit() until capacity frees up. A per-session in-flight cap
/// keeps one chatty session from occupying every slot; waiters whose
/// session is at its cap are skipped (not cancelled), so the queue cannot
/// head-of-line-block behind them.
class AdmissionController {
 public:
  /// Both caps must be >= 1 (validated by MiniDatabase::Open).
  AdmissionController(uint32_t max_concurrent, uint32_t max_per_session)
      : max_concurrent_(max_concurrent), max_per_session_(max_per_session) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  struct Ticket {
    bool waited = false;       ///< true if the statement queued
    uint64_t wait_nanos = 0;   ///< time spent queued (0 on the fast path)
  };

  /// Blocks until the statement may run; every Admit must be paired with
  /// exactly one Release. Records session.queued / session.admitted and
  /// the session.queue_wait_nanos histogram.
  Ticket Admit(uint64_t session_id) VECDB_EXCLUDES(mu_);

  /// Returns the slot Admit granted and wakes eligible waiters.
  void Release(uint64_t session_id) VECDB_EXCLUDES(mu_);

  uint32_t running() const VECDB_EXCLUDES(mu_);
  size_t queued() const VECDB_EXCLUDES(mu_);
  uint32_t max_concurrent() const { return max_concurrent_; }
  uint32_t max_per_session() const { return max_per_session_; }

 private:
  struct Waiter {
    uint64_t session_id = 0;
    uint64_t ticket = 0;  ///< FIFO order stamp
  };

  /// Whether `session_id` is under its per-session cap.
  bool UnderSessionCapLocked(uint64_t session_id) const VECDB_REQUIRES(mu_);
  /// Whether any queued waiter could run right now (is under its session
  /// cap). A newcomer may take the fast path past waiters that cannot run
  /// anyway; if an eligible waiter exists, FIFO order applies and the
  /// newcomer must queue behind it.
  bool HasEligibleWaiterLocked() const VECDB_REQUIRES(mu_);
  /// Whether `ticket` is the frontmost waiter not blocked on its own
  /// session's cap — the only waiter allowed to take the next free slot.
  bool FirstEligibleLocked(uint64_t ticket) const VECDB_REQUIRES(mu_);
  void GrantLocked(uint64_t session_id) VECDB_REQUIRES(mu_);

  const uint32_t max_concurrent_;
  const uint32_t max_per_session_;
  mutable Mutex mu_;
  std::condition_variable cv_;
  uint32_t running_ VECDB_GUARDED_BY(mu_) = 0;
  uint64_t next_ticket_ VECDB_GUARDED_BY(mu_) = 0;
  /// session id -> statements currently running (absent means 0).
  std::map<uint64_t, uint32_t> per_session_ VECDB_GUARDED_BY(mu_);
  std::deque<Waiter> queue_ VECDB_GUARDED_BY(mu_);
};

/// One client's handle on the database: identity, default query knobs,
/// an optional private metrics sink, and last-statement statistics. All
/// methods are thread-safe; a single Session may even run statements from
/// several threads (its in-flight count is what the per-session admission
/// cap bounds). Obtain instances from MiniDatabase::CreateSession().
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes one SQL statement: waits for admission, runs the
  /// statement, and updates the session statistics. Fails with
  /// InvalidArgument after Close(). The returned QueryResult is an
  /// independent value — safe to read (or keep) after any later statement
  /// on this or any other session.
  Result<QueryResult> Execute(const std::string& statement)
      VECDB_EXCLUDES(mu_);

  /// Marks the session closed: later Execute calls fail. Statements
  /// already in flight finish normally. Idempotent.
  void Close() VECDB_EXCLUDES(mu_);

  /// Requests cancellation of the in-flight statement (if any): it aborts
  /// with a Cancelled error at its next engine checkpoint. The flag is
  /// cleared when the next statement starts, so a cancel that lands
  /// between statements is dropped (PostgreSQL pg_cancel_backend
  /// semantics). Safe from any thread — this is how `CANCEL <id>` and the
  /// server's out-of-band cancel frame reach a running query.
  void RequestCancel() {
    cancel_requested_.store(true, std::memory_order_relaxed);
  }

  /// The cancel flag engines poll through QueryContext::cancel. Stable
  /// for the session's lifetime.
  const std::atomic<bool>* cancel_flag() const { return &cancel_requested_; }

  /// Where this session's client lives: "local" for in-process sessions,
  /// the peer address ("127.0.0.1:51234") when a VecServer connection owns
  /// it. Shown by SHOW SESSIONS.
  void set_peer(const std::string& peer) VECDB_EXCLUDES(mu_);
  std::string peer() const VECDB_EXCLUDES(mu_);

  /// Sets a session-default numeric option (e.g. "nprobe", "efs") merged
  /// into every SELECT that does not set it explicitly in OPTIONS (...).
  void SetDefaultOption(const std::string& name, double value)
      VECDB_EXCLUDES(mu_);
  void ClearDefaultOption(const std::string& name) VECDB_EXCLUDES(mu_);
  std::map<std::string, double> default_options() const VECDB_EXCLUDES(mu_);

  /// Directs this session's index-scan metrics into `sink` instead of the
  /// process-wide registry (null restores the default). The sink must
  /// outlive the session's statements.
  void SetMetricsSink(obs::MetricsRegistry* sink) VECDB_EXCLUDES(mu_);
  obs::MetricsRegistry* metrics_sink() const VECDB_EXCLUDES(mu_);

  uint64_t id() const { return id_; }
  bool closed() const VECDB_EXCLUDES(mu_);
  /// Statements currently executing (admitted, not yet finished).
  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t statements_executed() const VECDB_EXCLUDES(mu_);
  /// How many of those statements had to queue for admission.
  uint64_t statements_queued() const VECDB_EXCLUDES(mu_);
  /// Stats of the most recent successful statement, by value.
  QueryResult::ExecStats last_stats() const VECDB_EXCLUDES(mu_);

 private:
  friend class SessionManager;
  Session(MiniDatabase* db, uint64_t id) : db_(db), id_(id) {}

  MiniDatabase* const db_;  ///< not owned; must outlive the session
  const uint64_t id_;
  std::atomic<uint32_t> inflight_{0};
  /// Set by RequestCancel (any thread), polled by engine scan loops,
  /// cleared when the next statement begins executing.
  std::atomic<bool> cancel_requested_{false};
  mutable Mutex mu_;
  bool closed_ VECDB_GUARDED_BY(mu_) = false;
  std::string peer_ VECDB_GUARDED_BY(mu_) = "local";
  uint64_t statements_ VECDB_GUARDED_BY(mu_) = 0;
  uint64_t queued_ VECDB_GUARDED_BY(mu_) = 0;
  QueryResult::ExecStats last_stats_ VECDB_GUARDED_BY(mu_);
  std::map<std::string, double> defaults_ VECDB_GUARDED_BY(mu_);
  obs::MetricsRegistry* metrics_sink_ VECDB_GUARDED_BY(mu_) = nullptr;
};

/// Creates sessions and enumerates the live ones. Sessions are handed out
/// as shared_ptr (callers own them); the manager keeps weak references so
/// SHOW SESSIONS never extends a dropped session's lifetime.
class SessionManager {
 public:
  explicit SessionManager(MiniDatabase* db) : db_(db) {}
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a new open session with the next id (ids are never reused).
  std::shared_ptr<Session> Create() VECDB_EXCLUDES(mu_);

  /// The live sessions, ascending by id.
  std::vector<std::shared_ptr<Session>> Snapshot() const VECDB_EXCLUDES(mu_);

  /// The live session with this id, or null (dropped, closed-and-dropped,
  /// or never created). Backs `CANCEL <id>`.
  std::shared_ptr<Session> Find(uint64_t id) const VECDB_EXCLUDES(mu_);

  size_t alive() const VECDB_EXCLUDES(mu_);

  /// Closes every live session (database shutdown).
  void CloseAll() VECDB_EXCLUDES(mu_);

 private:
  MiniDatabase* const db_;
  mutable Mutex mu_;
  uint64_t next_id_ VECDB_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, std::weak_ptr<Session>> sessions_ VECDB_GUARDED_BY(mu_);
};

}  // namespace vecdb::sql
