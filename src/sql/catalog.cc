#include "sql/catalog.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace vecdb::sql {

namespace {
constexpr char kCatalogName[] = "/CATALOG";
constexpr char kMagic[] = "vecdb-catalog";
constexpr int kVersion = 1;

/// Doubles round-trip through %.17g exactly (index options like
/// sample_ratio=0.01 must survive a reopen bit-identically, or the rebuilt
/// index would differ from the one the user created).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

Status SaveCatalog(pgstub::Vfs* vfs, const std::string& dir,
                   const Catalog& catalog) {
  std::ostringstream out;
  out << kMagic << ' ' << kVersion << '\n';
  for (const auto& [name, table] : catalog.tables) {
    const CreateTableStmt& s = table.schema;
    out << "table " << name << ' ' << s.id_column << ' ' << s.vec_column
        << ' ' << s.dim << ' ' << s.attr_columns.size();
    for (const auto& attr : s.attr_columns) out << ' ' << attr;
    out << '\n';
    out << "rows " << name << ' ' << table.rows_at_checkpoint << '\n';
    out << "tombstones " << name << ' ' << table.tombstones.size();
    for (int64_t id : table.tombstones) out << ' ' << id;
    out << '\n';
  }
  for (const auto& [name, index] : catalog.indexes) {
    const CreateIndexStmt& d = index.def;
    out << "index " << name << ' ' << d.table << ' ' << d.method << ' '
        << d.column << ' ' << d.engine << ' ' << (index.has_snapshot ? 1 : 0)
        << ' ' << index.rows_at_snapshot << ' ' << d.options.size();
    for (const auto& [key, value] : d.options) {
      out << ' ' << key << ' ' << FormatDouble(value);
    }
    out << '\n';
  }
  const std::string text = out.str();
  const std::string path = dir + kCatalogName;
  const std::string tmp = path + ".tmp";
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<pgstub::VfsFile> f,
                         vfs->Open(tmp, /*create=*/true));
  VECDB_RETURN_NOT_OK(f->Truncate(0));
  VECDB_RETURN_NOT_OK(f->WriteAt(0, text.data(), text.size()));
  VECDB_RETURN_NOT_OK(f->Sync());
  f.reset();
  return vfs->Rename(tmp, path);
}

Result<Catalog> LoadCatalog(pgstub::Vfs* vfs, const std::string& dir) {
  const std::string path = dir + kCatalogName;
  VECDB_ASSIGN_OR_RETURN(bool exists, vfs->Exists(path));
  if (!exists) return Status::NotFound("no catalog in " + dir);
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<pgstub::VfsFile> f,
                         vfs->Open(path, /*create=*/false));
  VECDB_ASSIGN_OR_RETURN(uint64_t size, f->Size());
  std::string text(size, '\0');
  VECDB_ASSIGN_OR_RETURN(size_t got, f->ReadAt(0, text.data(), text.size()));
  if (got != size) return Status::IOError("catalog: short read");
  f.reset();

  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    return Status::Corruption("catalog: bad header in " + path);
  }
  Catalog catalog;
  std::string key;
  while (in >> key) {
    if (key == "table") {
      CatalogTable table;
      size_t nattrs = 0;
      if (!(in >> table.schema.table >> table.schema.id_column >>
            table.schema.vec_column >> table.schema.dim >> nattrs)) {
        return Status::Corruption("catalog: bad table entry");
      }
      table.schema.attr_columns.resize(nattrs);
      for (auto& attr : table.schema.attr_columns) {
        if (!(in >> attr)) return Status::Corruption("catalog: bad attr");
      }
      catalog.tables[table.schema.table] = std::move(table);
    } else if (key == "rows") {
      std::string name;
      uint64_t rows = 0;
      if (!(in >> name >> rows) || catalog.tables.count(name) == 0) {
        return Status::Corruption("catalog: bad rows entry");
      }
      catalog.tables[name].rows_at_checkpoint = rows;
    } else if (key == "tombstones") {
      std::string name;
      size_t count = 0;
      if (!(in >> name >> count) || catalog.tables.count(name) == 0) {
        return Status::Corruption("catalog: bad tombstones entry");
      }
      auto& ids = catalog.tables[name].tombstones;
      ids.resize(count);
      for (auto& id : ids) {
        if (!(in >> id)) return Status::Corruption("catalog: bad tombstone");
      }
    } else if (key == "index") {
      CatalogIndex index;
      int has_snapshot = 0;
      size_t nopts = 0;
      if (!(in >> index.def.index >> index.def.table >> index.def.method >>
            index.def.column >> index.def.engine >> has_snapshot >>
            index.rows_at_snapshot >> nopts)) {
        return Status::Corruption("catalog: bad index entry");
      }
      index.has_snapshot = has_snapshot != 0;
      for (size_t i = 0; i < nopts; ++i) {
        std::string opt;
        double value = 0;
        if (!(in >> opt >> value)) {
          return Status::Corruption("catalog: bad index option");
        }
        index.def.options[opt] = value;
      }
      catalog.indexes[index.def.index] = std::move(index);
    } else {
      return Status::Corruption("catalog: unknown entry '" + key + "'");
    }
  }
  return catalog;
}

}  // namespace vecdb::sql
