#include "sql/session.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"

namespace vecdb::sql {

bool AdmissionController::UnderSessionCapLocked(uint64_t session_id) const {
  auto it = per_session_.find(session_id);
  return it == per_session_.end() || it->second < max_per_session_;
}

bool AdmissionController::HasEligibleWaiterLocked() const {
  for (const Waiter& w : queue_) {
    if (UnderSessionCapLocked(w.session_id)) return true;
  }
  return false;
}

bool AdmissionController::FirstEligibleLocked(uint64_t ticket) const {
  // Scan from the front: the first waiter whose session is under its cap
  // owns the next free slot. Waiters at their cap are skipped, not
  // cancelled — they regain their FIFO position the moment one of their
  // session's statements releases.
  for (const Waiter& w : queue_) {
    if (!UnderSessionCapLocked(w.session_id)) continue;
    return w.ticket == ticket;
  }
  return false;
}

void AdmissionController::GrantLocked(uint64_t session_id) {
  ++running_;
  ++per_session_[session_id];
}

AdmissionController::Ticket AdmissionController::Admit(uint64_t session_id) {
  auto& metrics = obs::MetricsRegistry::Global();
  MutexLock lock(mu_);
  // Fast path: a free slot, this session under its cap, and no queued
  // waiter that could use the slot (waiters blocked on their own session's
  // cap do not hold newcomers back — they keep their FIFO position).
  if (running_ < max_concurrent_ && UnderSessionCapLocked(session_id) &&
      !HasEligibleWaiterLocked()) {
    GrantLocked(session_id);
    metrics.Add(obs::Counter::kSessionAdmitted);
    metrics.Record(obs::Hist::kSessionQueueWaitNanos, 0);
    return Ticket{};
  }
  metrics.Add(obs::Counter::kSessionQueued);
  const uint64_t ticket = next_ticket_++;
  queue_.push_back(Waiter{session_id, ticket});
  Timer timer;
  while (!(running_ < max_concurrent_ && FirstEligibleLocked(ticket))) {
    lock.Wait(cv_);
  }
  queue_.erase(std::find_if(queue_.begin(), queue_.end(),
                            [&](const Waiter& w) { return w.ticket == ticket; }));
  GrantLocked(session_id);
  // Removing this waiter can expose the next one behind it while slots
  // remain (e.g. two frees arrived before the front waiter woke).
  cv_.notify_all();
  Ticket out;
  out.waited = true;
  out.wait_nanos = static_cast<uint64_t>(timer.ElapsedNanos());
  metrics.Add(obs::Counter::kSessionAdmitted);
  metrics.Record(obs::Hist::kSessionQueueWaitNanos, out.wait_nanos);
  return out;
}

void AdmissionController::Release(uint64_t session_id) {
  MutexLock lock(mu_);
  VECDB_CHECK(running_ > 0) << "Release without a matching Admit";
  --running_;
  auto it = per_session_.find(session_id);
  VECDB_CHECK(it != per_session_.end() && it->second > 0)
      << "Release: session " << session_id << " has no admitted statement";
  if (--it->second == 0) per_session_.erase(it);
  cv_.notify_all();
}

uint32_t AdmissionController::running() const {
  MutexLock lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  MutexLock lock(mu_);
  return queue_.size();
}

Session::~Session() { Close(); }

void Session::Close() {
  MutexLock lock(mu_);
  if (closed_) return;
  closed_ = true;
  obs::MetricsRegistry::Global().Add(obs::Counter::kSessionClosed);
}

bool Session::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

void Session::set_peer(const std::string& peer) {
  MutexLock lock(mu_);
  peer_ = peer;
}

std::string Session::peer() const {
  MutexLock lock(mu_);
  return peer_;
}

void Session::SetDefaultOption(const std::string& name, double value) {
  MutexLock lock(mu_);
  defaults_[name] = value;
}

void Session::ClearDefaultOption(const std::string& name) {
  MutexLock lock(mu_);
  defaults_.erase(name);
}

std::map<std::string, double> Session::default_options() const {
  MutexLock lock(mu_);
  return defaults_;
}

void Session::SetMetricsSink(obs::MetricsRegistry* sink) {
  MutexLock lock(mu_);
  metrics_sink_ = sink;
}

obs::MetricsRegistry* Session::metrics_sink() const {
  MutexLock lock(mu_);
  return metrics_sink_;
}

uint64_t Session::statements_executed() const {
  MutexLock lock(mu_);
  return statements_;
}

uint64_t Session::statements_queued() const {
  MutexLock lock(mu_);
  return queued_;
}

QueryResult::ExecStats Session::last_stats() const {
  MutexLock lock(mu_);
  return last_stats_;
}

Result<QueryResult> Session::Execute(const std::string& statement) {
  {
    MutexLock lock(mu_);
    if (closed_) {
      return Status::InvalidArgument(
          "session " + std::to_string(id_) + " is closed");
    }
  }
  const AdmissionController::Ticket ticket = db_->admission()->Admit(id_);
  inflight_.fetch_add(1, std::memory_order_relaxed);
  // A cancel targets the statement in flight when it arrives; one that
  // raced ahead of this statement is dropped here, not carried over.
  cancel_requested_.store(false, std::memory_order_relaxed);
  // Test seam: lets a fixture park an *admitted* statement (holding its
  // slot) so admission-cap tests can pin running() at the cap.
  if (db_->options().statement_hook_for_test) {
    db_->options().statement_hook_for_test(id_);
  }
  Result<QueryResult> result = db_->ExecuteForSession(statement, this);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  db_->admission()->Release(id_);
  {
    MutexLock lock(mu_);
    ++statements_;
    if (ticket.waited) ++queued_;
    if (result.ok()) last_stats_ = result->stats;
  }
  return result;
}

std::shared_ptr<Session> SessionManager::Create() {
  MutexLock lock(mu_);
  // Prune entries whose sessions were dropped, so the map stays bounded
  // by the number of live sessions.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    it = it->second.expired() ? sessions_.erase(it) : std::next(it);
  }
  const uint64_t id = next_id_++;
  std::shared_ptr<Session> session(new Session(db_, id));
  sessions_.emplace(id, session);
  obs::MetricsRegistry::Global().Add(obs::Counter::kSessionCreated);
  return session;
}

std::vector<std::shared_ptr<Session>> SessionManager::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [_, weak] : sessions_) {
    if (auto strong = weak.lock()) out.push_back(std::move(strong));
  }
  return out;  // map iteration order: ascending by id
}

std::shared_ptr<Session> SessionManager::Find(uint64_t id) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.lock();
}

size_t SessionManager::alive() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [_, weak] : sessions_) {
    if (!weak.expired()) ++n;
  }
  return n;
}

void SessionManager::CloseAll() {
  for (const auto& session : Snapshot()) session->Close();
}

}  // namespace vecdb::sql
