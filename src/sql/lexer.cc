#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace vecdb::sql {

bool IsKeyword(const std::string& word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",   "ORDER",  "BY",     "LIMIT",  "CREATE", "TABLE",
      "INDEX",  "ON",     "USING",  "WITH",   "INSERT", "INTO",   "VALUES",
      "INT",    "BIGINT", "FLOAT",  "ASC",    "DESC",   "DROP",   "OPTIONS",
      "AS",     "WHERE",  "EXPLAIN", "DELETE", "SHOW",  "METRICS", "RESET",
      "AND",    "OR",     "IN",     "CHECKPOINT", "SESSIONS", "CANCEL",
      "SET"};
  return kKeywords.count(word) != 0;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto make = [&](TokenType type, std::string text, size_t pos) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.pos = pos;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) !=
                           0 ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (IsKeyword(upper)) {
        make(TokenType::kKeyword, upper, start);
      } else {
        std::transform(word.begin(), word.end(), word.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        make(TokenType::kIdentifier, word, start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0)) {
      size_t j = i;
      if (input[j] == '-') ++j;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) !=
                           0 ||
                       input[j] == '.' || input[j] == 'e' ||
                       input[j] == 'E' ||
                       ((input[j] == '+' || input[j] == '-') && j > i &&
                        (input[j - 1] == 'e' || input[j - 1] == 'E')))) {
        ++j;
      }
      Token t;
      t.type = TokenType::kNumber;
      t.text = input.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.pos = start;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at byte " +
                                       std::to_string(start));
      }
      make(TokenType::kString, std::move(text), start);
      i = j;
      continue;
    }
    if (c == '<') {
      // <->, <#>, <=> distance operators take precedence over the two-char
      // comparison operators <= and <>.
      if (i + 2 < n && input[i + 2] == '>' &&
          (input[i + 1] == '-' || input[i + 1] == '#' ||
           input[i + 1] == '=')) {
        make(TokenType::kDistanceOp, input.substr(i, 3), start);
        i += 3;
        continue;
      }
      if (i + 1 < n && input[i + 1] == '=') {
        make(TokenType::kLe, "<=", start);
        i += 2;
        continue;
      }
      if (i + 1 < n && input[i + 1] == '>') {
        make(TokenType::kNe, "<>", start);
        i += 2;
        continue;
      }
      make(TokenType::kLt, "<", start);
      ++i;
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && input[i + 1] == '=') {
        make(TokenType::kGe, ">=", start);
        i += 2;
        continue;
      }
      make(TokenType::kGt, ">", start);
      ++i;
      continue;
    }
    if (c == '!') {
      if (i + 1 < n && input[i + 1] == '=') {
        make(TokenType::kNe, "!=", start);
        i += 2;
        continue;
      }
      return Status::InvalidArgument("unexpected '!' at byte " +
                                     std::to_string(start));
    }
    switch (c) {
      case '(':
        make(TokenType::kLParen, "(", start);
        break;
      case ')':
        make(TokenType::kRParen, ")", start);
        break;
      case '[':
        make(TokenType::kLBracket, "[", start);
        break;
      case ']':
        make(TokenType::kRBracket, "]", start);
        break;
      case ',':
        make(TokenType::kComma, ",", start);
        break;
      case ';':
        make(TokenType::kSemicolon, ";", start);
        break;
      case '=':
        make(TokenType::kEquals, "=", start);
        break;
      case '*':
        make(TokenType::kStar, "*", start);
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at byte " +
                                       std::to_string(start));
    }
    ++i;
  }
  make(TokenType::kEof, "", n);
  return out;
}

}  // namespace vecdb::sql
