// MiniDatabase: the SQL front end tying the substrate together — catalog,
// planner, and executor for the paper's §II-E interface. Statements flow
// lexer -> parser -> plan (index scan vs. sequential scan) -> execution
// against pgstub heap tables and any of the three engines' indexes.
//
// Durability (docs/DURABILITY.md): Open() recovers a restarted database —
// the storage manager re-attaches relations from its manifest, ARIES-lite
// REDO replays WAL full-page images and tombstones, the durable catalog
// restores schemas, and indexes are rebuilt from the recovered heap (or
// reloaded from checkpoint snapshots under IndexRecovery::kReload).
// Checkpoint() enforces the WAL protocol ordering: dirty pages and the
// catalog reach storage BEFORE the checkpoint record claims they did, and
// the log is rotated so its size stays bounded.
#pragma once

#include <map>
#include <memory>
#include <unordered_set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/index.h"
#include "filter/predicate.h"
#include "filter/selection.h"
#include "pgstub/bufmgr.h"
#include "pgstub/heap_table.h"
#include "pgstub/index_am.h"
#include "pgstub/smgr.h"
#include "pgstub/vfs.h"
#include "pgstub/wal.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace vecdb::sql {

/// Result of one statement: DDL/DML return a message, SELECT returns rows.
struct QueryResult {
  struct Row {
    int64_t id = 0;
    double distance = 0.0;
  };
  /// Per-statement execution statistics, filled by Execute().
  struct ExecStats {
    double wall_seconds = 0.0;   ///< end-to-end statement latency
    uint64_t rows_scanned = 0;   ///< tuples the executor visited
    uint64_t rows_returned = 0;  ///< rows in the result set
  };
  std::vector<std::string> columns;  ///< "id" or {"id", "distance"}
  std::vector<Row> rows;
  std::string message;  ///< DDL acknowledgements and EXPLAIN plans
  ExecStats stats;
};

/// How Open() brings indexes back after a restart.
enum class IndexRecovery {
  /// Rebuild every index from the recovered heap (always correct; build
  /// cost proportional to data size — PostgreSQL REINDEX).
  kRebuild,
  /// Reload "faiss"-engine indexes from the snapshot taken at the last
  /// checkpoint, then top up with post-snapshot rows and deletes from the
  /// WAL; falls back to kRebuild per index when no usable snapshot exists.
  kReload,
};

/// Configuration for MiniDatabase::Open.
struct DatabaseOptions {
  uint32_t page_size = 8192;   ///< PostgreSQL default block size
  size_t pool_pages = 65536;   ///< buffer pool frames (512MB at 8KB)
  /// Filesystem the database runs on; null = the real one. Tests inject a
  /// pgstub::FaultInjectionVfs here to crash at chosen byte offsets.
  pgstub::Vfs* vfs = nullptr;
  /// Write-ahead logging. Off, a crash loses everything since the last
  /// FlushAll; the paper's "specialized system" operating point.
  bool wal_enabled = true;
  /// Auto-checkpoint once the WAL exceeds this many bytes (checked after
  /// each statement); 0 disables auto-checkpointing (CHECKPOINT only).
  uint64_t checkpoint_wal_bytes = 16ull << 20;
  IndexRecovery index_recovery = IndexRecovery::kRebuild;
};

/// A single-session vector database over the pgstub substrate.
class MiniDatabase {
 public:
  /// Opens (creating if needed) a database rooted at `data_dir`, running
  /// crash recovery if the directory has prior state.
  static Result<std::unique_ptr<MiniDatabase>> Open(
      const std::string& data_dir, const DatabaseOptions& options = {});

  /// Parses and executes one SQL statement.
  Result<QueryResult> Execute(const std::string& statement);

  /// Forces a checkpoint: index snapshots (kReload), dirty pages, smgr
  /// sync, catalog, THEN the checkpoint record, then WAL rotation. The
  /// ordering is the point — logging the record first would let replay
  /// skip images of pages that never reached storage.
  Status Checkpoint();

  pgstub::BufferManager* bufmgr() { return &bufmgr_; }
  pgstub::StorageManager* smgr() { return &smgr_; }
  pgstub::WalManager* wal() { return wal_.get(); }

 private:
  struct TableEntry {
    CreateTableStmt schema;
    std::unique_ptr<pgstub::HeapTable> heap;
    std::vector<std::string> indexes;  ///< names of indexes on this table
    /// Tombstoned row ids (dead tuples until a rebuild "vacuums" them).
    std::unordered_set<int64_t> deleted;
  };
  struct IndexEntry {
    CreateIndexStmt def;
    std::unique_ptr<VectorIndex> index;
    std::unique_ptr<pgstub::VectorIndexAm> am;
    /// Snapshot bookkeeping (kReload policy), persisted in the catalog.
    bool has_snapshot = false;
    uint64_t rows_at_snapshot = 0;
  };

  MiniDatabase(pgstub::StorageManager smgr, pgstub::Vfs* vfs,
               const DatabaseOptions& options)
      : options_(options),
        vfs_(vfs),
        smgr_(std::move(smgr)),
        bufmgr_(&smgr_, options.pool_pages) {}

  /// Parse + dispatch, without the metrics/stats bookkeeping Execute adds.
  Result<QueryResult> Dispatch(const Statement& stmt);

  Result<QueryResult> ExecCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> ExecSelect(const SelectStmt& stmt);
  Result<QueryResult> ExecDrop(const DropStmt& stmt);
  Result<QueryResult> ExecDelete(const DeleteStmt& stmt);
  Result<QueryResult> ExecShow(const ShowStmt& stmt);
  Result<QueryResult> ExecCheckpoint();

  /// Rebuilds the in-memory state (tables_, indexes_) from the durable
  /// catalog after REDO; `wal_tombstones` are deletes newer than the
  /// catalog's sets, keyed by heap relation id.
  Status RecoverFrom(const Catalog& catalog,
                     const std::vector<pgstub::WalTombstone>& wal_tombstones);

  /// kReload fast path for one index; returns false (after cleaning up)
  /// when the snapshot is unusable and the caller should rebuild.
  bool TryReloadIndex(const CatalogIndex& cat, const TableEntry& table,
                      IndexEntry* entry);

  /// Rebuild path: fresh index, AmBuild over the heap, re-applied deletes.
  Status RebuildIndex(const TableEntry& table, IndexEntry* entry);

  /// Serializes tables_/indexes_ into the durable catalog (temp + rename).
  Status SaveCatalogNow() const;

  /// Path of index `name`'s snapshot covering `rows` heap rows. The row
  /// count is part of the name so a snapshot written for a newer state
  /// can never be paired with an older catalog entry.
  std::string SnapshotPath(const std::string& name, uint64_t rows) const;

  /// Instantiates an engine index per (method, engine) for `dim`.
  Result<std::unique_ptr<VectorIndex>> MakeIndex(const CreateIndexStmt& stmt,
                                                 uint32_t dim);

  /// Brute-force fallback when no usable index exists. `bound` (nullable)
  /// is the bound WHERE predicate.
  Result<QueryResult> SeqScanSelect(const SelectStmt& stmt,
                                    const TableEntry& table,
                                    const filter::BoundPredicate* bound);

  /// One heap pass producing the exact position-indexed selection bitmap
  /// (deleted rows excluded) plus a strided sampled selectivity estimate.
  struct FilterPlan {
    filter::SelectionVector selection;
    double est_selectivity = 1.0;
  };
  Result<FilterPlan> BuildFilterPlan(const TableEntry& table,
                                     const filter::BoundPredicate& bound,
                                     size_t sample_rows) const;

  DatabaseOptions options_;
  pgstub::Vfs* vfs_;
  pgstub::StorageManager smgr_;
  pgstub::BufferManager bufmgr_;
  std::unique_ptr<pgstub::WalManager> wal_;
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, IndexEntry> indexes_;
};

}  // namespace vecdb::sql
