// MiniDatabase: the SQL front end tying the substrate together — catalog,
// planner, and executor for the paper's §II-E interface. Statements flow
// lexer -> parser -> plan (index scan vs. sequential scan) -> execution
// against pgstub heap tables and any of the three engines' indexes.
//
// Concurrency (docs/SESSIONS.md): statements arrive through Session
// handles (sql/session.h) and run concurrently under a two-level locking
// scheme. catalog_mu_ is taken exclusively by DDL (CREATE/DROP/
// CHECKPOINT) and shared by DML/queries, so the table and index maps are
// stable while statements run. Each table adds a SharedMutex serializing
// its writers (INSERT/DELETE take it exclusively; index scans take it
// shared, or exclusively for indexes whose Search is not concurrency-
// safe). Sequential-scan SELECTs take NO table lock at all: they pin an
// epoch (pgstub/epoch.h) and read the table's published TableSnapshot —
// a bounded row count plus tombstone set that writers replace atomically
// and retire through the epoch manager — so readers always observe a
// statement-atomic prefix of the heap.
//
// Durability (docs/DURABILITY.md): Open() recovers a restarted database —
// the storage manager re-attaches relations from its manifest, ARIES-lite
// REDO replays WAL full-page images and tombstones, the durable catalog
// restores schemas, and indexes are rebuilt from the recovered heap (or
// reloaded from checkpoint snapshots under IndexRecovery::kReload).
// Checkpoint() enforces the WAL protocol ordering: dirty pages and the
// catalog reach storage BEFORE the checkpoint record claims they did, and
// the log is rotated so its size stays bounded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/index.h"
#include "filter/predicate.h"
#include "filter/selection.h"
#include "pgstub/bufmgr.h"
#include "pgstub/epoch.h"
#include "pgstub/heap_table.h"
#include "pgstub/index_am.h"
#include "pgstub/smgr.h"
#include "pgstub/vfs.h"
#include "pgstub/wal.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace vecdb::sql {

class Session;
class SessionManager;
class AdmissionController;

/// Result of one statement: DDL/DML return a message, SELECT returns rows.
/// The struct is a plain value (no references into database state), so a
/// result remains valid after the statement completes, after later
/// statements run, and across threads.
struct QueryResult {
  struct Row {
    int64_t id = 0;
    double distance = 0.0;
  };
  /// Per-statement execution statistics, filled by Session::Execute().
  struct ExecStats {
    double wall_seconds = 0.0;   ///< end-to-end statement latency
    uint64_t rows_scanned = 0;   ///< tuples the executor visited
    uint64_t rows_returned = 0;  ///< rows in the result set
  };
  std::vector<std::string> columns;  ///< "id" or {"id", "distance"}
  std::vector<Row> rows;
  std::string message;  ///< DDL acknowledgements and EXPLAIN plans
  ExecStats stats;
};

/// How Open() brings indexes back after a restart.
enum class IndexRecovery {
  /// Rebuild every index from the recovered heap (always correct; build
  /// cost proportional to data size — PostgreSQL REINDEX).
  kRebuild,
  /// Reload "faiss"-engine indexes from the snapshot taken at the last
  /// checkpoint, then top up with post-snapshot rows and deletes from the
  /// WAL; falls back to kRebuild per index when no usable snapshot exists.
  kReload,
};

/// Configuration for MiniDatabase::Open.
struct DatabaseOptions {
  uint32_t page_size = 8192;   ///< PostgreSQL default block size
  size_t pool_pages = 65536;   ///< buffer pool frames (512MB at 8KB)
  /// Filesystem the database runs on; null = the real one. Tests inject a
  /// pgstub::FaultInjectionVfs here to crash at chosen byte offsets.
  pgstub::Vfs* vfs = nullptr;
  /// Write-ahead logging. Off, a crash loses everything since the last
  /// FlushAll; the paper's "specialized system" operating point.
  bool wal_enabled = true;
  /// Auto-checkpoint once the WAL exceeds this many bytes (checked after
  /// each statement); 0 disables auto-checkpointing (CHECKPOINT only).
  uint64_t checkpoint_wal_bytes = 16ull << 20;
  IndexRecovery index_recovery = IndexRecovery::kRebuild;
  /// Statements executing at once across all sessions; excess statements
  /// queue FIFO in the admission controller (must be >= 1).
  uint32_t max_concurrent_queries = 8;
  /// Statements one session may have in flight at once (must be >= 1);
  /// keeps a single session from monopolizing the admission slots.
  uint32_t max_inflight_per_session = 4;
  /// Database-wide default statement deadline in milliseconds; 0 disables.
  /// A session's `SET statement_timeout_ms = n` overrides it, and a
  /// statement's OPTIONS (statement_timeout_ms = n) overrides both. Must
  /// be <= 24h (validated at Open; the same cap applies to the overrides).
  uint32_t statement_timeout_ms = 0;
  /// Test seam: invoked with the session id after a statement is admitted
  /// and before it executes. Lets tests park admitted statements to pin
  /// the admission state. Never set in production code.
  std::function<void(uint64_t)> statement_hook_for_test;
  /// Test seam: per-row busy-wait (nanoseconds) in sequential scans, so
  /// cancellation/timeout tests can make a statement reliably long-running
  /// without giant datasets. Never set in production code.
  uint64_t seqscan_delay_nanos_for_test = 0;
};

/// A multi-session vector database over the pgstub substrate. Statements
/// run through Session handles (CreateSession); src/net's VecServer puts
/// the same Session API behind a TCP wire protocol.
class MiniDatabase {
 public:
  /// Opens (creating if needed) a database rooted at `data_dir`, running
  /// crash recovery if the directory has prior state.
  static Result<std::unique_ptr<MiniDatabase>> Open(
      const std::string& data_dir, const DatabaseOptions& options = {});

  ~MiniDatabase();

  /// Creates a new session (the canonical way to execute statements).
  std::shared_ptr<Session> CreateSession();

  /// Parses and executes one statement on behalf of `session` (nullable:
  /// no session defaults apply). Called by Session::Execute AFTER
  /// admission; callers other than Session bypass admission control.
  Result<QueryResult> ExecuteForSession(const std::string& statement,
                                        Session* session)
      VECDB_EXCLUDES(catalog_mu_);

  /// Forces a checkpoint: index snapshots (kReload), dirty pages, smgr
  /// sync, catalog, THEN the checkpoint record, then WAL rotation. The
  /// ordering is the point — logging the record first would let replay
  /// skip images of pages that never reached storage. Takes the catalog
  /// lock exclusively (quiesces every in-flight statement).
  Status Checkpoint() VECDB_EXCLUDES(catalog_mu_);

  pgstub::BufferManager* bufmgr() { return &bufmgr_; }
  pgstub::StorageManager* smgr() { return &smgr_; }
  pgstub::WalManager* wal() { return wal_.get(); }
  pgstub::EpochManager* epochs() { return &epochs_; }
  AdmissionController* admission() { return admission_.get(); }
  SessionManager* session_manager() { return sessions_.get(); }
  const DatabaseOptions& options() const { return options_; }

 private:
  /// What a lock-free reader sees of a table: the number of heap rows
  /// published (a statement-atomic prefix — INSERT publishes once per
  /// statement) and the tombstone set as of publication. Writers replace
  /// the whole object under the table writer lock and Retire() the old
  /// one; readers pin an epoch, acquire-load the pointer, and may then
  /// dereference it for the duration of the pin.
  struct TableSnapshot {
    uint64_t visible_rows = 0;
    /// Shared so INSERT (which does not change it) can reuse the set and
    /// DELETE can copy-on-write; null means "no tombstones".
    std::shared_ptr<const std::unordered_set<int64_t>> deleted;
  };
  /// Per-table concurrency state, held by unique_ptr so TableEntry stays
  /// movable while the mutex and atomic stay pinned in memory.
  struct TableState {
    /// Serializes table writers; shared by index scans (exclusive for
    /// indexes whose Search is not concurrency-safe). Seq scans do not
    /// take it at all.
    SharedMutex mu;
    std::atomic<const TableSnapshot*> snapshot{nullptr};
    ~TableState() { delete snapshot.load(std::memory_order_acquire); }
  };
  struct TableEntry {
    CreateTableStmt schema;
    std::unique_ptr<pgstub::HeapTable> heap;
    std::vector<std::string> indexes;  ///< names of indexes on this table
    std::unique_ptr<TableState> state;
  };
  struct IndexEntry {
    CreateIndexStmt def;
    std::unique_ptr<VectorIndex> index;
    std::unique_ptr<pgstub::VectorIndexAm> am;
    /// Snapshot bookkeeping (kReload policy), persisted in the catalog.
    bool has_snapshot = false;
    uint64_t rows_at_snapshot = 0;
  };

  /// Defined in database.cc: member destructors (instantiated for
  /// exception cleanup) need the complete Session/Admission types.
  MiniDatabase(pgstub::StorageManager smgr, pgstub::Vfs* vfs,
               const DatabaseOptions& options);

  /// DDL dispatch: CREATE TABLE / CREATE INDEX / DROP / CHECKPOINT.
  Result<QueryResult> DispatchDdl(const Statement& stmt)
      VECDB_REQUIRES(catalog_mu_);
  /// DML/query dispatch: INSERT / SELECT / DELETE / SHOW.
  Result<QueryResult> DispatchShared(const Statement& stmt, Session* session)
      VECDB_REQUIRES_SHARED(catalog_mu_);

  Result<QueryResult> ExecCreateTable(const CreateTableStmt& stmt)
      VECDB_REQUIRES(catalog_mu_);
  Result<QueryResult> ExecInsert(const InsertStmt& stmt)
      VECDB_REQUIRES_SHARED(catalog_mu_);
  Result<QueryResult> ExecCreateIndex(const CreateIndexStmt& stmt)
      VECDB_REQUIRES(catalog_mu_);
  Result<QueryResult> ExecSelect(const SelectStmt& stmt, Session* session)
      VECDB_REQUIRES_SHARED(catalog_mu_);
  Result<QueryResult> ExecDrop(const DropStmt& stmt)
      VECDB_REQUIRES(catalog_mu_);
  Result<QueryResult> ExecDelete(const DeleteStmt& stmt)
      VECDB_REQUIRES_SHARED(catalog_mu_);
  Result<QueryResult> ExecShow(const ShowStmt& stmt)
      VECDB_REQUIRES_SHARED(catalog_mu_);
  Result<QueryResult> ExecCheckpoint() VECDB_REQUIRES(catalog_mu_);
  /// SET/CANCEL touch only session state, never the catalog: they run
  /// before the lock split in ExecuteForSession.
  Result<QueryResult> ExecSet(const SetStmt& stmt, Session* session);
  Result<QueryResult> ExecCancel(const CancelStmt& stmt);

  /// Checkpoint body, for callers already holding the catalog lock.
  Status CheckpointLocked() VECDB_REQUIRES(catalog_mu_);

  /// The published tombstone set of `table` (a shared empty set when none
  /// exists). Callable wherever the snapshot pointer may be dereferenced:
  /// under the table lock, under an epoch pin, or under the exclusive
  /// catalog lock (which excludes all writers).
  static const std::unordered_set<int64_t>& DeletedRows(
      const TableEntry& table);

  /// Swaps in a new TableSnapshot (release-store) and retires the old one
  /// through the epoch manager. Call once per mutating statement, under
  /// the table writer lock, AFTER the heap/index mutations it publishes.
  void PublishSnapshot(
      TableEntry& table, uint64_t visible_rows,
      std::shared_ptr<const std::unordered_set<int64_t>> deleted);

  /// Inserts the statement's rows into the heap and every index; split
  /// out of ExecInsert so the snapshot publish runs exactly once on every
  /// exit path (rows inserted before a failure are still published).
  Status InsertRowsLocked(TableEntry& table, const InsertStmt& stmt)
      VECDB_REQUIRES_SHARED(catalog_mu_);

  /// Rebuilds the in-memory state (tables_, indexes_) from the durable
  /// catalog after REDO; `wal_tombstones` are deletes newer than the
  /// catalog's sets, keyed by heap relation id.
  Status RecoverFrom(const Catalog& catalog,
                     const std::vector<pgstub::WalTombstone>& wal_tombstones)
      VECDB_REQUIRES(catalog_mu_);

  /// kReload fast path for one index; returns false (after cleaning up)
  /// when the snapshot is unusable and the caller should rebuild.
  bool TryReloadIndex(const CatalogIndex& cat, const TableEntry& table,
                      IndexEntry* entry);

  /// Rebuild path: fresh index, AmBuild over the heap, re-applied deletes.
  Status RebuildIndex(const TableEntry& table, IndexEntry* entry);

  /// Serializes tables_/indexes_ into the durable catalog (temp + rename).
  Status SaveCatalogNow() const VECDB_REQUIRES_SHARED(catalog_mu_);

  /// Path of index `name`'s snapshot covering `rows` heap rows. The row
  /// count is part of the name so a snapshot written for a newer state
  /// can never be paired with an older catalog entry.
  std::string SnapshotPath(const std::string& name, uint64_t rows) const;

  /// Instantiates an engine index per (method, engine) for `dim`.
  Result<std::unique_ptr<VectorIndex>> MakeIndex(const CreateIndexStmt& stmt,
                                                 uint32_t dim);

  /// Brute-force fallback when no usable index exists. `bound` (nullable)
  /// is the bound WHERE predicate. Lock-free: scans the published
  /// snapshot's heap prefix under an epoch pin, concurrent with writers.
  /// `ctx` carries the statement's cancel flag and deadline, checked every
  /// few hundred rows.
  Result<QueryResult> SeqScanSelect(const SelectStmt& stmt,
                                    const TableEntry& table,
                                    const filter::BoundPredicate* bound,
                                    const QueryContext& ctx);

  /// One heap pass producing the exact position-indexed selection bitmap
  /// (deleted rows excluded) plus a strided sampled selectivity estimate.
  /// Caller must hold the table lock (any mode): uses the full heap scan.
  struct FilterPlan {
    filter::SelectionVector selection;
    double est_selectivity = 1.0;
  };
  Result<FilterPlan> BuildFilterPlan(const TableEntry& table,
                                     const filter::BoundPredicate& bound,
                                     size_t sample_rows) const;

  DatabaseOptions options_;
  pgstub::Vfs* vfs_;
  pgstub::StorageManager smgr_;
  pgstub::BufferManager bufmgr_;
  std::unique_ptr<pgstub::WalManager> wal_;
  /// Defers TableSnapshot frees past the last lock-free reader. Declared
  /// before tables_ so pending deleters run after entries are gone.
  pgstub::EpochManager epochs_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<SessionManager> sessions_;
  /// Lock order: catalog_mu_ before any TableState::mu; session/admission
  /// mutexes are leaves.
  mutable SharedMutex catalog_mu_;
  std::map<std::string, TableEntry> tables_ VECDB_GUARDED_BY(catalog_mu_);
  std::map<std::string, IndexEntry> indexes_ VECDB_GUARDED_BY(catalog_mu_);
};

}  // namespace vecdb::sql
