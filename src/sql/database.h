// MiniDatabase: the SQL front end tying the substrate together — catalog,
// planner, and executor for the paper's §II-E interface. Statements flow
// lexer -> parser -> plan (index scan vs. sequential scan) -> execution
// against pgstub heap tables and any of the three engines' indexes.
#pragma once

#include <map>
#include <memory>
#include <unordered_set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/index.h"
#include "filter/predicate.h"
#include "filter/selection.h"
#include "pgstub/bufmgr.h"
#include "pgstub/heap_table.h"
#include "pgstub/index_am.h"
#include "pgstub/smgr.h"
#include "sql/ast.h"

namespace vecdb::sql {

/// Result of one statement: DDL/DML return a message, SELECT returns rows.
struct QueryResult {
  struct Row {
    int64_t id = 0;
    double distance = 0.0;
  };
  /// Per-statement execution statistics, filled by Execute().
  struct ExecStats {
    double wall_seconds = 0.0;   ///< end-to-end statement latency
    uint64_t rows_scanned = 0;   ///< tuples the executor visited
    uint64_t rows_returned = 0;  ///< rows in the result set
  };
  std::vector<std::string> columns;  ///< "id" or {"id", "distance"}
  std::vector<Row> rows;
  std::string message;  ///< DDL acknowledgements and EXPLAIN plans
  ExecStats stats;
};

/// Configuration for MiniDatabase::Open.
struct DatabaseOptions {
  uint32_t page_size = 8192;   ///< PostgreSQL default block size
  size_t pool_pages = 65536;   ///< buffer pool frames (512MB at 8KB)
};

/// A single-session vector database over the pgstub substrate.
class MiniDatabase {
 public:
  /// Opens (creating if needed) a database rooted at `data_dir`.
  static Result<std::unique_ptr<MiniDatabase>> Open(
      const std::string& data_dir, const DatabaseOptions& options = {});

  /// Parses and executes one SQL statement.
  Result<QueryResult> Execute(const std::string& statement);

  pgstub::BufferManager* bufmgr() { return &bufmgr_; }
  pgstub::StorageManager* smgr() { return &smgr_; }

 private:
  struct TableEntry {
    CreateTableStmt schema;
    std::unique_ptr<pgstub::HeapTable> heap;
    std::vector<std::string> indexes;  ///< names of indexes on this table
    /// Tombstoned row ids (dead tuples until a rebuild "vacuums" them).
    std::unordered_set<int64_t> deleted;
  };
  struct IndexEntry {
    CreateIndexStmt def;
    std::unique_ptr<VectorIndex> index;
    std::unique_ptr<pgstub::VectorIndexAm> am;
  };

  MiniDatabase(pgstub::StorageManager smgr, size_t pool_pages)
      : smgr_(std::move(smgr)), bufmgr_(&smgr_, pool_pages) {}

  /// Parse + dispatch, without the metrics/stats bookkeeping Execute adds.
  Result<QueryResult> Dispatch(const Statement& stmt);

  Result<QueryResult> ExecCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> ExecSelect(const SelectStmt& stmt);
  Result<QueryResult> ExecDrop(const DropStmt& stmt);
  Result<QueryResult> ExecDelete(const DeleteStmt& stmt);
  Result<QueryResult> ExecShow(const ShowStmt& stmt);

  /// Instantiates an engine index per (method, engine) for `dim`.
  Result<std::unique_ptr<VectorIndex>> MakeIndex(const CreateIndexStmt& stmt,
                                                 uint32_t dim);

  /// Brute-force fallback when no usable index exists. `bound` (nullable)
  /// is the bound WHERE predicate.
  Result<QueryResult> SeqScanSelect(const SelectStmt& stmt,
                                    const TableEntry& table,
                                    const filter::BoundPredicate* bound);

  /// One heap pass producing the exact position-indexed selection bitmap
  /// (deleted rows excluded) plus a strided sampled selectivity estimate.
  struct FilterPlan {
    filter::SelectionVector selection;
    double est_selectivity = 1.0;
  };
  Result<FilterPlan> BuildFilterPlan(const TableEntry& table,
                                     const filter::BoundPredicate& bound,
                                     size_t sample_rows) const;

  pgstub::StorageManager smgr_;
  pgstub::BufferManager bufmgr_;
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, IndexEntry> indexes_;
};

}  // namespace vecdb::sql
