// Recursive-descent parser for the vecdb SQL dialect.
#pragma once

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace vecdb::sql {

/// Parses one statement (an optional trailing ';' is accepted).
Result<Statement> Parse(const std::string& input);

/// Parses a vector literal: "0.1,0.2,0.3" or "[0.1, 0.2, 0.3]".
Result<std::vector<float>> ParseVectorLiteral(const std::string& text);

}  // namespace vecdb::sql
