// Abstract syntax tree for the vecdb SQL dialect.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "distance/metric.h"
#include "filter/predicate.h"

namespace vecdb::sql {

/// CREATE TABLE t (id int, vec float[dim] [, attr int ...]);
struct CreateTableStmt {
  std::string table;
  std::string id_column;
  std::string vec_column;
  uint32_t dim = 0;  ///< required: float[dim]
  /// Scalar attribute columns (INT/BIGINT), stored as int64 in the heap.
  std::vector<std::string> attr_columns;
};

/// INSERT INTO t VALUES (1, '0.1,0.2' [, attr ...]), ...;
struct InsertStmt {
  std::string table;
  struct Row {
    int64_t id;
    std::vector<float> vec;
    std::vector<int64_t> attrs;  ///< one value per attr column
  };
  std::vector<Row> rows;
};

/// CREATE INDEX name ON t USING method (vec) WITH (key=value, ...);
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string method;  ///< "ivfflat" | "ivfpq" | "hnsw"
  std::string column;
  /// Numeric options (clusters, sample_ratio, m, bnn, efb, ...) plus the
  /// string option engine='pase'|'faiss'|'bridge'.
  std::map<std::string, double> options;
  std::string engine = "pase";
};

/// SELECT id FROM t [WHERE pred] ORDER BY vec <-> 'q' [OPTIONS (...)]
/// LIMIT k;
struct SelectStmt {
  std::string table;
  std::string select_column;      ///< must be the id column or '*'
  bool select_distance = false;   ///< SELECT *: id plus distance
  std::string order_column;
  Metric metric = Metric::kL2;    ///< from <->, <#>, <=>
  std::vector<float> query;
  /// WHERE clause over the id/attribute columns (null: unfiltered).
  std::unique_ptr<filter::Predicate> predicate;
  std::map<std::string, double> options;  ///< nprobe, efs, threads
  /// String-valued options; filter_strategy=prefilter|postfilter|infilter
  /// overrides the planner.
  std::map<std::string, std::string> string_options;
  size_t limit = 0;
  bool explain = false;
};

/// DROP TABLE t; / DROP INDEX name;
struct DropStmt {
  bool is_index = false;
  std::string name;
};

/// DELETE FROM t WHERE <pred>; — any predicate over the id/attribute
/// columns (the executor keeps a fast path for `id = n`).
struct DeleteStmt {
  std::string table;
  std::unique_ptr<filter::Predicate> predicate;
};

/// SHOW METRICS; / SHOW METRICS RESET; / SHOW SESSIONS;
struct ShowStmt {
  enum class What {
    kMetrics,   ///< registry export plus WAL health lines
    kSessions,  ///< per-session table: id, state, statements, in-flight
  };
  What what = What::kMetrics;
  bool reset = false;  ///< METRICS only: zero counters/histograms after
};

/// CHECKPOINT; — force dirty pages to storage, persist the catalog, log a
/// checkpoint record, and rotate the WAL (PostgreSQL's CHECKPOINT command).
struct CheckpointStmt {};

/// SET name = value; — a session-default numeric knob (nprobe, efs,
/// statement_timeout_ms), merged into later statements that do not set it
/// explicitly in OPTIONS (...). Knob names and ranges are validated by the
/// executor; PostgreSQL's `SET` with session scope.
struct SetStmt {
  std::string name;
  double value = 0.0;
};

/// CANCEL <session-id>; — request cancellation of the target session's
/// in-flight statement. The statement aborts with a Cancelled error at its
/// next engine checkpoint; the target session (and its connection) stay
/// usable. PostgreSQL's pg_cancel_backend().
struct CancelStmt {
  uint64_t session_id = 0;
};

/// A parsed statement (exactly one member is set).
struct Statement {
  enum class Kind {
    kCreateTable,
    kInsert,
    kCreateIndex,
    kSelect,
    kDrop,
    kDelete,
    kShow,
    kCheckpoint,
    kSet,
    kCancel,
  } kind;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<DeleteStmt> delete_row;
  std::unique_ptr<ShowStmt> show;
  std::unique_ptr<CheckpointStmt> checkpoint;
  std::unique_ptr<SetStmt> set;
  std::unique_ptr<CancelStmt> cancel;
};

}  // namespace vecdb::sql
