// Abstract syntax tree for the vecdb SQL dialect.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "distance/metric.h"

namespace vecdb::sql {

/// CREATE TABLE t (id int, vec float[dim]);
struct CreateTableStmt {
  std::string table;
  std::string id_column;
  std::string vec_column;
  uint32_t dim = 0;  ///< required: float[dim]
};

/// INSERT INTO t VALUES (1, '0.1,0.2'), (2, '[0.3, 0.4]');
struct InsertStmt {
  std::string table;
  struct Row {
    int64_t id;
    std::vector<float> vec;
  };
  std::vector<Row> rows;
};

/// CREATE INDEX name ON t USING method (vec) WITH (key=value, ...);
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string method;  ///< "ivfflat" | "ivfpq" | "hnsw"
  std::string column;
  /// Numeric options (clusters, sample_ratio, m, bnn, efb, ...) plus the
  /// string option engine='pase'|'faiss'|'bridge'.
  std::map<std::string, double> options;
  std::string engine = "pase";
};

/// SELECT id FROM t ORDER BY vec <-> 'q' [OPTIONS (...)] LIMIT k;
struct SelectStmt {
  std::string table;
  std::string select_column;      ///< must be the id column or '*'
  bool select_distance = false;   ///< SELECT *: id plus distance
  std::string order_column;
  Metric metric = Metric::kL2;    ///< from <->, <#>, <=>
  std::vector<float> query;
  std::map<std::string, double> options;  ///< nprobe, efs, threads
  size_t limit = 0;
  bool explain = false;
};

/// DROP TABLE t; / DROP INDEX name;
struct DropStmt {
  bool is_index = false;
  std::string name;
};

/// DELETE FROM t WHERE id = n;
struct DeleteStmt {
  std::string table;
  std::string where_column;  ///< must be the id column
  int64_t id = 0;
};

/// SHOW METRICS; / SHOW METRICS RESET;
struct ShowStmt {
  bool reset = false;  ///< zero all counters/histograms after exporting
};

/// A parsed statement (exactly one member is set).
struct Statement {
  enum class Kind {
    kCreateTable,
    kInsert,
    kCreateIndex,
    kSelect,
    kDrop,
    kDelete,
    kShow,
  } kind;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<DeleteStmt> delete_row;
  std::unique_ptr<ShowStmt> show;
};

}  // namespace vecdb::sql
