// Token definitions for the vecdb SQL dialect (the paper's §II-E surface:
// CREATE TABLE / INSERT / CREATE INDEX ... USING ... WITH (...) /
// SELECT ... ORDER BY vec <-> '...' LIMIT k).
#pragma once

#include <cstdint>
#include <string>

namespace vecdb::sql {

enum class TokenType : uint8_t {
  kEof,
  kIdentifier,   // table, column, index names (case-insensitive keywords)
  kKeyword,      // SELECT, FROM, ORDER, ...
  kNumber,       // integer or decimal literal
  kString,       // '...' literal (vector payloads)
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kEquals,
  kStar,
  kDistanceOp,   // <->  (L2), <#> (inner product), <=> (cosine)
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kNe,           // != or <>
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // raw text (uppercased for keywords)
  double number = 0;  // value when type == kNumber
  size_t pos = 0;     // byte offset in the statement, for error messages
};

}  // namespace vecdb::sql
