// Durable SQL catalog: the schema-level state MiniDatabase cannot
// reconstruct from pages alone — table schemas, index definitions, the
// tombstone sets as of the last checkpoint, and index snapshot metadata.
// Serialized as a small text file (`CATALOG`) rewritten atomically
// (temp + rename) on every DDL statement and at each checkpoint;
// PostgreSQL keeps the same information in its system catalogs, which are
// themselves WAL-protected heap tables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "pgstub/vfs.h"
#include "sql/ast.h"

namespace vecdb::sql {

/// Catalog state for one table.
struct CatalogTable {
  CreateTableStmt schema;
  /// Row ids deleted as of the last catalog write. Deletes after that are
  /// recovered from WAL tombstone records.
  std::vector<int64_t> tombstones;
  /// Heap row count at the last checkpoint (diagnostics only; the heap
  /// itself is recovered from pages + WAL).
  uint64_t rows_at_checkpoint = 0;
};

/// Catalog state for one index.
struct CatalogIndex {
  CreateIndexStmt def;
  /// True when `<index>.snap` holds a loadable snapshot (reload policy).
  bool has_snapshot = false;
  /// Heap rows covered by that snapshot, in heap scan order.
  uint64_t rows_at_snapshot = 0;
};

/// The full durable catalog.
struct Catalog {
  std::map<std::string, CatalogTable> tables;
  std::map<std::string, CatalogIndex> indexes;
};

/// Atomically rewrites `dir`'s catalog file.
Status SaveCatalog(pgstub::Vfs* vfs, const std::string& dir,
                   const Catalog& catalog);

/// Loads the catalog; NotFound when the directory has none (fresh
/// database), Corruption on an unparsable file.
Result<Catalog> LoadCatalog(pgstub::Vfs* vfs, const std::string& dir);

}  // namespace vecdb::sql
