#include "sql/parser.h"

#include <algorithm>
#include <cstdlib>

#include "sql/lexer.h"

namespace vecdb::sql {

namespace {

/// Token stream with single-token lookahead and typed expect helpers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }

  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " near '" +
                                     Peek().text + "' (byte " +
                                     std::to_string(Peek().pos) + ")");
    }
    return Status::OK();
  }

  Status Expect(TokenType type, const char* what) {
    if (!Match(type)) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + Peek().text + "' (byte " +
                                     std::to_string(Peek().pos) + ")");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + Peek().text + "'");
    }
    return Advance().text;
  }

  Result<double> ExpectNumber(const char* what) {
    if (Peek().type != TokenType::kNumber) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + Peek().text + "'");
    }
    return Advance().number;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// WITH/OPTIONS (key = value [, ...]) — numeric values go to `numeric`,
/// identifier/string values to `strings` (null: string values rejected).
/// Which string keys are legal is the caller's business.
Status ParseOptionList(Cursor& cur, std::map<std::string, double>* numeric,
                       std::map<std::string, std::string>* strings) {
  VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kLParen, "'('"));
  for (;;) {
    VECDB_ASSIGN_OR_RETURN(std::string key, cur.ExpectIdentifier("option"));
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kEquals, "'='"));
    if (cur.Peek().type == TokenType::kNumber) {
      (*numeric)[key] = cur.Advance().number;
    } else if (cur.Peek().type == TokenType::kString ||
               cur.Peek().type == TokenType::kIdentifier) {
      if (strings == nullptr) {
        return Status::InvalidArgument("option " + key +
                                       " requires a numeric value");
      }
      (*strings)[key] = cur.Advance().text;
    } else {
      return Status::InvalidArgument("bad value for option " + key);
    }
    if (cur.Match(TokenType::kComma)) continue;
    break;
  }
  return cur.Expect(TokenType::kRParen, "')'");
}

/// WHERE grammar (precedence: OR < AND < atom):
///   pred    := andExpr (OR andExpr)*
///   andExpr := atom (AND atom)*
///   atom    := '(' pred ')'
///            | column (= | != | <> | < | <= | > | >=) integer
///            | column IN '(' integer (',' integer)* ')'
Result<std::unique_ptr<filter::Predicate>> ParsePredicate(Cursor& cur);

Result<int64_t> ExpectIntValue(Cursor& cur) {
  VECDB_ASSIGN_OR_RETURN(double value, cur.ExpectNumber("integer value"));
  return static_cast<int64_t>(value);
}

Result<std::unique_ptr<filter::Predicate>> ParsePredicateAtom(Cursor& cur) {
  if (cur.Match(TokenType::kLParen)) {
    VECDB_ASSIGN_OR_RETURN(std::unique_ptr<filter::Predicate> inner,
                           ParsePredicate(cur));
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kRParen, "')'"));
    return inner;
  }
  VECDB_ASSIGN_OR_RETURN(std::string column,
                         cur.ExpectIdentifier("filter column"));
  if (cur.MatchKeyword("IN")) {
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kLParen, "'('"));
    std::vector<int64_t> values;
    for (;;) {
      VECDB_ASSIGN_OR_RETURN(int64_t v, ExpectIntValue(cur));
      values.push_back(v);
      if (cur.Match(TokenType::kComma)) continue;
      break;
    }
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kRParen, "')'"));
    return filter::Predicate::In(std::move(column), std::move(values));
  }
  filter::CmpOp op;
  switch (cur.Peek().type) {
    case TokenType::kEquals:
      op = filter::CmpOp::kEq;
      break;
    case TokenType::kNe:
      op = filter::CmpOp::kNe;
      break;
    case TokenType::kLt:
      op = filter::CmpOp::kLt;
      break;
    case TokenType::kLe:
      op = filter::CmpOp::kLe;
      break;
    case TokenType::kGt:
      op = filter::CmpOp::kGt;
      break;
    case TokenType::kGe:
      op = filter::CmpOp::kGe;
      break;
    default:
      return Status::InvalidArgument(
          "expected a comparison operator or IN after column '" + column +
          "' near '" + cur.Peek().text + "'");
  }
  cur.Advance();
  VECDB_ASSIGN_OR_RETURN(int64_t value, ExpectIntValue(cur));
  return filter::Predicate::Compare(std::move(column), op, value);
}

Result<std::unique_ptr<filter::Predicate>> ParsePredicateAnd(Cursor& cur) {
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<filter::Predicate> lhs,
                         ParsePredicateAtom(cur));
  while (cur.MatchKeyword("AND")) {
    VECDB_ASSIGN_OR_RETURN(std::unique_ptr<filter::Predicate> rhs,
                           ParsePredicateAtom(cur));
    lhs = filter::Predicate::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<filter::Predicate>> ParsePredicate(Cursor& cur) {
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<filter::Predicate> lhs,
                         ParsePredicateAnd(cur));
  while (cur.MatchKeyword("OR")) {
    VECDB_ASSIGN_OR_RETURN(std::unique_ptr<filter::Predicate> rhs,
                           ParsePredicateAnd(cur));
    lhs = filter::Predicate::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<Statement> ParseCreate(Cursor& cur) {
  if (cur.MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<CreateTableStmt>();
    VECDB_ASSIGN_OR_RETURN(stmt->table, cur.ExpectIdentifier("table name"));
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kLParen, "'('"));
    // id column
    VECDB_ASSIGN_OR_RETURN(stmt->id_column, cur.ExpectIdentifier("column"));
    if (!cur.MatchKeyword("INT") && !cur.MatchKeyword("BIGINT")) {
      return Status::InvalidArgument("first column must be INT or BIGINT");
    }
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kComma, "','"));
    // vec column
    VECDB_ASSIGN_OR_RETURN(stmt->vec_column, cur.ExpectIdentifier("column"));
    VECDB_RETURN_NOT_OK(cur.ExpectKeyword("FLOAT"));
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kLBracket, "'['"));
    if (cur.Peek().type == TokenType::kNumber) {
      stmt->dim = static_cast<uint32_t>(cur.Advance().number);
    }
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kRBracket, "']'"));
    // Optional scalar attribute columns: `, name INT|BIGINT` ...
    while (cur.Match(TokenType::kComma)) {
      VECDB_ASSIGN_OR_RETURN(std::string attr,
                             cur.ExpectIdentifier("attribute column"));
      if (!cur.MatchKeyword("INT") && !cur.MatchKeyword("BIGINT")) {
        return Status::InvalidArgument("attribute column " + attr +
                                       " must be INT or BIGINT");
      }
      if (attr == stmt->id_column || attr == stmt->vec_column ||
          std::find(stmt->attr_columns.begin(), stmt->attr_columns.end(),
                    attr) != stmt->attr_columns.end()) {
        return Status::InvalidArgument("duplicate column name: " + attr);
      }
      stmt->attr_columns.push_back(std::move(attr));
    }
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kRParen, "')'"));
    if (stmt->dim == 0) {
      return Status::InvalidArgument(
          "vector column needs an explicit dimension, e.g. vec float[128]");
    }
    Statement out;
    out.kind = Statement::Kind::kCreateTable;
    out.create_table = std::move(stmt);
    return out;
  }
  if (cur.MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<CreateIndexStmt>();
    VECDB_ASSIGN_OR_RETURN(stmt->index, cur.ExpectIdentifier("index name"));
    VECDB_RETURN_NOT_OK(cur.ExpectKeyword("ON"));
    VECDB_ASSIGN_OR_RETURN(stmt->table, cur.ExpectIdentifier("table name"));
    VECDB_RETURN_NOT_OK(cur.ExpectKeyword("USING"));
    VECDB_ASSIGN_OR_RETURN(stmt->method, cur.ExpectIdentifier("method"));
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kLParen, "'('"));
    VECDB_ASSIGN_OR_RETURN(stmt->column, cur.ExpectIdentifier("column"));
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kRParen, "')'"));
    if (cur.MatchKeyword("WITH")) {
      std::map<std::string, std::string> strings;
      VECDB_RETURN_NOT_OK(ParseOptionList(cur, &stmt->options, &strings));
      for (auto& [key, value] : strings) {
        if (key != "engine") {
          return Status::InvalidArgument("option " + key +
                                         " requires a numeric value");
        }
        stmt->engine = value;
      }
    }
    Statement out;
    out.kind = Statement::Kind::kCreateIndex;
    out.create_index = std::move(stmt);
    return out;
  }
  return Status::InvalidArgument("expected TABLE or INDEX after CREATE");
}

Result<Statement> ParseInsert(Cursor& cur) {
  auto stmt = std::make_unique<InsertStmt>();
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("INTO"));
  VECDB_ASSIGN_OR_RETURN(stmt->table, cur.ExpectIdentifier("table name"));
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("VALUES"));
  for (;;) {
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kLParen, "'('"));
    InsertStmt::Row row;
    VECDB_ASSIGN_OR_RETURN(double id, cur.ExpectNumber("row id"));
    row.id = static_cast<int64_t>(id);
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kComma, "','"));
    if (cur.Peek().type != TokenType::kString) {
      return Status::InvalidArgument("expected vector literal string");
    }
    VECDB_ASSIGN_OR_RETURN(row.vec, ParseVectorLiteral(cur.Advance().text));
    // Optional attribute values after the vector literal.
    while (cur.Match(TokenType::kComma)) {
      VECDB_ASSIGN_OR_RETURN(double attr,
                             cur.ExpectNumber("attribute value"));
      row.attrs.push_back(static_cast<int64_t>(attr));
    }
    VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
    if (cur.Match(TokenType::kComma)) continue;
    break;
  }
  Statement out;
  out.kind = Statement::Kind::kInsert;
  out.insert = std::move(stmt);
  return out;
}

Result<Statement> ParseSelect(Cursor& cur, bool explain) {
  auto stmt = std::make_unique<SelectStmt>();
  stmt->explain = explain;
  if (cur.Match(TokenType::kStar)) {
    stmt->select_distance = true;
    stmt->select_column = "*";
  } else {
    VECDB_ASSIGN_OR_RETURN(stmt->select_column,
                           cur.ExpectIdentifier("select column"));
  }
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("FROM"));
  VECDB_ASSIGN_OR_RETURN(stmt->table, cur.ExpectIdentifier("table name"));
  if (cur.MatchKeyword("WHERE")) {
    VECDB_ASSIGN_OR_RETURN(stmt->predicate, ParsePredicate(cur));
  }
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("ORDER"));
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("BY"));
  VECDB_ASSIGN_OR_RETURN(stmt->order_column,
                         cur.ExpectIdentifier("vector column"));
  if (cur.Peek().type != TokenType::kDistanceOp) {
    return Status::InvalidArgument("expected a distance operator (<->, <#>, "
                                   "<=>) after ORDER BY column");
  }
  const std::string op = cur.Advance().text;
  stmt->metric = op == "<->" ? Metric::kL2
                 : op == "<#>" ? Metric::kInnerProduct
                               : Metric::kCosine;
  if (cur.Peek().type != TokenType::kString) {
    return Status::InvalidArgument("expected quoted query vector literal");
  }
  VECDB_ASSIGN_OR_RETURN(stmt->query, ParseVectorLiteral(cur.Advance().text));
  cur.MatchKeyword("ASC");  // optional, and the only supported direction
  if (cur.MatchKeyword("OPTIONS")) {
    VECDB_RETURN_NOT_OK(
        ParseOptionList(cur, &stmt->options, &stmt->string_options));
    for (const auto& [key, value] : stmt->string_options) {
      if (key != "filter_strategy") {
        return Status::InvalidArgument("option " + key +
                                       " requires a numeric value");
      }
    }
  }
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("LIMIT"));
  VECDB_ASSIGN_OR_RETURN(double limit, cur.ExpectNumber("limit"));
  if (limit < 1) return Status::InvalidArgument("LIMIT must be >= 1");
  stmt->limit = static_cast<size_t>(limit);
  Statement out;
  out.kind = Statement::Kind::kSelect;
  out.select = std::move(stmt);
  return out;
}

Result<Statement> ParseDelete(Cursor& cur) {
  auto stmt = std::make_unique<DeleteStmt>();
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("FROM"));
  VECDB_ASSIGN_OR_RETURN(stmt->table, cur.ExpectIdentifier("table name"));
  VECDB_RETURN_NOT_OK(cur.ExpectKeyword("WHERE"));
  VECDB_ASSIGN_OR_RETURN(stmt->predicate, ParsePredicate(cur));
  Statement out;
  out.kind = Statement::Kind::kDelete;
  out.delete_row = std::move(stmt);
  return out;
}

Result<Statement> ParseShow(Cursor& cur) {
  auto stmt = std::make_unique<ShowStmt>();
  if (cur.MatchKeyword("METRICS")) {
    stmt->what = ShowStmt::What::kMetrics;
    stmt->reset = cur.MatchKeyword("RESET");
  } else if (cur.MatchKeyword("SESSIONS")) {
    stmt->what = ShowStmt::What::kSessions;
  } else {
    return Status::InvalidArgument("expected METRICS or SESSIONS after SHOW");
  }
  Statement out;
  out.kind = Statement::Kind::kShow;
  out.show = std::move(stmt);
  return out;
}

Result<Statement> ParseSet(Cursor& cur) {
  auto stmt = std::make_unique<SetStmt>();
  VECDB_ASSIGN_OR_RETURN(stmt->name, cur.ExpectIdentifier("option name"));
  VECDB_RETURN_NOT_OK(cur.Expect(TokenType::kEquals, "'='"));
  VECDB_ASSIGN_OR_RETURN(stmt->value, cur.ExpectNumber("option value"));
  Statement out;
  out.kind = Statement::Kind::kSet;
  out.set = std::move(stmt);
  return out;
}

Result<Statement> ParseCancel(Cursor& cur) {
  auto stmt = std::make_unique<CancelStmt>();
  VECDB_ASSIGN_OR_RETURN(double id, cur.ExpectNumber("session id"));
  if (id < 1 || id != static_cast<double>(static_cast<uint64_t>(id))) {
    return Status::InvalidArgument("CANCEL needs a positive session id");
  }
  stmt->session_id = static_cast<uint64_t>(id);
  Statement out;
  out.kind = Statement::Kind::kCancel;
  out.cancel = std::move(stmt);
  return out;
}

Result<Statement> ParseCheckpoint() {
  Statement out;
  out.kind = Statement::Kind::kCheckpoint;
  out.checkpoint = std::make_unique<CheckpointStmt>();
  return out;
}

Result<Statement> ParseDrop(Cursor& cur) {
  auto stmt = std::make_unique<DropStmt>();
  if (cur.MatchKeyword("INDEX")) {
    stmt->is_index = true;
  } else if (!cur.MatchKeyword("TABLE")) {
    return Status::InvalidArgument("expected TABLE or INDEX after DROP");
  }
  VECDB_ASSIGN_OR_RETURN(stmt->name, cur.ExpectIdentifier("name"));
  Statement out;
  out.kind = Statement::Kind::kDrop;
  out.drop = std::move(stmt);
  return out;
}

}  // namespace

Result<std::vector<float>> ParseVectorLiteral(const std::string& text) {
  std::vector<float> out;
  size_t i = 0;
  const size_t n = text.size();
  auto skip_ws = [&] {
    while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
  };
  skip_ws();
  bool bracketed = false;
  if (i < n && text[i] == '[') {
    bracketed = true;
    ++i;
  }
  for (;;) {
    skip_ws();
    if (i >= n) break;
    if (bracketed && text[i] == ']') {
      ++i;
      break;
    }
    char* end = nullptr;
    const float v = std::strtof(text.c_str() + i, &end);
    if (end == text.c_str() + i) {
      return Status::InvalidArgument("bad vector literal near '" +
                                     text.substr(i, 8) + "'");
    }
    out.push_back(v);
    i = static_cast<size_t>(end - text.c_str());
    skip_ws();
    if (i < n && text[i] == ',') {
      ++i;
      continue;
    }
  }
  skip_ws();
  if (i != n) {
    return Status::InvalidArgument("trailing garbage in vector literal");
  }
  if (out.empty()) {
    return Status::InvalidArgument("empty vector literal");
  }
  return out;
}

Result<Statement> Parse(const std::string& input) {
  VECDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Cursor cur(std::move(tokens));

  Result<Statement> result = Status::InvalidArgument("empty statement");
  if (cur.MatchKeyword("CREATE")) {
    result = ParseCreate(cur);
  } else if (cur.MatchKeyword("INSERT")) {
    result = ParseInsert(cur);
  } else if (cur.MatchKeyword("SELECT")) {
    result = ParseSelect(cur, /*explain=*/false);
  } else if (cur.MatchKeyword("EXPLAIN")) {
    VECDB_RETURN_NOT_OK(cur.ExpectKeyword("SELECT"));
    result = ParseSelect(cur, /*explain=*/true);
  } else if (cur.MatchKeyword("DROP")) {
    result = ParseDrop(cur);
  } else if (cur.MatchKeyword("DELETE")) {
    result = ParseDelete(cur);
  } else if (cur.MatchKeyword("SHOW")) {
    result = ParseShow(cur);
  } else if (cur.MatchKeyword("CHECKPOINT")) {
    result = ParseCheckpoint();
  } else if (cur.MatchKeyword("SET")) {
    result = ParseSet(cur);
  } else if (cur.MatchKeyword("CANCEL")) {
    result = ParseCancel(cur);
  } else {
    return Status::InvalidArgument("unrecognized statement start: '" +
                                   cur.Peek().text + "'");
  }
  if (!result.ok()) return result;
  cur.Match(TokenType::kSemicolon);
  if (cur.Peek().type != TokenType::kEof) {
    return Status::InvalidArgument("trailing tokens after statement: '" +
                                   cur.Peek().text + "'");
  }
  return result;
}

}  // namespace vecdb::sql
