// Hand-written lexer for the vecdb SQL dialect.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace vecdb::sql {

/// Tokenizes one SQL statement. Keywords are recognized case-insensitively
/// and reported uppercased; identifiers are lowercased (PostgreSQL folding).
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True if `word` (already uppercased) is a reserved keyword.
bool IsKeyword(const std::string& word);

}  // namespace vecdb::sql
