// Bridged HNSW (paper §IX-C, Step#1 + Step#5 applied to the graph index):
// the authoritative graph lives in memory (built and searched with the
// specialized algorithm and 4-byte neighbor ids), while a page-resident
// persistence image is written with a memory-centric layout — adjacency
// lists packed many-per-page, optionally with compact 4-byte entries —
// eliminating the two causes of the paper's Fig 13 space blow-up (RC#4).
#pragma once

#include <cstdint>
#include <string>

#include "core/index.h"
#include "faisslike/hnsw.h"
#include "pase/pase_common.h"

namespace vecdb::bridge {

/// Layout toggles for the persisted image (ablation of Fig 13's causes).
struct BridgedHnswOptions {
  uint32_t bnn = 16;
  uint32_t efb = 40;
  uint64_t seed = 42;
  std::string rel_prefix = "bridged_hnsw";
  Profiler* profiler = nullptr;

  /// Pack many adjacency lists per page instead of PASE's page-per-vertex.
  bool pack_pages = true;
  /// Store 4-byte neighbor ids instead of 24-byte HnswNeighborTuples.
  bool compact_tuples = true;
};

/// Memory-first HNSW with a relational persistence image.
class BridgedHnswIndex final : public VectorIndex {
 public:
  BridgedHnswIndex(pase::PaseEnv env, uint32_t dim,
                   BridgedHnswOptions options);

  /// Builds the in-memory graph, then persists vectors and adjacency to
  /// pgstub pages in the configured layout.
  Status Build(const float* data, size_t n) override;

  /// Pointer-direct search on the in-memory graph (RC#2 eliminated).
  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  /// The underlying graph search uses shared visited scratch, so
  /// concurrent scans on one instance race.
  bool SupportsConcurrentSearch() const override { return false; }

  /// Size of the persisted relational image (pages * page size) — the
  /// apples-to-apples comparison against PASE's Fig 13 numbers.
  size_t SizeBytes() const override;
  size_t NumVectors() const override { return graph_.NumVectors(); }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

 private:
  Status PersistImage(const float* data, size_t n);

  pase::PaseEnv env_;
  uint32_t dim_;
  BridgedHnswOptions options_;
  faisslike::HnswIndex graph_;
  pgstub::RelId data_rel_ = pgstub::kInvalidRel;
  pgstub::RelId nbr_rel_ = pgstub::kInvalidRel;
};

}  // namespace vecdb::bridge
