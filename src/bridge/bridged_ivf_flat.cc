#include "bridge/bridged_ivf_flat.h"

#include <cstring>

#include "clustering/kmeans.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::bridge {

namespace {
struct DataPageSpecial {
  pgstub::BlockId next;
};
}  // namespace

Status BridgedIvfFlatIndex::AppendToBucket(uint32_t bucket, int64_t row_id,
                                           const float* vec) {
  const uint32_t tuple_bytes =
      sizeof(pase::PaseVectorTuple) + dim_ * sizeof(float);
  std::vector<char> tuple(tuple_bytes);
  auto* header = reinterpret_cast<pase::PaseVectorTuple*>(tuple.data());
  header->row_id = row_id;
  header->level = 0;
  std::memcpy(tuple.data() + sizeof(pase::PaseVectorTuple), vec,
              dim_ * sizeof(float));

  BucketChain& chain = chains_[bucket];
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::OK();
    }
    env_.bufmgr->Unpin(handle, false);
  }
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(data_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(sizeof(DataPageSpecial));
  reinterpret_cast<DataPageSpecial*>(page.Special())->next =
      pgstub::kInvalidBlock;
  if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
      pgstub::kInvalidOffset) {
    env_.bufmgr->Unpin(fresh.second, true);
    return Status::Internal("BridgedIvfFlat: tuple larger than a page");
  }
  env_.bufmgr->Unpin(fresh.second, true);
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle prev,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView prev_page(prev.data, env_.bufmgr->page_size());
    reinterpret_cast<DataPageSpecial*>(prev_page.Special())->next =
        fresh.first;
    env_.bufmgr->Unpin(prev, true);
  } else {
    chain.head = fresh.first;
  }
  chain.tail = fresh.first;
  return Status::OK();
}

Status BridgedIvfFlatIndex::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("BridgedIvfFlat: bad env");
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("BridgedIvfFlat: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("BridgedIvfFlat: c > n");
  }
  build_stats_ = {};
  Timer timer;

  // Step#5: better K-means; Step#2: SGEMM inside training.
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = options_.faiss_kmeans ? KMeansStyle::kFaissStyle
                                   : KMeansStyle::kPaseStyle;
  km.use_sgemm = options_.use_sgemm && options_.faiss_kmeans;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // Adding phase: Step#2 batches the assignment via SGEMM; pages stay the
  // durable representation either way.
  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  chains_.assign(num_clusters_, {});
  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  options_.use_sgemm, assign.data(), nullptr, nullptr,
                  options_.profiler);
  for (size_t i = 0; i < n; ++i) {
    VECDB_RETURN_NOT_OK(AppendToBucket(assign[i], static_cast<int64_t>(i),
                                       data + i * dim_));
  }
  num_vectors_ = n;

  // Step#1: one-time mirror into contiguous memory. After this, searches
  // never touch the buffer manager.
  if (options_.memory_table) {
    mirror_vecs_ = std::vector<AlignedFloats>(num_clusters_);
    mirror_ids_.assign(num_clusters_, {});
    for (size_t i = 0; i < n; ++i) {
      const uint32_t b = assign[i];
      mirror_vecs_[b].Append(data + i * dim_, dim_);
      mirror_ids_[b].push_back(static_cast<int64_t>(i));
    }
  }
  build_stats_.add_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<uint32_t> BridgedIvfFlatIndex::SelectBuckets(
    const float* query, uint32_t nprobe) const {
  KMaxHeap heap(nprobe);
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    heap.Push(L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                    dim_),
              c);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

Status BridgedIvfFlatIndex::ScanBucketPages(
    uint32_t bucket, const float* query,
    const std::function<void(float, int64_t)>& emit, Profiler* profiler,
    obs::SearchCounters* counters) const {
  if (counters != nullptr) ++counters->buckets_probed;
  pgstub::BlockId block = chains_[bucket].head;
  while (block != pgstub::kInvalidBlock) {
    pgstub::BufferHandle handle;
    {
      ProfScope scope(profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    if (counters != nullptr) counters->tuples_visited += count;
    for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      const auto* header =
          reinterpret_cast<const pase::PaseVectorTuple*>(item);
      const float* vec = reinterpret_cast<const float*>(
          item + sizeof(pase::PaseVectorTuple));
      emit(L2Sqr(query, vec, dim_), header->row_id);
    }
    block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
    env_.bufmgr->Unpin(handle, false);
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> BridgedIvfFlatIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("BridgedIvfFlat: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "BridgedIvfFlat::Search"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("BridgedIvfFlat: index not built");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kBridgeSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kBridgeQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  auto probes = SelectBuckets(query, nprobe);

  // Single emit sink whose shape depends on the Step#3 toggle.
  KMaxHeap kheap(params.k);
  NHeap nheap;
  auto emit = [&](float dist, int64_t id) {
    if (options_.k_heap) {
      kheap.Push(dist, id);
    } else {
      nheap.Push(dist, id);
    }
  };

  auto scan_bucket = [&](uint32_t b,
                         const std::function<void(float, int64_t)>& sink,
                         obs::SearchCounters* counters) -> Status {
    if (options_.memory_table) {
      // Step#1: pointer-direct scan over the mirror.
      const auto& ids = mirror_ids_[b];
      const float* vecs = mirror_vecs_[b].data();
      if (counters != nullptr) {
        ++counters->buckets_probed;
        counters->tuples_visited += ids.size();
      }
      ProfScope scope(ctx.profiler, "fvec_L2sqr");
      for (size_t i = 0; i < ids.size(); ++i) {
        sink(L2Sqr(query, vecs + i * dim_, dim_), ids[i]);
      }
      return Status::OK();
    }
    return ScanBucketPages(b, query, sink, ctx.profiler, counters);
  };
  auto flush_counters = [metrics](const obs::SearchCounters& sc) {
    metrics->AddUnchecked(obs::Counter::kBridgeBucketsProbed,
                          sc.buckets_probed);
    metrics->AddUnchecked(obs::Counter::kBridgeTuplesVisited,
                          sc.tuples_visited);
  };

  if (params.num_threads <= 1) {
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    if (options_.memory_table && options_.k_heap) {
      // Fully-fixed fast path: no per-candidate function indirection —
      // this is what "specialized-engine code quality" means in practice.
      // Counters here are derived after the scan, so the loop itself stays
      // untouched whether metrics are on or off.
      for (uint32_t b : probes) {
        const auto& ids = mirror_ids_[b];
        const float* vecs = mirror_vecs_[b].data();
        for (size_t i = 0; i < ids.size(); ++i) {
          kheap.Push(L2Sqr(query, vecs + i * dim_, dim_), ids[i]);
        }
      }
      if (metrics != nullptr) {
        counters.buckets_probed = probes.size();
        for (uint32_t b : probes) {
          counters.tuples_visited += mirror_ids_[b].size();
        }
        flush_counters(counters);
      }
      return kheap.TakeSorted();
    }
    for (uint32_t b : probes) {
      VECDB_RETURN_NOT_OK(scan_bucket(b, emit, sc));
    }
    if (metrics != nullptr) flush_counters(counters);
    ProfScope scope(ctx.profiler, "MinHeap");
    return options_.k_heap ? kheap.TakeSorted() : nheap.PopK(params.k);
  }

  ThreadPool pool(params.num_threads);
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(params.num_threads)) {
    acct->Reset(params.num_threads);
  }
  Status worker_status = Status::OK();
  Mutex status_mu;

  std::vector<obs::SearchCounters> worker_counters(
      metrics != nullptr ? params.num_threads : 0);

  if (options_.local_heaps) {
    // Step#4: lock-free local heaps + merge.
    std::vector<std::vector<Neighbor>> locals(params.num_threads);
    pool.ParallelFor(probes.size(), [&](int worker, size_t begin, size_t end) {
      CpuTimer timer;
      obs::SearchCounters* sc =
          metrics != nullptr ? &worker_counters[worker] : nullptr;
      KMaxHeap local(params.k);
      auto sink = [&](float dist, int64_t id) { local.Push(dist, id); };
      for (size_t i = begin; i < end; ++i) {
        Status s = scan_bucket(probes[i], sink, sc);
        if (!s.ok()) {
          MutexLock guard(status_mu);
          if (worker_status.ok()) worker_status = s;
        }
      }
      locals[worker] = local.TakeSorted();
      if (acct != nullptr) acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
    });
    if (metrics != nullptr) {
      obs::SearchCounters merged;
      for (const auto& wc : worker_counters) merged.MergeFrom(wc);
      flush_counters(merged);
    }
    VECDB_RETURN_NOT_OK(worker_status);
    CpuTimer merge_timer;
    auto merged = MergeTopK(std::move(locals), params.k);
    if (acct != nullptr) acct->serial_nanos += merge_timer.ElapsedNanos();
    return merged;
  }

  // PASE-style global locked heap (ablation baseline for RC#3).
  Mutex mu;
  int64_t serial_nanos = 0;
  pool.ParallelFor(probes.size(), [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    obs::SearchCounters* sc =
        metrics != nullptr ? &worker_counters[worker] : nullptr;
    auto sink = [&](float dist, int64_t id) {
      CpuTimer lock_timer;
      MutexLock guard(mu);
      if (options_.k_heap) {
        kheap.Push(dist, id);
      } else {
        nheap.Push(dist, id);
      }
      serial_nanos += lock_timer.ElapsedNanos();
    };
    for (size_t i = begin; i < end; ++i) {
      Status s = scan_bucket(probes[i], sink, sc);
      if (!s.ok()) {
        MutexLock guard(status_mu);
        if (worker_status.ok()) worker_status = s;
      }
    }
    if (acct != nullptr) acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
  });
  VECDB_RETURN_NOT_OK(worker_status);
  if (acct != nullptr) acct->serial_nanos += serial_nanos;
  if (metrics != nullptr) {
    obs::SearchCounters merged;
    for (const auto& wc : worker_counters) merged.MergeFrom(wc);
    flush_counters(merged);
  }
  return options_.k_heap ? kheap.TakeSorted() : nheap.PopK(params.k);
}

size_t BridgedIvfFlatIndex::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  size_t bytes = blocks * static_cast<size_t>(env_.bufmgr->page_size());
  bytes += centroids_.size() * sizeof(float);
  for (const auto& v : mirror_vecs_) bytes += v.size() * sizeof(float);
  for (const auto& ids : mirror_ids_) bytes += ids.size() * sizeof(int64_t);
  return bytes;
}

std::string BridgedIvfFlatIndex::Describe() const {
  return "bridge::IVF_FLAT dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_) + " fixes=" +
         std::string(options_.memory_table ? "M" : "-") +
         (options_.use_sgemm ? "S" : "-") + (options_.k_heap ? "K" : "-") +
         (options_.local_heaps ? "L" : "-") +
         (options_.faiss_kmeans ? "F" : "-");
}

}  // namespace vecdb::bridge
