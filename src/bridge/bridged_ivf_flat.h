// The paper's §IX-C "future generalized vector database": an IVF_FLAT that
// still lives inside the relational substrate (its buckets are durable
// pgstub pages), but with the five guideline fixes applied. Every fix is a
// toggle so the ablation benchmark can walk from PASE-equivalent to
// Faiss-equivalent one root cause at a time:
//   Step#1 memory_table  — mirror pages into contiguous memory and search
//                          pointer-direct (fixes RC#2)
//   Step#2 use_sgemm     — batched assignment in build (fixes RC#1)
//   Step#3 k_heap        — bounded k-heap instead of n-heap (fixes RC#6)
//   Step#4 local_heaps   — per-worker heaps + merge when parallel (RC#3)
//   Step#5 faiss_kmeans  — better clustering (fixes RC#5)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "obs/metrics.h"
#include "pase/pase_common.h"
#include "topk/heaps.h"

namespace vecdb::bridge {

/// Guideline toggles plus the usual IVF parameters.
struct BridgedIvfFlatOptions {
  uint32_t num_clusters = 256;
  double sample_ratio = 0.01;
  int train_iterations = 10;
  uint64_t seed = 42;
  std::string rel_prefix = "bridged_ivfflat";
  Profiler* profiler = nullptr;

  bool memory_table = true;  ///< Step#1 (RC#2)
  bool use_sgemm = true;     ///< Step#2 (RC#1)
  bool k_heap = true;        ///< Step#3 (RC#6)
  bool local_heaps = true;   ///< Step#4 (RC#3)
  bool faiss_kmeans = true;  ///< Step#5 (RC#5)
};

/// Page-durable IVF_FLAT with the bridge fixes applied.
class BridgedIvfFlatIndex final : public VectorIndex {
 public:
  BridgedIvfFlatIndex(pase::PaseEnv env, uint32_t dim,
                      BridgedIvfFlatOptions options)
      : env_(env), dim_(dim), options_(options) {}

  Status Build(const float* data, size_t n) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override { return num_vectors_; }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  const float* centroids() const { return centroids_.data(); }
  uint32_t num_clusters() const { return num_clusters_; }

 private:
  struct BucketChain {
    pgstub::BlockId head = pgstub::kInvalidBlock;
    pgstub::BlockId tail = pgstub::kInvalidBlock;
  };

  Status AppendToBucket(uint32_t bucket, int64_t row_id, const float* vec);
  std::vector<uint32_t> SelectBuckets(const float* query,
                                      uint32_t nprobe) const;
  /// Page-path scan used when memory_table is off (PASE behaviour).
  /// `counters` (nullable, owned by the calling worker) picks up the
  /// probe and tuples-visited counts.
  Status ScanBucketPages(uint32_t bucket, const float* query,
                         const std::function<void(float, int64_t)>& emit,
                         Profiler* profiler,
                         obs::SearchCounters* counters) const;

  pase::PaseEnv env_;
  uint32_t dim_;
  BridgedIvfFlatOptions options_;

  uint32_t num_clusters_ = 0;
  size_t num_vectors_ = 0;
  pgstub::RelId data_rel_ = pgstub::kInvalidRel;
  std::vector<BucketChain> chains_;
  AlignedFloats centroids_;

  // Step#1 mirror: contiguous per-bucket vectors + ids, built once.
  std::vector<AlignedFloats> mirror_vecs_;
  std::vector<std::vector<int64_t>> mirror_ids_;
};

}  // namespace vecdb::bridge
