#include "bridge/bridged_hnsw.h"

#include <cstring>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace vecdb::bridge {

namespace {
/// Persisted adjacency item header; entries follow (4 or 24 bytes each).
struct AdjListHeader {
  uint32_t node;
  uint16_t level;
  uint16_t count;
};
}  // namespace

BridgedHnswIndex::BridgedHnswIndex(pase::PaseEnv env, uint32_t dim,
                                   BridgedHnswOptions options)
    : env_(env),
      dim_(dim),
      options_(options),
      graph_(dim, faisslike::HnswOptions{options.bnn, options.efb,
                                         options.seed, options.profiler}) {}

Status BridgedHnswIndex::PersistImage(const float* data, size_t n) {
  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  VECDB_ASSIGN_OR_RETURN(
      nbr_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_nbr"));

  // Vector tuples, packed densely (same as PASE data pages).
  const uint32_t vec_tuple =
      sizeof(pase::PaseVectorTuple) + dim_ * sizeof(float);
  std::vector<char> tuple(vec_tuple);
  pgstub::BufferHandle handle{};
  bool have_page = false;
  auto flush = [&]() {
    if (have_page) {
      env_.bufmgr->Unpin(handle, true);
      have_page = false;
    }
  };
  auto add_item = [&](pgstub::RelId rel, const char* item,
                      uint16_t len) -> Status {
    if (have_page) {
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      if (page.AddItem(item, len) != pgstub::kInvalidOffset) {
        return Status::OK();
      }
      env_.bufmgr->Unpin(handle, true);
      have_page = false;
    }
    VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(rel));
    handle = fresh.second;
    have_page = true;
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    page.Init(0);
    if (page.AddItem(item, len) == pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      have_page = false;
      return Status::Internal("BridgedHnsw: item larger than a page");
    }
    return Status::OK();
  };

  for (size_t i = 0; i < n; ++i) {
    auto* header = reinterpret_cast<pase::PaseVectorTuple*>(tuple.data());
    header->row_id = static_cast<int64_t>(i);
    header->level = 0;
    std::memcpy(tuple.data() + sizeof(pase::PaseVectorTuple), data + i * dim_,
                dim_ * sizeof(float));
    VECDB_RETURN_NOT_OK(
        add_item(data_rel_, tuple.data(), static_cast<uint16_t>(vec_tuple)));
  }
  flush();

  // Adjacency lists, packed or page-per-vertex, compact or 24-byte.
  const size_t entry_bytes = options_.compact_tuples
                                 ? sizeof(uint32_t)
                                 : sizeof(pase::HnswNeighborTuple);
  std::vector<char> adj;
  for (uint32_t node = 0; node < graph_.NumVectors(); ++node) {
    if (!options_.pack_pages) flush();  // PASE behaviour: fresh page/vertex
    const int top = graph_.NodeLevel(node);
    for (int lev = 0; lev <= top; ++lev) {
      auto nbrs = graph_.NeighborsOf(node, lev);
      adj.resize(sizeof(AdjListHeader) + nbrs.size() * entry_bytes);
      auto* header = reinterpret_cast<AdjListHeader*>(adj.data());
      header->node = node;
      header->level = static_cast<uint16_t>(lev);
      header->count = static_cast<uint16_t>(nbrs.size());
      char* out = adj.data() + sizeof(AdjListHeader);
      for (uint32_t nb : nbrs) {
        if (options_.compact_tuples) {
          std::memcpy(out, &nb, sizeof(uint32_t));
          out += sizeof(uint32_t);
        } else {
          pase::HnswNeighborTuple t{};
          t.gid = {nb, nb, 1};
          std::memcpy(out, &t, sizeof(t));
          out += sizeof(t);
        }
      }
      VECDB_RETURN_NOT_OK(add_item(nbr_rel_, adj.data(),
                                   static_cast<uint16_t>(adj.size())));
    }
  }
  flush();
  return Status::OK();
}

Status BridgedHnswIndex::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("BridgedHnsw: bad env");
  Timer timer;
  VECDB_RETURN_NOT_OK(graph_.Build(data, n));
  VECDB_RETURN_NOT_OK(PersistImage(data, n));
  build_stats_ = {};
  build_stats_.add_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Result<std::vector<Neighbor>> BridgedHnswIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("BridgedHnsw: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kGraph, "BridgedHnsw::Search"));
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kBridgeSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kBridgeQueries);
  // Traversal counters land under faiss.* — the bridge delegates its whole
  // search to the in-memory graph.
  return graph_.Search(query, params);
}

size_t BridgedHnswIndex::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  if (auto r = env_.smgr->NumBlocks(nbr_rel_); r.ok()) blocks += *r;
  return blocks * static_cast<size_t>(env_.bufmgr->page_size());
}

std::string BridgedHnswIndex::Describe() const {
  return "bridge::HNSW dim=" + std::to_string(dim_) +
         " bnn=" + std::to_string(options_.bnn) +
         (options_.pack_pages ? " packed" : " page-per-vertex") +
         (options_.compact_tuples ? " 4B-ids" : " 24B-tuples");
}

}  // namespace vecdb::bridge
