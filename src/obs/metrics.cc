#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace vecdb::obs {

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kBufmgrHit: return "bufmgr.hit";
    case Counter::kBufmgrMiss: return "bufmgr.miss";
    case Counter::kBufmgrEviction: return "bufmgr.eviction";
    case Counter::kBufmgrPin: return "bufmgr.pin";
    case Counter::kWalRecords: return "wal.records";
    case Counter::kWalBytes: return "wal.bytes";
    case Counter::kWalCheckpoints: return "wal.checkpoints";
    case Counter::kWalRecoveredPages: return "wal.recovered_pages";
    case Counter::kSgemmCalls: return "sgemm.calls";
    case Counter::kKernelSq8Blocks: return "kernel.sq8_blocks";
    case Counter::kKernelSq8Codes: return "kernel.sq8_codes";
    case Counter::kFaissQueries: return "faiss.queries";
    case Counter::kFaissBatchQueries: return "faiss.batch_queries";
    case Counter::kFaissBucketsProbed: return "faiss.buckets_probed";
    case Counter::kFaissTuplesVisited: return "faiss.tuples_visited";
    case Counter::kFaissHeapPushes: return "faiss.heap_pushes";
    case Counter::kFaissTombstonesSkipped: return "faiss.tombstones_skipped";
    case Counter::kFaissBuilds: return "faiss.builds";
    case Counter::kPaseQueries: return "pase.queries";
    case Counter::kPaseBucketsProbed: return "pase.buckets_probed";
    case Counter::kPaseTuplesVisited: return "pase.tuples_visited";
    case Counter::kPaseHeapPushes: return "pase.heap_pushes";
    case Counter::kPaseTombstonesSkipped: return "pase.tombstones_skipped";
    case Counter::kPaseBuilds: return "pase.builds";
    case Counter::kBridgeQueries: return "bridge.queries";
    case Counter::kBridgeBucketsProbed: return "bridge.buckets_probed";
    case Counter::kBridgeTuplesVisited: return "bridge.tuples_visited";
    case Counter::kSqlStatements: return "sql.statements";
    case Counter::kSqlCreateTable: return "sql.create_table";
    case Counter::kSqlCreateIndex: return "sql.create_index";
    case Counter::kSqlInsertRows: return "sql.insert_rows";
    case Counter::kSqlSelect: return "sql.select";
    case Counter::kSqlDelete: return "sql.delete";
    case Counter::kSqlDrop: return "sql.drop";
    case Counter::kSqlShow: return "sql.show";
    case Counter::kSqlCheckpoint: return "sql.checkpoint";
    case Counter::kSqlSet: return "sql.set";
    case Counter::kSqlCancel: return "sql.cancel";
    case Counter::kSqlErrors: return "sql.errors";
    case Counter::kFilterPrefilterQueries: return "filter.prefilter_queries";
    case Counter::kFilterPostfilterQueries:
      return "filter.postfilter_queries";
    case Counter::kFilterInfilterQueries: return "filter.infilter_queries";
    case Counter::kFilterKampRetries: return "filter.kamp_retries";
    case Counter::kFilterBitmapProbes: return "filter.bitmap_probes";
    case Counter::kSessionCreated: return "session.created";
    case Counter::kSessionClosed: return "session.closed";
    case Counter::kSessionQueued: return "session.queued";
    case Counter::kSessionAdmitted: return "session.admitted";
    case Counter::kServerConnsAccepted: return "server.connections_accepted";
    case Counter::kServerConnsRejected: return "server.connections_rejected";
    case Counter::kServerFramesIn: return "server.frames_in";
    case Counter::kServerFramesOut: return "server.frames_out";
    case Counter::kServerBytesIn: return "server.bytes_in";
    case Counter::kServerBytesOut: return "server.bytes_out";
    case Counter::kServerProtocolErrors: return "server.protocol_errors";
    case Counter::kServerStatements: return "server.statements";
    case Counter::kServerCancelFrames: return "server.cancel_frames";
    case Counter::kServerStatementCancels:
      return "server.statement_cancels";
    case Counter::kServerStatementTimeouts:
      return "server.statement_timeouts";
    case Counter::kNumCounters: break;
  }
  return "unknown";
}

const char* HistName(Hist h) {
  switch (h) {
    case Hist::kFaissSearchNanos: return "faiss.search_nanos";
    case Hist::kPaseSearchNanos: return "pase.search_nanos";
    case Hist::kBridgeSearchNanos: return "bridge.search_nanos";
    case Hist::kFaissBuildNanos: return "faiss.build_nanos";
    case Hist::kPaseBuildNanos: return "pase.build_nanos";
    case Hist::kSqlSelectNanos: return "sql.select_nanos";
    case Hist::kSqlInsertNanos: return "sql.insert_nanos";
    case Hist::kSqlDdlNanos: return "sql.ddl_nanos";
    case Hist::kFilterSelectivityBp: return "filter.selectivity_bp";
    case Hist::kSessionQueueWaitNanos: return "session.queue_wait_nanos";
    case Hist::kServerStatementNanos: return "server.statement_nanos";
    case Hist::kNumHists: break;
  }
  return "unknown";
}

size_t Histogram::BucketIndex(uint64_t v) {
  // Values below two octaves of sub-buckets map to themselves (exact).
  if (v < 2 * kSub) return static_cast<size_t>(v);
  const uint32_t msb = static_cast<uint32_t>(std::bit_width(v)) - 1;
  const uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
  return static_cast<size_t>(msb + 1 - kSubBits) * kSub +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < 2 * kSub) return index;
  const uint32_t octave = static_cast<uint32_t>(index / kSub);
  const uint64_t sub = index % kSub;
  const uint32_t msb = octave + kSubBits - 1;
  return (uint64_t{1} << msb) | (sub << (msb - kSubBits));
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<uint64_t>::max() ? 0 : m;
}

double Histogram::Mean() const {
  const uint64_t n = TotalCount();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target (1-based), interpolated inside the landing bucket.
  const double rank = q * static_cast<double>(total);
  double cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= rank) {
      const double frac =
          std::clamp((rank - cum) / static_cast<double>(c), 0.0, 1.0);
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = i + 1 < kNumBuckets
                            ? static_cast<double>(BucketLowerBound(i + 1))
                            : lo;
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(Min()),
                        static_cast<double>(Max()));
    }
    cum += static_cast<double>(c);
  }
  return static_cast<double>(Max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

uint32_t MetricsRegistry::ShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

uint64_t MetricsRegistry::Value(Counter c) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.slots[static_cast<uint32_t>(c)].load(
        std::memory_order_relaxed);
  }
  return total;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(snapshot_mu_);
  for (Shard& shard : shards_) {
    for (auto& slot : shard.slots) slot.store(0, std::memory_order_relaxed);
  }
  for (auto& h : hists_) h.Reset();
}

std::string MetricsRegistry::ExportTable() const {
  MutexLock lock(snapshot_mu_);
  std::string out;
  char line[160];
  out += "counter                        value\n";
  for (uint32_t c = 0; c < static_cast<uint32_t>(Counter::kNumCounters);
       ++c) {
    std::snprintf(line, sizeof(line), "%-30s %llu\n",
                  CounterName(static_cast<Counter>(c)),
                  static_cast<unsigned long long>(
                      Value(static_cast<Counter>(c))));
    out += line;
  }
  out += "\nhistogram                      count        p50        p95"
         "        p99        max\n";
  for (uint32_t h = 0; h < static_cast<uint32_t>(Hist::kNumHists); ++h) {
    const Histogram& hist = hists_[h];
    std::snprintf(line, sizeof(line),
                  "%-30s %5llu %10.0f %10.0f %10.0f %10llu\n",
                  HistName(static_cast<Hist>(h)),
                  static_cast<unsigned long long>(hist.TotalCount()),
                  hist.Percentile(0.50), hist.Percentile(0.95),
                  hist.Percentile(0.99),
                  static_cast<unsigned long long>(hist.Max()));
    out += line;
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  MutexLock lock(snapshot_mu_);
  std::string out = "{\"counters\":{";
  char buf[160];
  for (uint32_t c = 0; c < static_cast<uint32_t>(Counter::kNumCounters);
       ++c) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", c == 0 ? "" : ",",
                  CounterName(static_cast<Counter>(c)),
                  static_cast<unsigned long long>(
                      Value(static_cast<Counter>(c))));
    out += buf;
  }
  out += "},\"histograms\":{";
  for (uint32_t h = 0; h < static_cast<uint32_t>(Hist::kNumHists); ++h) {
    const Histogram& hist = hists_[h];
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,"
        "\"p95\":%.1f,\"p99\":%.1f,\"max\":%llu}",
        h == 0 ? "" : ",", HistName(static_cast<Hist>(h)),
        static_cast<unsigned long long>(hist.TotalCount()), hist.Mean(),
        hist.Percentile(0.50), hist.Percentile(0.95), hist.Percentile(0.99),
        static_cast<unsigned long long>(hist.Max()));
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace vecdb::obs
