// Process-wide observability substrate: cheap always-on counters and
// log-bucketed latency histograms, in the spirit of RocksDB's
// Statistics/PerfContext split. The paper's entire method is measurement —
// its root-cause tables (Table III/V, Fig 8) are per-phase breakdowns — and
// a serving engine needs the same numbers live: buffer hit rates (RC#2/
// RC#4), SGEMM batching (RC#1), heap discipline (RC#6), and percentile
// query latencies.
//
// Cost contract, mirroring the nullable Profiler*: when a registry is
// disabled (or the caller holds a null pointer from
// QueryContext::live_metrics()), each instrumentation scope costs exactly
// one predictable branch. When enabled, counters are relaxed atomic adds on
// thread-sharded cachelines and histogram records are one relaxed atomic
// add plus min/max maintenance.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/thread_annotations.h"
#include "common/timer.h"

namespace vecdb::obs {

/// Process counters ("tickers"). Names are dotted `layer.metric` strings;
/// see CounterName() and docs/OBSERVABILITY.md for the catalog and the
/// mapping back to the paper's tables and root causes.
enum class Counter : uint32_t {
  // pgstub buffer manager (RC#2: page-mediated tuple access; RC#4 sizing).
  kBufmgrHit = 0,
  kBufmgrMiss,
  kBufmgrEviction,
  kBufmgrPin,
  // write-ahead log (the generalized engine's write tax).
  kWalRecords,
  kWalBytes,
  kWalCheckpoints,
  kWalRecoveredPages,
  // distance kernels (RC#1: batched SGEMM-decomposed distances).
  kSgemmCalls,
  kKernelSq8Blocks,  ///< SQ8 fast-scan blocks (Sq8CodeStore::kBlockCodes grain)
  kKernelSq8Codes,   ///< SQ8 codes scanned through the batched kernels
  // faisslike engine search/build.
  kFaissQueries,
  kFaissBatchQueries,
  kFaissBucketsProbed,
  kFaissTuplesVisited,
  kFaissHeapPushes,
  kFaissTombstonesSkipped,
  kFaissBuilds,
  // pase engine search/build.
  kPaseQueries,
  kPaseBucketsProbed,
  kPaseTuplesVisited,
  kPaseHeapPushes,
  kPaseTombstonesSkipped,
  kPaseBuilds,
  // bridge engine search.
  kBridgeQueries,
  kBridgeBucketsProbed,
  kBridgeTuplesVisited,
  // SQL front end, per statement kind.
  kSqlStatements,
  kSqlCreateTable,
  kSqlCreateIndex,
  kSqlInsertRows,
  kSqlSelect,
  kSqlDelete,
  kSqlDrop,
  kSqlShow,
  kSqlCheckpoint,
  kSqlSet,
  kSqlCancel,
  kSqlErrors,
  // filtered search (src/filter): one counter per executed strategy plus
  // the strategies' characteristic work units.
  kFilterPrefilterQueries,
  kFilterPostfilterQueries,
  kFilterInfilterQueries,
  kFilterKampRetries,    ///< post-filter k' doublings after a shortfall
  kFilterBitmapProbes,   ///< in-filter bitmap tests inside index traversal
  // multi-session front end (src/sql/session): lifecycle + admission.
  kSessionCreated,
  kSessionClosed,
  kSessionQueued,    ///< statements that waited for an admission slot
  kSessionAdmitted,  ///< statements granted an execution slot
  // networked server front end (src/net): connections, frame/byte traffic,
  // and statement-abort outcomes. The cancel/timeout counters tick in the
  // SQL layer (any transport), the rest in VecServer itself.
  kServerConnsAccepted,    ///< connections admitted by the listener
  kServerConnsRejected,    ///< connections refused at max_connections
  kServerFramesIn,         ///< complete frames decoded from clients
  kServerFramesOut,        ///< frames written to clients
  kServerBytesIn,          ///< payload+header bytes read from sockets
  kServerBytesOut,         ///< payload+header bytes written to sockets
  kServerProtocolErrors,   ///< malformed/torn/mismatched frames rejected
  kServerStatements,       ///< statements executed on behalf of clients
  kServerCancelFrames,     ///< out-of-band cancel frames received
  kServerStatementCancels,  ///< statements aborted by an explicit cancel
  kServerStatementTimeouts, ///< statements aborted by statement_timeout_ms
  kNumCounters,  // sentinel
};

/// Latency histograms, all in nanoseconds.
enum class Hist : uint32_t {
  kFaissSearchNanos = 0,
  kPaseSearchNanos,
  kBridgeSearchNanos,
  kFaissBuildNanos,
  kPaseBuildNanos,
  kSqlSelectNanos,
  kSqlInsertNanos,
  kSqlDdlNanos,
  /// Estimated selectivity of each filtered search, in basis points
  /// (0..10000) — the one non-latency histogram; its distribution shows
  /// which strategy regimes a workload actually exercises.
  kFilterSelectivityBp,
  /// Time each statement spent waiting for admission before executing
  /// (~0 on the uncontended fast path; the tail shows queueing).
  kSessionQueueWaitNanos,
  /// End-to-end server-side statement latency (decode to response frame
  /// queued), the networked analogue of sql.select_nanos.
  kServerStatementNanos,
  kNumHists,  // sentinel
};

/// Dotted metric name, e.g. "bufmgr.hit". Stable across releases; bench
/// tooling keys on these strings.
const char* CounterName(Counter c);
const char* HistName(Hist h);

/// Lock-free log-bucketed histogram. Buckets are exact for values below
/// 2^(kSubBits+1) and then split each power-of-two octave into
/// 2^kSubBits sub-buckets, so the relative bucket width is bounded by
/// 2^-kSubBits (12.5% at kSubBits=3). Percentiles interpolate linearly
/// inside a bucket and clamp to the recorded [min, max].
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSub = 1u << kSubBits;
  /// Octaves for msb 0..63 plus the sub-bucket tail of the last octave.
  static constexpr size_t kNumBuckets = (64 - kSubBits) * kSub + kSub;

  /// Index of the bucket holding `v`. Pure bit math; pinned by tests.
  static size_t BucketIndex(uint64_t v);

  /// Smallest value mapping to bucket `index` (inclusive lower edge).
  static uint64_t BucketLowerBound(size_t index);

  Histogram() { Reset(); }

  /// Records one observation. Thread-safe; never loses updates.
  void Record(uint64_t value);

  /// Number of recorded observations.
  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;  ///< smallest recorded value (0 when empty)
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Value at quantile `q` in [0, 1]: nearest-rank walk over the buckets
  /// with linear interpolation inside the landing bucket, clamped to the
  /// recorded [Min(), Max()]. Exact when every observation shares one
  /// bucket; otherwise within one bucket width (<= 12.5% relative).
  double Percentile(double q) const;

  /// Drops all observations. Not atomic with respect to concurrent
  /// Record() calls; quiesce writers first.
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets];
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;  ///< UINT64_MAX when empty
  std::atomic<uint64_t> max_;
};

/// A set of named counters and histograms. One process-wide instance
/// (Global()) backs always-on serving metrics; tests may build local
/// instances and point a QueryContext at them.
///
/// Counters are sharded: each thread is assigned one of kNumShards
/// cacheline-aligned slot arrays, so concurrent increments from a thread
/// pool do not contend on one line. Reads sum every shard.
class MetricsRegistry {
 public:
  static constexpr uint32_t kNumShards = 16;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Disabled by default so un-instrumented
  /// binaries (micro benches) pay only the enabled() branch; the SQL layer
  /// and serving harnesses switch it on.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Adds `n` to counter `c` if the registry is enabled (one branch).
  void Add(Counter c, uint64_t n = 1) {
    if (!enabled()) return;
    AddUnchecked(c, n);
  }

  /// Adds without the enabled check — for callers already holding a
  /// live (enabled) registry pointer from QueryContext::live_metrics().
  void AddUnchecked(Counter c, uint64_t n = 1) {
    shards_[ShardIndex()]
        .slots[static_cast<uint32_t>(c)]
        .fetch_add(n, std::memory_order_relaxed);
  }

  /// Current value of counter `c` (sums all shards).
  uint64_t Value(Counter c) const;

  /// Records `nanos` into histogram `h` if enabled (one branch).
  void Record(Hist h, uint64_t value) {
    if (!enabled()) return;
    RecordUnchecked(h, value);
  }
  void RecordUnchecked(Hist h, uint64_t value) {
    hists_[static_cast<uint32_t>(h)].Record(value);
  }

  const Histogram& histogram(Hist h) const {
    return hists_[static_cast<uint32_t>(h)];
  }

  /// Zeroes every counter and histogram. Quiesce writers first (Record/
  /// Add are relaxed atomics the reset cannot exclude), but concurrent
  /// exports are safe: resets and exports serialize on snapshot_mu_, so
  /// an export never observes a half-zeroed registry.
  void ResetAll() VECDB_EXCLUDES(snapshot_mu_);

  /// Human-readable two-section table (counters, then histograms with
  /// count/p50/p95/p99/max). The `SHOW METRICS` statement returns this.
  std::string ExportTable() const VECDB_EXCLUDES(snapshot_mu_);

  /// Machine-readable JSON object {"counters": {...}, "histograms": {...}}
  /// for bench tooling.
  std::string ExportJson() const VECDB_EXCLUDES(snapshot_mu_);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> slots[static_cast<size_t>(Counter::kNumCounters)];
    Shard() {
      for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    }
  };

  /// Stable per-thread shard assignment (round-robin at first use).
  static uint32_t ShardIndex();

  std::atomic<bool> enabled_{false};
  Shard shards_[kNumShards];
  Histogram hists_[static_cast<size_t>(Hist::kNumHists)];
  /// Serializes whole-registry snapshots (ResetAll vs Export*). The hot
  /// write path (Add/Record) stays lock-free; this mutex only orders the
  /// rare control-plane operations against each other.
  mutable Mutex snapshot_mu_;
};

/// RAII latency scope over a (nullable) live registry pointer: null costs
/// one branch, mirroring ProfScope's contract with a null Profiler.
class LatencyScope {
 public:
  LatencyScope(MetricsRegistry* metrics, Hist hist)
      : metrics_(metrics), hist_(hist) {
    if (metrics_ != nullptr) start_ = NowNanos();
  }
  ~LatencyScope() {
    if (metrics_ != nullptr) {
      metrics_->RecordUnchecked(
          hist_, static_cast<uint64_t>(NowNanos() - start_));
    }
  }
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  MetricsRegistry* metrics_;
  Hist hist_;
  int64_t start_ = 0;
};

/// Per-query scratch counters engines accumulate with plain arithmetic in
/// their scan loops, then flush into the registry once per query (or once
/// per worker), keeping atomics off the innermost hot path.
struct SearchCounters {
  uint64_t buckets_probed = 0;
  uint64_t tuples_visited = 0;
  uint64_t heap_pushes = 0;
  uint64_t tombstones_skipped = 0;

  void MergeFrom(const SearchCounters& other) {
    buckets_probed += other.buckets_probed;
    tuples_visited += other.tuples_visited;
    heap_pushes += other.heap_pushes;
    tombstones_skipped += other.tombstones_skipped;
  }

  /// Flushes into `m` under the caller's engine-specific counter names
  /// (faiss.*, pase.*, ...). `m` must be a live (enabled) registry.
  void FlushTo(MetricsRegistry* m, Counter buckets, Counter tuples,
               Counter pushes, Counter tombstones) const {
    m->AddUnchecked(buckets, buckets_probed);
    m->AddUnchecked(tuples, tuples_visited);
    m->AddUnchecked(pushes, heap_pushes);
    m->AddUnchecked(tombstones, tombstones_skipped);
  }
};

}  // namespace vecdb::obs
