// SelectionVector: a dense bitmap over row positions, the currency of the
// filtered-search subsystem. The SQL executor evaluates a Predicate over
// the heap (or an AttributeStore) into one of these, and the three filter
// strategies consume it: pre-filter iterates its set bits, in-filter tests
// it inside bucket scans / graph expansion, post-filter tests it against
// amplified result lists. Word-packed so a test is one shift+mask and a
// popcount is word-at-a-time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vecdb::filter {

/// Fixed-size bitmap indexed by row position [0, size).
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  /// Marks position `pos` as selected. Out-of-range positions are ignored
  /// (the bitmap's universe is fixed at construction).
  void Set(size_t pos) {
    if (pos >= size_) return;
    words_[pos >> 6] |= uint64_t{1} << (pos & 63);
  }

  void Clear(size_t pos) {
    if (pos >= size_) return;
    words_[pos >> 6] &= ~(uint64_t{1} << (pos & 63));
  }

  /// True if `pos` is selected. Positions outside the universe read as not
  /// selected — a row the predicate never saw cannot match it.
  bool Test(size_t pos) const {
    if (pos >= size_) return false;
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Number of selected positions.
  size_t CountSet() const {
    size_t count = 0;
    for (uint64_t w : words_) count += static_cast<size_t>(__builtin_popcountll(w));
    return count;
  }

  /// Fraction of the universe selected, in [0, 1]; 0 for an empty universe.
  double Selectivity() const {
    return size_ == 0 ? 0.0
                      : static_cast<double>(CountSet()) /
                            static_cast<double>(size_);
  }

  /// Invokes `fn(pos)` for every selected position in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace vecdb::filter
