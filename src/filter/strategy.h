// Filter-strategy vocabulary and the selectivity-aware planner. The
// filter-agnostic PostgreSQL study (PAPERS.md) shows filtered-ANN cost is
// dominated by which of three strategies runs:
//
//   pre-filter   evaluate the predicate first, brute-force the survivors.
//                Optimal at low selectivity: the survivor set is smaller
//                than what any index traversal would visit.
//   in-filter    push the bitmap into the index traversal (bucket scans,
//                graph expansion) so non-matching tuples never enter the
//                heap. Optimal at mid selectivity: index pruning still
//                helps and the bitmap rarely starves the traversal.
//   post-filter  search with amplified k' = k / est_selectivity, drop
//                non-matching results, retry with doubled k' until k
//                survivors. Optimal near selectivity 1: amplification is
//                tiny and the index runs at full, unfiltered speed.
//
// ChooseStrategy picks by crossover thresholds on the estimated
// selectivity; docs/FILTERING.md tabulates the regimes. Header-only so the
// engine-neutral VectorIndex::FilteredSearch entry point can plan without
// a library dependency.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"

namespace vecdb::filter {

enum class FilterStrategy : uint8_t {
  kAuto,        ///< planner picks by estimated selectivity
  kPreFilter,   ///< predicate first, brute-force survivors
  kPostFilter,  ///< k-amplified search, filter results, retry on shortfall
  kInFilter,    ///< bitmap pushed into the index traversal
};

inline const char* StrategyName(FilterStrategy s) {
  switch (s) {
    case FilterStrategy::kAuto: return "auto";
    case FilterStrategy::kPreFilter: return "prefilter";
    case FilterStrategy::kPostFilter: return "postfilter";
    case FilterStrategy::kInFilter: return "infilter";
  }
  return "?";
}

/// Parses a user-supplied strategy name (the SQL
/// `OPTIONS (filter_strategy=...)` value).
inline Result<FilterStrategy> ParseStrategy(const std::string& name) {
  if (name == "auto") return FilterStrategy::kAuto;
  if (name == "prefilter") return FilterStrategy::kPreFilter;
  if (name == "postfilter") return FilterStrategy::kPostFilter;
  if (name == "infilter") return FilterStrategy::kInFilter;
  return Status::InvalidArgument(
      "unknown filter_strategy '" + name +
      "' (expected auto, prefilter, postfilter, or infilter)");
}

/// Planner knobs. The thresholds are the selectivity crossovers from the
/// filter-agnostic study's cost curves; sample_rows bounds the selectivity
/// probe the SQL layer runs over the heap.
struct PlannerConfig {
  double prefilter_threshold = 0.05;  ///< sel <= this -> pre-filter
  double infilter_threshold = 0.50;   ///< sel <= this -> in-filter
  size_t sample_rows = 256;           ///< rows sampled to estimate sel
};

/// Picks a strategy for an estimated selectivity. Also routes to
/// pre-filter whenever the estimated match count is within the requested
/// k: the brute-force survivor scan then visits no more tuples than the
/// result itself needs.
inline FilterStrategy ChooseStrategy(double est_selectivity, size_t k,
                                     size_t num_rows,
                                     const PlannerConfig& config = {}) {
  const double est_matches =
      est_selectivity * static_cast<double>(num_rows);
  if (est_selectivity <= config.prefilter_threshold ||
      est_matches <= static_cast<double>(k)) {
    return FilterStrategy::kPreFilter;
  }
  if (est_selectivity <= config.infilter_threshold) {
    return FilterStrategy::kInFilter;
  }
  return FilterStrategy::kPostFilter;
}

}  // namespace vecdb::filter
