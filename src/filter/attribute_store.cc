#include "filter/attribute_store.h"

namespace vecdb::filter {

SelectionVector AttributeStore::BuildSelection(
    const BoundPredicate& pred) const {
  const size_t n = num_rows();
  SelectionVector out(n);
  for (size_t row = 0; row < n; ++row) {
    if (pred.Eval(Row(row))) out.Set(row);
  }
  return out;
}

double AttributeStore::EstimateSelectivity(const BoundPredicate& pred,
                                           size_t sample_rows) const {
  const size_t n = num_rows();
  if (n == 0 || sample_rows == 0) return 0.0;
  const size_t stride = n <= sample_rows ? 1 : (n + sample_rows - 1) / sample_rows;
  size_t sampled = 0;
  size_t matched = 0;
  for (size_t row = 0; row < n; row += stride) {
    ++sampled;
    if (pred.Eval(Row(row))) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(sampled);
}

}  // namespace vecdb::filter
