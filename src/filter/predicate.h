// Typed predicate trees over scalar attribute columns — the WHERE clause of
// a filtered vector search. A Predicate is a parse-time tree keyed by column
// name; Bind() resolves the names against a table's column list into a
// BoundPredicate whose Eval() runs over a flat int64 row image. The split
// mirrors PostgreSQL's parse-tree / plan-qual distinction: parse once, bind
// per table, evaluate per tuple.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace vecdb::filter {

/// Comparison operators on int64 attribute values.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// SQL spelling of `op` ("=", "!=", "<", "<=", ">", ">=").
const char* CmpOpName(CmpOp op);

/// One node of a predicate tree. Leaves are kCompare (`col op value`) or
/// kIn (`col IN (v, ...)`); interior nodes are kAnd / kOr over two children.
struct Predicate {
  enum class Kind : uint8_t { kCompare, kAnd, kOr, kIn };

  Kind kind = Kind::kCompare;
  std::string column;                ///< kCompare / kIn: attribute name
  CmpOp op = CmpOp::kEq;             ///< kCompare
  int64_t value = 0;                 ///< kCompare
  std::vector<int64_t> in_values;    ///< kIn
  std::unique_ptr<Predicate> lhs;    ///< kAnd / kOr
  std::unique_ptr<Predicate> rhs;    ///< kAnd / kOr

  static std::unique_ptr<Predicate> Compare(std::string column, CmpOp op,
                                            int64_t value);
  static std::unique_ptr<Predicate> In(std::string column,
                                       std::vector<int64_t> values);
  static std::unique_ptr<Predicate> And(std::unique_ptr<Predicate> lhs,
                                        std::unique_ptr<Predicate> rhs);
  static std::unique_ptr<Predicate> Or(std::unique_ptr<Predicate> lhs,
                                       std::unique_ptr<Predicate> rhs);

  /// Deep copy (statements holding predicates are copied into catalogs).
  std::unique_ptr<Predicate> Clone() const;
};

/// SQL rendering, fully parenthesized at interior nodes:
/// "(price < 50 AND tag IN (1, 3))".
std::string ToString(const Predicate& pred);

/// A predicate with column names resolved to row-image offsets. Row images
/// are flat int64 arrays laid out in the bound column order (for a SQL
/// table: id first, then the attribute columns in declaration order).
class BoundPredicate {
 public:
  /// True if the row satisfies the predicate. `row` must hold one value
  /// per bound column.
  bool Eval(const int64_t* row) const { return EvalNode(root_, row); }

  /// One flattened tree node; public so Bind()'s helpers can build the
  /// node array, but only Bind() constructs a usable BoundPredicate.
  struct Node {
    Predicate::Kind kind = Predicate::Kind::kCompare;
    int column = -1;  ///< row-image offset for kCompare / kIn
    CmpOp op = CmpOp::kEq;
    int64_t value = 0;
    std::vector<int64_t> in_values;  ///< sorted, for binary search
    int lhs = -1;
    int rhs = -1;
  };

 private:
  friend Result<BoundPredicate> Bind(const Predicate& pred,
                                     const std::vector<std::string>& columns);

  bool EvalNode(int node, const int64_t* row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Resolves every column reference in `pred` against `columns` (the row
/// image layout). Unknown columns are an InvalidArgument error.
Result<BoundPredicate> Bind(const Predicate& pred,
                            const std::vector<std::string>& columns);

}  // namespace vecdb::filter
