// In-memory attribute store: the specialized-engine counterpart of keeping
// scalar columns in heap pages. Rows are flat int64 images appended in
// position order, so position i here lines up with vector i in an index
// built over the same load order. The SQL layer uses the heap as the
// source of truth and this store as the fast path for predicate
// evaluation and selectivity sampling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "filter/predicate.h"
#include "filter/selection.h"

namespace vecdb::filter {

/// Append-only row-major table of int64 attribute values.
class AttributeStore {
 public:
  /// `columns` is the row-image layout (for SQL tables: id first, then
  /// attribute columns in declaration order).
  explicit AttributeStore(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_rows() const {
    return columns_.empty() ? 0 : values_.size() / columns_.size();
  }

  /// Appends one row; `values` must hold columns().size() entries.
  void AppendRow(const int64_t* values) {
    values_.insert(values_.end(), values, values + columns_.size());
  }

  /// The row image at `row` (valid until the next AppendRow).
  const int64_t* Row(size_t row) const {
    return values_.data() + row * columns_.size();
  }

  /// Binds `pred` against this store's column layout.
  Result<BoundPredicate> BindPredicate(const Predicate& pred) const {
    return Bind(pred, columns_);
  }

  /// Evaluates `pred` over every row into a position bitmap (exact).
  SelectionVector BuildSelection(const BoundPredicate& pred) const;

  /// Estimated selectivity from a strided sample of up to `sample_rows`
  /// rows — the planner's probe. Deterministic (no RNG): row 0, then every
  /// ceil(n / sample_rows)-th row.
  double EstimateSelectivity(const BoundPredicate& pred,
                             size_t sample_rows) const;

 private:
  std::vector<std::string> columns_;
  std::vector<int64_t> values_;  ///< row-major, stride columns_.size()
};

}  // namespace vecdb::filter
