#include "filter/predicate.h"

#include <algorithm>

namespace vecdb::filter {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::unique_ptr<Predicate> Predicate::Compare(std::string column, CmpOp op,
                                              int64_t value) {
  auto out = std::make_unique<Predicate>();
  out->kind = Kind::kCompare;
  out->column = std::move(column);
  out->op = op;
  out->value = value;
  return out;
}

std::unique_ptr<Predicate> Predicate::In(std::string column,
                                         std::vector<int64_t> values) {
  auto out = std::make_unique<Predicate>();
  out->kind = Kind::kIn;
  out->column = std::move(column);
  out->in_values = std::move(values);
  return out;
}

std::unique_ptr<Predicate> Predicate::And(std::unique_ptr<Predicate> lhs,
                                          std::unique_ptr<Predicate> rhs) {
  auto out = std::make_unique<Predicate>();
  out->kind = Kind::kAnd;
  out->lhs = std::move(lhs);
  out->rhs = std::move(rhs);
  return out;
}

std::unique_ptr<Predicate> Predicate::Or(std::unique_ptr<Predicate> lhs,
                                         std::unique_ptr<Predicate> rhs) {
  auto out = std::make_unique<Predicate>();
  out->kind = Kind::kOr;
  out->lhs = std::move(lhs);
  out->rhs = std::move(rhs);
  return out;
}

std::unique_ptr<Predicate> Predicate::Clone() const {
  auto out = std::make_unique<Predicate>();
  out->kind = kind;
  out->column = column;
  out->op = op;
  out->value = value;
  out->in_values = in_values;
  if (lhs != nullptr) out->lhs = lhs->Clone();
  if (rhs != nullptr) out->rhs = rhs->Clone();
  return out;
}

std::string ToString(const Predicate& pred) {
  switch (pred.kind) {
    case Predicate::Kind::kCompare:
      return pred.column + " " + CmpOpName(pred.op) + " " +
             std::to_string(pred.value);
    case Predicate::Kind::kIn: {
      std::string out = pred.column + " IN (";
      for (size_t i = 0; i < pred.in_values.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(pred.in_values[i]);
      }
      return out + ")";
    }
    case Predicate::Kind::kAnd:
      return "(" + ToString(*pred.lhs) + " AND " + ToString(*pred.rhs) + ")";
    case Predicate::Kind::kOr:
      return "(" + ToString(*pred.lhs) + " OR " + ToString(*pred.rhs) + ")";
  }
  return "?";
}

bool BoundPredicate::EvalNode(int node, const int64_t* row) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  switch (n.kind) {
    case Predicate::Kind::kCompare: {
      const int64_t v = row[n.column];
      switch (n.op) {
        case CmpOp::kEq: return v == n.value;
        case CmpOp::kNe: return v != n.value;
        case CmpOp::kLt: return v < n.value;
        case CmpOp::kLe: return v <= n.value;
        case CmpOp::kGt: return v > n.value;
        case CmpOp::kGe: return v >= n.value;
      }
      return false;
    }
    case Predicate::Kind::kIn:
      return std::binary_search(n.in_values.begin(), n.in_values.end(),
                                row[n.column]);
    case Predicate::Kind::kAnd:
      return EvalNode(n.lhs, row) && EvalNode(n.rhs, row);
    case Predicate::Kind::kOr:
      return EvalNode(n.lhs, row) || EvalNode(n.rhs, row);
  }
  return false;
}

namespace {

Result<int> BindNode(const Predicate& pred,
                     const std::vector<std::string>& columns,
                     std::vector<BoundPredicate::Node>* nodes);

Result<int> ResolveColumn(const std::string& name,
                          const std::vector<std::string>& columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return Status::InvalidArgument("predicate references unknown column '" +
                                 name + "'");
}

Result<int> BindNode(const Predicate& pred,
                     const std::vector<std::string>& columns,
                     std::vector<BoundPredicate::Node>* nodes) {
  BoundPredicate::Node node;
  node.kind = pred.kind;
  switch (pred.kind) {
    case Predicate::Kind::kCompare: {
      VECDB_ASSIGN_OR_RETURN(node.column, ResolveColumn(pred.column, columns));
      node.op = pred.op;
      node.value = pred.value;
      break;
    }
    case Predicate::Kind::kIn: {
      if (pred.in_values.empty()) {
        return Status::InvalidArgument("IN list for column '" + pred.column +
                                       "' is empty");
      }
      VECDB_ASSIGN_OR_RETURN(node.column, ResolveColumn(pred.column, columns));
      node.in_values = pred.in_values;
      std::sort(node.in_values.begin(), node.in_values.end());
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      if (pred.lhs == nullptr || pred.rhs == nullptr) {
        return Status::InvalidArgument("AND/OR predicate missing a child");
      }
      VECDB_ASSIGN_OR_RETURN(node.lhs, BindNode(*pred.lhs, columns, nodes));
      VECDB_ASSIGN_OR_RETURN(node.rhs, BindNode(*pred.rhs, columns, nodes));
      break;
    }
  }
  nodes->push_back(std::move(node));
  return static_cast<int>(nodes->size() - 1);
}

}  // namespace

Result<BoundPredicate> Bind(const Predicate& pred,
                            const std::vector<std::string>& columns) {
  BoundPredicate out;
  VECDB_ASSIGN_OR_RETURN(out.root_, BindNode(pred, columns, &out.nodes_));
  return out;
}

}  // namespace vecdb::filter
