// Specialized-engine IVF_PQ (Faiss analog): coarse K-means quantizer plus
// per-bucket product-quantized codes. Exercises RC#1 (SGEMM in training and
// assignment) and RC#7 (the optimized precomputed distance table).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "obs/metrics.h"
#include "quantizer/pq.h"
#include "topk/heaps.h"

namespace vecdb::faisslike {

/// Construction knobs for IvfPqIndex. Names follow the paper's Table II.
struct IvfPqOptions {
  uint32_t num_clusters = 256;  ///< c — coarse codebook size
  uint32_t pq_m = 16;           ///< m — sub-vectors per code
  uint32_t pq_codes = 256;      ///< c_pq — codewords per subspace
  double sample_ratio = 0.01;   ///< sr
  int train_iterations = 10;
  bool use_sgemm = true;        ///< RC#1 toggle (Fig 6 disables this)
  bool optimized_table = true;  ///< RC#7: Faiss-style precomputed table
  /// Re-ranking (Faiss IndexRefineFlat): keep the raw vectors and rescore
  /// the top `refine_factor * k` ADC candidates with exact distances.
  /// 0 disables refinement and raw-vector storage.
  uint32_t refine_factor = 0;
  uint64_t seed = 42;
  int num_threads = 1;
  Profiler* profiler = nullptr;
};

/// Inverted file with product-quantized residual-free codes.
class IvfPqIndex final : public VectorIndex {
 public:
  IvfPqIndex(uint32_t dim, IvfPqOptions options)
      : dim_(dim), options_(options) {}

  /// Trains the coarse codebook and the product quantizer on a sample.
  Status Train(const float* data, size_t n);

  /// Encodes and buckets vectors; ids default to the running count.
  Status AddBatch(const float* data, size_t n, const int64_t* ids = nullptr);

  Status Build(const float* data, size_t n) override;

  /// Incremental insert (PASE's aminsert counterpart).
  Status Insert(const float* vec) override { return AddBatch(vec, 1); }

  /// Tombstones a row id (filtered at search, reclaimed on rebuild);
  /// NotFound if the id was never indexed or is already deleted.
  Status Delete(int64_t id) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  /// Batched multi-query search: one SGEMM-decomposed distance batch against
  /// the coarse codebook selects buckets for all `nq` queries (RC#1), then
  /// per-query ADC tables and bucket scans run with inter-query thread-pool
  /// parallelism over per-worker k-heaps (RC#3).
  Result<std::vector<std::vector<Neighbor>>> SearchBatch(
      const float* queries, size_t nq,
      const SearchParams& params) const override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  /// Persists the built index (codebooks + coded buckets) to a file.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save.
  static Result<IvfPqIndex> Load(const std::string& path);

  const ProductQuantizer* pq() const { return pq_ ? &*pq_ : nullptr; }
  uint32_t num_clusters() const { return num_clusters_; }
  /// Construction options (round-tripped by Save/Load since format v2).
  const IvfPqOptions& options() const { return options_; }

 protected:
  /// Pre-filter: ADC-scans only the bitmap's survivors across all buckets
  /// (one precomputed table), then refines exactly like Search.
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// In-filter: nprobe bucket selection with the bitmap gating each code
  /// before its ADC distance is computed; refinement unchanged.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  void ScanBucket(uint32_t bucket, const float* table, KMaxHeap& heap,
                  Profiler* profiler, obs::SearchCounters* counters) const;

  /// ScanBucket with the in-filter bitmap gate; `bitmap_probes` counts
  /// selection tests for the filter.bitmap_probes counter.
  void ScanBucketFiltered(uint32_t bucket, const float* table,
                          const filter::SelectionVector& selection,
                          KMaxHeap& heap, obs::SearchCounters* counters,
                          uint64_t* bitmap_probes) const;

  /// Rescores ADC candidates against stored raw vectors (refine_factor);
  /// identity when refinement is off.
  std::vector<Neighbor> RefineExact(const float* query,
                                    std::vector<Neighbor> adc,
                                    size_t k) const;
  std::vector<uint32_t> SelectBuckets(const float* query,
                                      uint32_t nprobe) const;

  /// True if `id` is currently stored in some bucket (live or tombstoned).
  bool ContainsId(int64_t id) const;

  /// Recomputes the cached squared coarse-centroid norms used by the
  /// batched SGEMM bucket selection.
  void RefreshCentroidNorms();

  uint32_t dim_;
  IvfPqOptions options_;
  uint32_t num_clusters_ = 0;
  AlignedFloats centroids_;
  AlignedFloats centroid_norms_;  ///< per-centroid squared L2 norms
  std::optional<ProductQuantizer> pq_;
  std::vector<std::vector<uint8_t>> bucket_codes_;
  std::vector<std::vector<int64_t>> bucket_ids_;
  /// Raw vectors for re-ranking, kept only when refine_factor > 0.
  AlignedFloats refine_vectors_;
  std::unordered_map<int64_t, size_t> refine_pos_;  ///< id -> row
  size_t num_vectors_ = 0;
  TombstoneSet tombstones_;
};

}  // namespace vecdb::faisslike
