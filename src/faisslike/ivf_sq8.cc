#include "faisslike/ivf_sq8.h"

#include "clustering/kmeans.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::faisslike {

Status IvfSq8Index::Train(const float* data, size_t n) {
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kFaissStyle;
  km.use_sgemm = options_.use_sgemm;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  VECDB_ASSIGN_OR_RETURN(ScalarQuantizer8 sq,
                         ScalarQuantizer8::Train(data, n, dim_));
  sq_.emplace(std::move(sq));
  bucket_codes_.assign(num_clusters_, {});
  bucket_ids_.assign(num_clusters_, {});
  num_vectors_ = 0;
  tombstones_.Clear();
  return Status::OK();
}

bool IvfSq8Index::ContainsId(int64_t id) const {
  for (const auto& ids : bucket_ids_) {
    for (int64_t stored : ids) {
      if (stored == id) return true;
    }
  }
  return false;
}

Status IvfSq8Index::Delete(int64_t id) {
  if (!ContainsId(id)) {
    return Status::NotFound("IvfSq8::Delete: id " + std::to_string(id) +
                            " not indexed");
  }
  return tombstones_.Mark(id);
}

Status IvfSq8Index::AddBatch(const float* data, size_t n,
                             const int64_t* ids) {
  if (!sq_) return Status::InvalidArgument("IvfSq8::AddBatch: not trained");
  if (data == nullptr && n > 0) {
    return Status::InvalidArgument("IvfSq8::AddBatch: null data");
  }
  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  options_.use_sgemm, assign.data(), nullptr, nullptr,
                  options_.profiler);
  std::vector<uint8_t> code(sq_->code_size());
  for (size_t i = 0; i < n; ++i) {
    sq_->Encode(data + i * dim_, code.data());
    const uint32_t b = assign[i];
    bucket_codes_[b].insert(bucket_codes_[b].end(), code.begin(), code.end());
    bucket_ids_[b].push_back(ids != nullptr
                                 ? ids[i]
                                 : static_cast<int64_t>(num_vectors_ + i));
  }
  num_vectors_ += n;
  return Status::OK();
}

Status IvfSq8Index::Build(const float* data, size_t n) {
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("IvfSq8::Build: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("IvfSq8::Build: c > n");
  }
  build_stats_ = {};
  Timer timer;
  VECDB_RETURN_NOT_OK(Train(data, n));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();
  VECDB_RETURN_NOT_OK(AddBatch(data, n));
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kFaissBuilds);
  registry.Record(obs::Hist::kFaissBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

std::vector<uint32_t> IvfSq8Index::SelectBuckets(const float* query,
                                                 uint32_t nprobe) const {
  KMaxHeap heap(nprobe);
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    heap.Push(L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                    dim_),
              c);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

Result<std::vector<Neighbor>> IvfSq8Index::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("IvfSq8::Search: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "IvfSq8::Search"));
  if (!sq_) return Status::InvalidArgument("IvfSq8::Search: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  auto probes = SelectBuckets(query, nprobe);

  obs::SearchCounters counters;
  KMaxHeap heap(params.k);
  for (uint32_t b : probes) {
    const auto& ids = bucket_ids_[b];
    const uint8_t* codes = bucket_codes_[b].data();
    ProfScope scope(ctx.profiler, "sq8_scan");
    size_t skipped = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (tombstones_.Contains(ids[i])) {
        ++skipped;
        continue;
      }
      heap.Push(sq_->DistanceToCode(query, codes + i * dim_), ids[i]);
    }
    counters.buckets_probed += 1;
    counters.tuples_visited += ids.size();
    counters.heap_pushes += ids.size() - skipped;
    counters.tombstones_skipped += skipped;
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kFaissQueries);
    counters.FlushTo(metrics, obs::Counter::kFaissBucketsProbed,
                     obs::Counter::kFaissTuplesVisited,
                     obs::Counter::kFaissHeapPushes,
                     obs::Counter::kFaissTombstonesSkipped);
  }
  return heap.TakeSorted();
}

size_t IvfSq8Index::SizeBytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  bytes += 2 * static_cast<size_t>(dim_) * sizeof(float);  // vmin/vscale
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    bytes += bucket_codes_[b].size();
    bytes += bucket_ids_[b].size() * sizeof(int64_t);
  }
  return bytes;
}

std::string IvfSq8Index::Describe() const {
  return "faisslike::IVF_SQ8 dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_);
}

}  // namespace vecdb::faisslike
