#include "faisslike/ivf_sq8.h"

#include "clustering/kmeans.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::faisslike {
namespace {

void FlushSearchCounters(obs::MetricsRegistry* m,
                         const obs::SearchCounters& sc) {
  sc.FlushTo(m, obs::Counter::kFaissBucketsProbed,
             obs::Counter::kFaissTuplesVisited,
             obs::Counter::kFaissHeapPushes,
             obs::Counter::kFaissTombstonesSkipped);
}

/// Per-query fast-scan accounting, flushed once per search like
/// SearchCounters (the sharded atomics stay off the per-code path).
struct FastScanCounters {
  uint64_t blocks = 0;
  uint64_t codes = 0;

  void FlushTo(obs::MetricsRegistry* m) const {
    if (m == nullptr) return;
    m->AddUnchecked(obs::Counter::kKernelSq8Blocks, blocks);
    m->AddUnchecked(obs::Counter::kKernelSq8Codes, codes);
  }
};

}  // namespace

Status IvfSq8Index::Train(const float* data, size_t n) {
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kFaissStyle;
  km.use_sgemm = options_.use_sgemm;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  VECDB_ASSIGN_OR_RETURN(ScalarQuantizer8 sq,
                         ScalarQuantizer8::Train(data, n, dim_));
  sq_.emplace(std::move(sq));
  buckets_ = std::vector<Sq8CodeStore>(num_clusters_);
  for (auto& bucket : buckets_) bucket.Reset(sq_->code_size());
  num_vectors_ = 0;
  tombstones_.Clear();
  return Status::OK();
}

bool IvfSq8Index::ContainsId(int64_t id) const {
  for (const auto& bucket : buckets_) {
    for (int64_t stored : bucket.ids()) {
      if (stored == id) return true;
    }
  }
  return false;
}

Status IvfSq8Index::Delete(int64_t id) {
  if (!ContainsId(id)) {
    return Status::NotFound("IvfSq8::Delete: id " + std::to_string(id) +
                            " not indexed");
  }
  return tombstones_.Mark(id);
}

Status IvfSq8Index::AddBatch(const float* data, size_t n,
                             const int64_t* ids) {
  if (!sq_) return Status::InvalidArgument("IvfSq8::AddBatch: not trained");
  if (data == nullptr && n > 0) {
    return Status::InvalidArgument("IvfSq8::AddBatch: null data");
  }
  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  options_.use_sgemm, assign.data(), nullptr, nullptr,
                  options_.profiler);
  std::vector<uint8_t> code(sq_->code_size());
  for (size_t i = 0; i < n; ++i) {
    sq_->Encode(data + i * dim_, code.data());
    buckets_[assign[i]].Append(
        code.data(),
        ids != nullptr ? ids[i] : static_cast<int64_t>(num_vectors_ + i));
  }
  num_vectors_ += n;
  return Status::OK();
}

Status IvfSq8Index::Build(const float* data, size_t n) {
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("IvfSq8::Build: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("IvfSq8::Build: c > n");
  }
  build_stats_ = {};
  Timer timer;
  VECDB_RETURN_NOT_OK(Train(data, n));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();
  VECDB_RETURN_NOT_OK(AddBatch(data, n));
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kFaissBuilds);
  registry.Record(obs::Hist::kFaissBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

std::vector<uint32_t> IvfSq8Index::SelectBuckets(const float* query,
                                                 uint32_t nprobe) const {
  KMaxHeap heap(nprobe);
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    heap.Push(L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                    dim_),
              c);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

Result<std::vector<Neighbor>> IvfSq8Index::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("IvfSq8::Search: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "IvfSq8::Search"));
  if (!sq_) return Status::InvalidArgument("IvfSq8::Search: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  auto probes = SelectBuckets(query, nprobe);

  // Expand the query once; every probed bucket reuses the same qadj.
  const Sq8Query prep = sq_->PrepareQuery(query);

  obs::SearchCounters counters;
  FastScanCounters fast_scan;
  KMaxHeap heap(params.k);
  thread_local std::vector<float> dists;
  for (uint32_t b : probes) {
    const Sq8CodeStore& bucket = buckets_[b];
    counters.buckets_probed += 1;
    if (bucket.empty()) continue;
    // Like IvfFlat::ScanBucket: all in-bucket distances in one batched
    // kernel call, then a heap pass.
    dists.resize(bucket.size());
    {
      ProfScope scope(ctx.profiler, "sq8_scan");
      sq_->DistanceToCodesBatch(prep, bucket.codes(), bucket.size(),
                                dists.data());
    }
    fast_scan.blocks += bucket.num_blocks();
    fast_scan.codes += bucket.size();
    const auto& ids = bucket.ids();
    size_t skipped = 0;
    {
      ProfScope scope(ctx.profiler, "MinHeap");
      for (size_t i = 0; i < ids.size(); ++i) {
        if (tombstones_.Contains(ids[i])) {
          ++skipped;
          continue;
        }
        heap.Push(dists[i], ids[i]);
      }
    }
    counters.tuples_visited += ids.size();
    counters.heap_pushes += ids.size() - skipped;
    counters.tombstones_skipped += skipped;
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kFaissQueries);
    FlushSearchCounters(metrics, counters);
    fast_scan.FlushTo(metrics);
  }
  return heap.TakeSorted();
}

Result<std::vector<Neighbor>> IvfSq8Index::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "IvfSq8::PreFilterSearch"));
  if (!sq_) {
    return Status::InvalidArgument("IvfSq8::PreFilterSearch: not built");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  // Gather pointers to the surviving codes, then fast-scan the predicate's
  // output with one gather-kernel call — no code bytes are copied.
  std::vector<const uint8_t*> gathered;
  std::vector<int64_t> gathered_ids;
  obs::SearchCounters counters;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    const Sq8CodeStore& bucket = buckets_[b];
    const auto& ids = bucket.ids();
    for (size_t i = 0; i < ids.size(); ++i) {
      const int64_t id = ids[i];
      if (id < 0 || !selection.Test(static_cast<size_t>(id))) continue;
      if (tombstones_.Contains(id)) {
        ++counters.tombstones_skipped;
        continue;
      }
      gathered.push_back(bucket.code_at(i));
      gathered_ids.push_back(id);
    }
  }
  KMaxHeap heap(params.k);
  FastScanCounters fast_scan;
  if (!gathered_ids.empty()) {
    const Sq8Query prep = sq_->PrepareQuery(query);
    std::vector<float> dists(gathered_ids.size());
    sq_->DistanceToCodesGather(prep, gathered.data(), gathered.size(),
                               dists.data());
    fast_scan.blocks += (gathered.size() + Sq8CodeStore::kBlockCodes - 1) /
                        Sq8CodeStore::kBlockCodes;
    fast_scan.codes += gathered.size();
    for (size_t i = 0; i < gathered_ids.size(); ++i) {
      heap.Push(dists[i], gathered_ids[i]);
    }
    counters.tuples_visited += gathered_ids.size();
    counters.heap_pushes += gathered_ids.size();
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    fast_scan.FlushTo(metrics);
  }
  return heap.TakeSorted();
}

Result<std::vector<Neighbor>> IvfSq8Index::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kIvf,
                                           "IvfSq8::InFilterSearch"));
  if (!sq_) {
    return Status::InvalidArgument("IvfSq8::InFilterSearch: not built");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  const std::vector<uint32_t> probes = SelectBuckets(query, nprobe);
  const Sq8Query prep = sq_->PrepareQuery(query);

  obs::SearchCounters counters;
  FastScanCounters fast_scan;
  uint64_t bitmap_probes = 0;
  KMaxHeap heap(params.k);
  thread_local std::vector<const uint8_t*> selected;
  thread_local std::vector<int64_t> selected_ids;
  thread_local std::vector<float> dists;
  for (uint32_t b : probes) {
    const Sq8CodeStore& bucket = buckets_[b];
    counters.buckets_probed += 1;
    const auto& ids = bucket.ids();
    selected.clear();
    selected_ids.clear();
    size_t skipped = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      const int64_t id = ids[i];
      ++bitmap_probes;
      if (id < 0 || !selection.Test(static_cast<size_t>(id))) continue;
      if (tombstones_.Contains(id)) {
        ++skipped;
        continue;
      }
      selected.push_back(bucket.code_at(i));
      selected_ids.push_back(id);
    }
    if (!selected.empty()) {
      dists.resize(selected.size());
      sq_->DistanceToCodesGather(prep, selected.data(), selected.size(),
                                 dists.data());
      fast_scan.blocks += (selected.size() + Sq8CodeStore::kBlockCodes - 1) /
                          Sq8CodeStore::kBlockCodes;
      fast_scan.codes += selected.size();
      for (size_t i = 0; i < selected_ids.size(); ++i) {
        heap.Push(dists[i], selected_ids[i]);
      }
    }
    counters.tuples_visited += selected.size();
    counters.heap_pushes += selected.size();
    counters.tombstones_skipped += skipped;
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    fast_scan.FlushTo(metrics);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return heap.TakeSorted();
}

size_t IvfSq8Index::SizeBytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  bytes += 2 * static_cast<size_t>(dim_) * sizeof(float);  // vmin/vscale
  for (const auto& bucket : buckets_) bytes += bucket.MemoryBytes();
  return bytes;
}

std::string IvfSq8Index::Describe() const {
  return "faisslike::IVF_SQ8 dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_);
}

}  // namespace vecdb::faisslike
