#include "faisslike/flat_index.h"

#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"
#include "topk/heaps.h"

namespace vecdb::faisslike {

Status FlatIndex::Build(const float* data, size_t n) {
  if (data == nullptr && n > 0) {
    return Status::InvalidArgument("FlatIndex::Build: null data");
  }
  Timer timer;
  vectors_.Resize(0);
  ids_.clear();
  vectors_.Append(data, n * dim_);
  ids_.reserve(n);
  for (size_t i = 0; i < n; ++i) ids_.push_back(static_cast<int64_t>(i));
  build_stats_ = {};
  build_stats_.add_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status FlatIndex::Add(const float* vec, int64_t id) {
  if (vec == nullptr) return Status::InvalidArgument("FlatIndex::Add: null");
  vectors_.Append(vec, dim_);
  ids_.push_back(id);
  return Status::OK();
}

Status FlatIndex::Delete(int64_t id) {
  bool stored = false;
  for (int64_t existing : ids_) {
    if (existing == id) {
      stored = true;
      break;
    }
  }
  if (!stored) {
    return Status::NotFound("FlatIndex::Delete: id " + std::to_string(id) +
                            " not indexed");
  }
  return tombstones_.Mark(id);
}

Result<std::vector<Neighbor>> FlatIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("FlatIndex::Search: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kFlat, "FlatIndex::Search"));
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  KMaxHeap heap(params.k);
  size_t skipped = 0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (tombstones_.Contains(ids_[i])) {
      ++skipped;
      continue;
    }
    const float dist =
        Distance(metric_, query, vectors_.data() + i * dim_, dim_);
    heap.Push(dist, ids_[i]);
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kFaissQueries);
    metrics->AddUnchecked(obs::Counter::kFaissTuplesVisited, ids_.size());
    metrics->AddUnchecked(obs::Counter::kFaissHeapPushes,
                          ids_.size() - skipped);
    metrics->AddUnchecked(obs::Counter::kFaissTombstonesSkipped, skipped);
  }
  return heap.TakeSorted();
}

std::string FlatIndex::Describe() const {
  return "faisslike::FLAT dim=" + std::to_string(dim_) + " metric=" +
         std::string(MetricName(metric_));
}

}  // namespace vecdb::faisslike
