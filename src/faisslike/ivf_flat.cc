#include "faisslike/ivf_flat.h"

#include <cstring>

#include "common/check.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "distance/sgemm.h"
#include "obs/metrics.h"

namespace vecdb::faisslike {
namespace {

void FlushSearchCounters(obs::MetricsRegistry* m,
                         const obs::SearchCounters& sc) {
  sc.FlushTo(m, obs::Counter::kFaissBucketsProbed,
             obs::Counter::kFaissTuplesVisited,
             obs::Counter::kFaissHeapPushes,
             obs::Counter::kFaissTombstonesSkipped);
}

}  // namespace

Status IvfFlatIndex::Train(const float* data, size_t n) {
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kFaissStyle;
  km.use_sgemm = options_.use_sgemm;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  return SetCentroids(model.centroids.data(), model.num_clusters);
}

Status IvfFlatIndex::SetCentroids(const float* centroids,
                                  uint32_t num_clusters) {
  if (centroids == nullptr || num_clusters == 0) {
    return Status::InvalidArgument("IvfFlat::SetCentroids: empty codebook");
  }
  num_clusters_ = num_clusters;
  centroids_.Resize(0);
  centroids_.Append(centroids, static_cast<size_t>(num_clusters) * dim_);
  bucket_vecs_ = std::vector<AlignedFloats>(num_clusters);
  bucket_ids_.assign(num_clusters, {});
  num_vectors_ = 0;
  tombstones_.Clear();
  RefreshCentroidNorms();
  return Status::OK();
}

void IvfFlatIndex::RefreshCentroidNorms() {
  centroid_norms_.Resize(num_clusters_);
  RowNormsSqr(centroids_.data(), num_clusters_, dim_, centroid_norms_.data());
}

bool IvfFlatIndex::ContainsId(int64_t id) const {
  for (const auto& ids : bucket_ids_) {
    for (int64_t stored : ids) {
      if (stored == id) return true;
    }
  }
  return false;
}

Status IvfFlatIndex::Delete(int64_t id) {
  if (!ContainsId(id)) {
    return Status::NotFound("IvfFlat::Delete: id " + std::to_string(id) +
                            " not indexed");
  }
  return tombstones_.Mark(id);
}

Status IvfFlatIndex::AddBatch(const float* data, size_t n,
                              const int64_t* ids) {
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("IvfFlat::AddBatch: index not trained");
  }
  if (data == nullptr && n > 0) {
    return Status::InvalidArgument("IvfFlat::AddBatch: null data");
  }
  std::vector<uint32_t> assign(n);

  if (options_.use_sgemm) {
    // Faiss delegates assignment to one big SGEMM-decomposed batch; model
    // it as a serial (BLAS-internal) section for the scaling accounting.
    CpuTimer timer;
    AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                    /*use_sgemm=*/true, assign.data(), nullptr, nullptr,
                    options_.profiler);
    build_stats_.accounting.serial_nanos += timer.ElapsedNanos();
  } else if (options_.num_threads > 1) {
    ThreadPool pool(options_.num_threads);
    auto& acct = build_stats_.accounting;
    if (acct.worker_busy_nanos.size() !=
        static_cast<size_t>(options_.num_threads)) {
      acct.Reset(options_.num_threads);
    }
    pool.ParallelFor(n, [&](int worker, size_t begin, size_t end) {
      CpuTimer timer;
      AssignToNearest(data + begin * dim_, end - begin, dim_,
                      centroids_.data(), num_clusters_, /*use_sgemm=*/false,
                      assign.data() + begin, nullptr, nullptr, nullptr);
      acct.worker_busy_nanos[worker] += timer.ElapsedNanos();
    });
  } else {
    CpuTimer timer;
    AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                    /*use_sgemm=*/false, assign.data(), nullptr, nullptr,
                    options_.profiler);
    if (!build_stats_.accounting.worker_busy_nanos.empty()) {
      build_stats_.accounting.worker_busy_nanos[0] += timer.ElapsedNanos();
    }
  }

  // Bucket append is a cheap serial pass in both systems.
  CpuTimer append_timer;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t b = assign[i];
    bucket_vecs_[b].Append(data + i * dim_, dim_);
    bucket_ids_[b].push_back(ids != nullptr
                                 ? ids[i]
                                 : static_cast<int64_t>(num_vectors_ + i));
  }
  build_stats_.accounting.serial_nanos += append_timer.ElapsedNanos();
  num_vectors_ += n;
  return Status::OK();
}

Status IvfFlatIndex::Build(const float* data, size_t n) {
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("IvfFlat::Build: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("IvfFlat::Build: c > n");
  }
  build_stats_ = {};
  build_stats_.accounting.Reset(options_.num_threads);
  Timer timer;
  VECDB_RETURN_NOT_OK(Train(data, n));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();
  VECDB_RETURN_NOT_OK(AddBatch(data, n));
  build_stats_.add_seconds = timer.ElapsedSeconds();
#ifndef NDEBUG
  CheckInvariants();
#endif
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kFaissBuilds);
  registry.Record(obs::Hist::kFaissBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

std::vector<uint32_t> IvfFlatIndex::SelectBuckets(const float* query,
                                                  uint32_t nprobe) const {
  KMaxHeap heap(nprobe);
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    heap.Push(L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                    dim_),
              c);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

void IvfFlatIndex::ScanBucket(uint32_t bucket, const float* query,
                              KMaxHeap& heap, Profiler* profiler,
                              obs::SearchCounters* counters) const {
  if (counters != nullptr) ++counters->buckets_probed;
  const auto& ids = bucket_ids_[bucket];
  if (ids.empty()) return;
  const float* vecs = bucket_vecs_[bucket].data();
  // Faiss computes all in-bucket distances, then updates the heap: two
  // tight loops, matching the Table V profile where fvec_L2sqr dominates.
  thread_local std::vector<float> dists;
  dists.resize(ids.size());
  {
    ProfScope scope(profiler, "fvec_L2sqr");
    for (size_t i = 0; i < ids.size(); ++i) {
      dists[i] = L2Sqr(query, vecs + i * dim_, dim_);
    }
  }
  size_t skipped = 0;
  {
    ProfScope scope(profiler, "MinHeap");
    for (size_t i = 0; i < ids.size(); ++i) {
      if (tombstones_.Contains(ids[i])) {
        ++skipped;
        continue;
      }
      heap.Push(dists[i], ids[i]);
    }
  }
  if (counters != nullptr) {
    counters->tuples_visited += ids.size();
    counters->heap_pushes += ids.size() - skipped;
    counters->tombstones_skipped += skipped;
  }
}

void IvfFlatIndex::ScanBucketFiltered(uint32_t bucket, const float* query,
                                      const filter::SelectionVector& selection,
                                      KMaxHeap& heap,
                                      obs::SearchCounters* counters,
                                      uint64_t* bitmap_probes) const {
  if (counters != nullptr) ++counters->buckets_probed;
  const auto& ids = bucket_ids_[bucket];
  const float* vecs = bucket_vecs_[bucket].data();
  size_t visited = 0;
  size_t skipped = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    ++*bitmap_probes;
    if (id < 0 || !selection.Test(static_cast<size_t>(id))) continue;
    if (tombstones_.Contains(id)) {
      ++skipped;
      continue;
    }
    ++visited;
    heap.Push(L2Sqr(query, vecs + i * dim_, dim_), id);
  }
  if (counters != nullptr) {
    counters->tuples_visited += visited;
    counters->heap_pushes += visited;
    counters->tombstones_skipped += skipped;
  }
}

Result<std::vector<Neighbor>> IvfFlatIndex::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "IvfFlat::PreFilterSearch"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("IvfFlat::PreFilterSearch: not built");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  // Gather the survivors into one contiguous block, then brute-force them
  // with the batched kernel — the specialized engine scans the predicate's
  // output, not the index.
  AlignedFloats gathered;
  std::vector<int64_t> gathered_ids;
  obs::SearchCounters counters;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    const auto& ids = bucket_ids_[b];
    const float* vecs = bucket_vecs_[b].data();
    for (size_t i = 0; i < ids.size(); ++i) {
      const int64_t id = ids[i];
      if (id < 0 || !selection.Test(static_cast<size_t>(id))) continue;
      if (tombstones_.Contains(id)) {
        ++counters.tombstones_skipped;
        continue;
      }
      gathered.Append(vecs + i * dim_, dim_);
      gathered_ids.push_back(id);
    }
  }
  KMaxHeap heap(params.k);
  if (!gathered_ids.empty()) {
    std::vector<float> dists(gathered_ids.size());
    DistanceBatch(Metric::kL2, query, gathered.data(), gathered_ids.size(),
                  dim_, dists.data());
    for (size_t i = 0; i < gathered_ids.size(); ++i) {
      heap.Push(dists[i], gathered_ids[i]);
    }
    counters.tuples_visited += gathered_ids.size();
    counters.heap_pushes += gathered_ids.size();
  }
  if (metrics != nullptr) FlushSearchCounters(metrics, counters);
  return heap.TakeSorted();
}

Result<std::vector<Neighbor>> IvfFlatIndex::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kIvf,
                                           "IvfFlat::InFilterSearch"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("IvfFlat::InFilterSearch: not built");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  const std::vector<uint32_t> probes = SelectBuckets(query, nprobe);
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  KMaxHeap heap(params.k);
  for (uint32_t b : probes) {
    VECDB_RETURN_NOT_OK(params.Context().CheckStop("IvfFlat::InFilterSearch"));
    ScanBucketFiltered(b, query, selection, heap, sc, &bitmap_probes);
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return heap.TakeSorted();
}

Result<std::vector<Neighbor>> IvfFlatIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("IvfFlat::Search: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "IvfFlat::Search"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("IvfFlat::Search: index not built");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);

  std::vector<uint32_t> probes;
  {
    ProfScope scope(ctx.profiler, "SelectBuckets");
    probes = SelectBuckets(query, nprobe);
  }

  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;

  if (params.num_threads <= 1) {
    CpuTimer timer;
    KMaxHeap heap(params.k);
    for (uint32_t b : probes) {
      // Cancellation checkpoint: one bucket is the unit of uninterruptible
      // work, so a cancel or deadline lands within a bucket's scan time.
      VECDB_RETURN_NOT_OK(ctx.CheckStop("IvfFlat::Search"));
      ScanBucket(b, query, heap, ctx.profiler, sc);
    }
    if (ctx.accounting != nullptr) {
      // Single-thread run: all scan work is one worker's busy time.
      if (ctx.accounting->worker_busy_nanos.empty()) {
        ctx.accounting->Reset(1);
      }
      ctx.accounting->worker_busy_nanos[0] += timer.ElapsedNanos();
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    ProfScope scope(ctx.profiler, "MinHeap");
    return heap.TakeSorted();
  }

  // Intra-query parallelism, the Faiss way (RC#3): per-worker local heaps
  // over a static partition of the probed buckets, then a lock-free merge.
  ThreadPool pool(params.num_threads);
  std::vector<std::vector<Neighbor>> locals(params.num_threads);
  std::vector<obs::SearchCounters> worker_counters(params.num_threads);
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(params.num_threads)) {
    acct->Reset(params.num_threads);
  }
  pool.ParallelFor(probes.size(), [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    KMaxHeap local(params.k);
    for (size_t i = begin; i < end; ++i) {
      // Workers cannot return a Status through ParallelFor; they bail at
      // the next bucket boundary and the post-merge CheckStop below turns
      // the partial result into a Cancelled error.
      if (ctx.StopRequested()) break;
      ScanBucket(probes[i], query, local, nullptr,
                 sc != nullptr ? &worker_counters[worker] : nullptr);
    }
    locals[worker] = local.TakeSorted();
    if (acct != nullptr) {
      acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
    }
  });
  VECDB_RETURN_NOT_OK(ctx.CheckStop("IvfFlat::Search"));
  CpuTimer merge_timer;
  auto merged = MergeTopK(std::move(locals), params.k);
  if (acct != nullptr) acct->serial_nanos += merge_timer.ElapsedNanos();
  if (metrics != nullptr) {
    for (const auto& w : worker_counters) counters.MergeFrom(w);
    FlushSearchCounters(metrics, counters);
  }
  return merged;
}

Result<std::vector<std::vector<Neighbor>>> IvfFlatIndex::SearchBatch(
    const float* queries, size_t nq, const SearchParams& params) const {
  if (queries == nullptr && nq > 0) {
    return Status::InvalidArgument("IvfFlat::SearchBatch: null queries");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "IvfFlat::SearchBatch"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("IvfFlat::SearchBatch: index not built");
  }
  std::vector<std::vector<Neighbor>> results(nq);
  if (nq == 0) return results;
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kFaissQueries, nq);
    metrics->AddUnchecked(obs::Counter::kFaissBatchQueries, nq);
  }
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  const int num_workers = std::max(params.num_threads, 1);
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(num_workers)) {
    acct->Reset(num_workers);
  }

  // RC#1: one SGEMM-decomposed distance batch covers bucket selection for
  // the whole query block, reusing the cached centroid norms. BLAS-internal
  // work, so it is accounted as a serial section like the adding phase.
  std::vector<float> centroid_dists(nq * static_cast<size_t>(num_clusters_));
  {
    CpuTimer timer;
    ProfScope scope(ctx.profiler, "SelectBucketsSgemm");
    AllPairsL2Sqr(queries, nq, centroids_.data(), num_clusters_, dim_,
                  /*x_norms=*/nullptr, centroid_norms_.data(),
                  centroid_dists.data());
    if (acct != nullptr) acct->serial_nanos += timer.ElapsedNanos();
  }

  // Each query's probed buckets are scanned in selection order by a single
  // worker, so per-query results are bit-identical to single-query Search;
  // the batch dimension is what parallelizes (RC#3: per-worker k-heaps, no
  // shared locked heap). One KMaxHeap per worker is recycled across all of
  // its queries via TakeSorted's reset-to-empty contract.
  auto run_query = [&](size_t q, KMaxHeap& heap, Profiler* profiler,
                       obs::SearchCounters* counters) {
    const float* row = centroid_dists.data() + q * num_clusters_;
    KMaxHeap probe_heap(nprobe);
    for (uint32_t c = 0; c < num_clusters_; ++c) probe_heap.Push(row[c], c);
    const float* query = queries + q * static_cast<size_t>(dim_);
    for (const auto& nb : probe_heap.TakeSorted()) {
      ScanBucket(static_cast<uint32_t>(nb.id), query, heap, profiler,
                 counters);
    }
    results[q] = heap.TakeSorted();
  };

  if (params.num_threads <= 1) {
    CpuTimer timer;
    KMaxHeap heap(params.k);
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (size_t q = 0; q < nq; ++q) run_query(q, heap, ctx.profiler, sc);
    if (acct != nullptr) acct->worker_busy_nanos[0] += timer.ElapsedNanos();
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    return results;
  }

  ThreadPool pool(params.num_threads);
  pool.ParallelFor(nq, [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    KMaxHeap heap(params.k);
    // Per-worker scratch counters, flushed once at worker exit so the
    // sharded atomics stay off the per-tuple path.
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (size_t q = begin; q < end; ++q) run_query(q, heap, nullptr, sc);
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    if (acct != nullptr) {
      acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
    }
  });
  return results;
}

void IvfFlatIndex::CheckInvariants() const {
  if (num_clusters_ == 0) return;  // not trained yet; nothing to audit
  VECDB_CHECK_EQ(bucket_vecs_.size(), num_clusters_);
  VECDB_CHECK_EQ(bucket_ids_.size(), num_clusters_);
  VECDB_CHECK_EQ(centroids_.size(),
                 static_cast<size_t>(num_clusters_) * dim_)
      << "codebook truncated";
  VECDB_CHECK_LE(tombstones_.size(), num_vectors_)
      << "more tombstones than stored rows";
  size_t stored = 0;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    VECDB_CHECK_EQ(bucket_vecs_[b].size(), bucket_ids_[b].size() * dim_)
        << "bucket " << b << " vectors vs ids";
    stored += bucket_ids_[b].size();
  }
  // RC#6 framing in the paper: ntotal is exactly the bucket populations.
  VECDB_CHECK_EQ(stored, num_vectors_) << "bucket sizes vs ntotal";
}

size_t IvfFlatIndex::SizeBytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    bytes += bucket_vecs_[b].size() * sizeof(float);
    bytes += bucket_ids_[b].size() * sizeof(int64_t);
  }
  return bytes;
}

std::string IvfFlatIndex::Describe() const {
  return "faisslike::IVF_FLAT dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_) +
         (options_.use_sgemm ? " sgemm=on" : " sgemm=off");
}

}  // namespace vecdb::faisslike
