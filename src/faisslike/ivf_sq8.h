// Specialized-engine IVF_SQ8 (paper §II-B's third quantization index, as
// in Faiss/Milvus): coarse K-means routing plus 8-bit scalar-quantized
// vectors in each bucket — 4x smaller than IVF_FLAT with far better recall
// than IVF_PQ at the same footprint class.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "quantizer/sq8.h"
#include "topk/heaps.h"

namespace vecdb::faisslike {

/// Construction knobs for IvfSq8Index.
struct IvfSq8Options {
  uint32_t num_clusters = 256;  ///< c
  double sample_ratio = 0.01;   ///< sr
  int train_iterations = 10;
  bool use_sgemm = true;
  uint64_t seed = 42;
  Profiler* profiler = nullptr;
};

/// Inverted file over SQ8-coded vectors. Buckets hold their codes in the
/// blocked Sq8CodeStore layout, scanned with the integer-SIMD fast-scan
/// kernels (one prepared query per search, one batched kernel call per
/// bucket).
class IvfSq8Index final : public VectorIndex {
 public:
  IvfSq8Index(uint32_t dim, IvfSq8Options options)
      : dim_(dim), options_(options) {}

  /// Trains the coarse codebook and the per-dimension scalar ranges.
  Status Train(const float* data, size_t n);

  /// Encodes and buckets vectors; ids default to the running count.
  Status AddBatch(const float* data, size_t n, const int64_t* ids = nullptr);

  Status Build(const float* data, size_t n) override;

  /// Incremental insert (PASE's aminsert counterpart).
  Status Insert(const float* vec) override { return AddBatch(vec, 1); }

  /// Tombstones a row id (filtered at search, reclaimed on rebuild);
  /// NotFound if the id was never indexed or is already deleted.
  Status Delete(int64_t id) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  uint32_t num_clusters() const { return num_clusters_; }

 protected:
  /// Gathers the predicate's survivors across all buckets and fast-scans
  /// them with the pointer-gather SQ8 kernel.
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// Probes nprobe buckets, testing the bitmap per code and fast-scanning
  /// only the selected codes of each bucket.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  std::vector<uint32_t> SelectBuckets(const float* query,
                                      uint32_t nprobe) const;

  /// True if `id` is currently stored in some bucket (live or tombstoned).
  bool ContainsId(int64_t id) const;

  uint32_t dim_;
  IvfSq8Options options_;
  uint32_t num_clusters_ = 0;
  AlignedFloats centroids_;
  std::optional<ScalarQuantizer8> sq_;
  std::vector<Sq8CodeStore> buckets_;
  size_t num_vectors_ = 0;
  TombstoneSet tombstones_;
};

}  // namespace vecdb::faisslike
