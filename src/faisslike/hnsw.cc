#include "faisslike/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/timer.h"
#include "distance/kernels.h"

namespace vecdb::faisslike {

int HnswIndex::RandomLevel() {
  const double u = rng_.UniformDouble();
  const double mult = 1.0 / std::log(static_cast<double>(options_.bnn));
  const int level = static_cast<int>(-std::log(u + 1e-30) * mult);
  return std::min(level, 31);
}

size_t HnswIndex::LinkOffset(uint32_t node, int level) const {
  size_t off = link_offset_[node];
  if (level > 0) {
    off += LevelCapacity(0) + static_cast<size_t>(level - 1) * options_.bnn;
  }
  return off;
}

std::vector<uint32_t> HnswIndex::NeighborsOf(uint32_t node, int level) const {
  const uint16_t count = link_counts_[count_offset_[node] + level];
  const size_t off = LinkOffset(node, level);
  return {links_.begin() + off, links_.begin() + off + count};
}

uint32_t HnswIndex::GreedyClosest(const float* query, uint32_t entry,
                                  int level, Profiler* profiler) const {
  ProfScope scope(profiler, "GreedyUpdate");
  uint32_t cur = entry;
  float cur_dist = L2Sqr(query, NodeVector(cur), dim_);
  bool improved = true;
  while (improved) {
    improved = false;
    const uint16_t count = link_counts_[count_offset_[cur] + level];
    const uint32_t* nbrs = links_.data() + LinkOffset(cur, level);
    for (uint16_t i = 0; i < count; ++i) {
      const float d = L2Sqr(query, NodeVector(nbrs[i]), dim_);
      if (d < cur_dist) {
        cur_dist = d;
        cur = nbrs[i];
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLayer(
    const float* query, uint32_t entry, uint32_t ef, int level,
    Profiler* profiler, obs::SearchCounters* counters,
    const QueryContext* ctx) const {
  // O(1) visited reset via epoch stamping — the cheap path PASE's HVTGet
  // hash probing is contrasted against (Fig 8).
  if (++visit_epoch_ == 0) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
    visit_epoch_ = 1;
  }
  const uint32_t epoch = visit_epoch_;

  auto greater = [](const Neighbor& a, const Neighbor& b) { return b < a; };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(greater)>
      candidates(greater);
  KMaxHeap results(ef);

  const float d0 = L2Sqr(query, NodeVector(entry), dim_);
  visit_stamp_[entry] = epoch;
  candidates.push({d0, static_cast<int64_t>(entry)});
  results.Push(d0, entry);

  std::vector<uint32_t> fresh;
  fresh.reserve(LevelCapacity(level));
  uint32_t pops = 0;
  while (!candidates.empty()) {
    // Cancellation checkpoint every 32 beam pops: each pop expands at
    // most 2*bnn neighbors, so a cancel lands within a bounded slice of
    // graph traversal even on adversarially long beams.
    if (ctx != nullptr && (++pops & 31u) == 0u && ctx->StopRequested()) {
      break;
    }
    const Neighbor c = candidates.top();
    if (results.full() && c.dist > results.worst()) break;
    candidates.pop();

    const uint32_t node = static_cast<uint32_t>(c.id);
    const uint16_t count = link_counts_[count_offset_[node] + level];
    const uint32_t* nbrs = links_.data() + LinkOffset(node, level);

    // Visited filtering — Faiss's array lookup, charged as HVTGet so the
    // PASE hash-table variant is directly comparable.
    fresh.clear();
    {
      ProfScope scope(profiler, "HVTGet");
      for (uint16_t i = 0; i < count; ++i) {
        const uint32_t u = nbrs[i];
        if (visit_stamp_[u] != epoch) {
          visit_stamp_[u] = epoch;
          fresh.push_back(u);
        }
      }
    }
    // Distance batch over the unvisited frontier.
    ProfScope scope(profiler, "fvec_L2sqr");
    size_t pushes = 0;
    for (uint32_t u : fresh) {
      const float d = L2Sqr(query, NodeVector(u), dim_);
      if (!results.full() || d < results.worst()) {
        results.Push(d, u);
        candidates.push({d, static_cast<int64_t>(u)});
        ++pushes;
      }
    }
    if (counters != nullptr) {
      counters->tuples_visited += fresh.size();
      counters->heap_pushes += pushes;
    }
  }
  return results.TakeSorted();
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    const std::vector<Neighbor>& cands, uint32_t max_count,
    Profiler* profiler) const {
  ProfScope scope(profiler, "ShrinkNbList");
  std::vector<uint32_t> selected;
  selected.reserve(max_count);
  for (const auto& c : cands) {
    if (selected.size() >= max_count) break;
    const float* cv = NodeVector(static_cast<uint32_t>(c.id));
    bool keep = true;
    for (uint32_t s : selected) {
      if (L2Sqr(cv, NodeVector(s), dim_) < c.dist) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(static_cast<uint32_t>(c.id));
  }
  return selected;
}

void HnswIndex::AddLinks(uint32_t node, const std::vector<uint32_t>& peers,
                         int level, Profiler* profiler) {
  ProfScope scope(profiler, "AddLink");
  const uint32_t cap = LevelCapacity(level);

  // Forward edges: node -> peers (node's list was empty at this level).
  uint16_t& count = link_counts_[count_offset_[node] + level];
  uint32_t* slots = links_.data() + LinkOffset(node, level);
  for (uint32_t p : peers) {
    if (count >= cap) break;
    slots[count++] = p;
  }

  // Reverse edges: peer -> node, shrinking with the heuristic on overflow.
  for (uint32_t p : peers) {
    uint16_t& pcount = link_counts_[count_offset_[p] + level];
    uint32_t* pslots = links_.data() + LinkOffset(p, level);
    if (pcount < cap) {
      pslots[pcount++] = node;
      continue;
    }
    std::vector<Neighbor> merged;
    merged.reserve(pcount + 1);
    const float* pv = NodeVector(p);
    for (uint16_t i = 0; i < pcount; ++i) {
      merged.push_back({L2Sqr(pv, NodeVector(pslots[i]), dim_),
                        static_cast<int64_t>(pslots[i])});
    }
    merged.push_back(
        {L2Sqr(pv, NodeVector(node), dim_), static_cast<int64_t>(node)});
    std::sort(merged.begin(), merged.end());
    auto kept = SelectNeighbors(merged, cap, nullptr);
    pcount = static_cast<uint16_t>(kept.size());
    std::copy(kept.begin(), kept.end(), pslots);
  }
}

Status HnswIndex::Add(const float* vec) {
  if (vec == nullptr) return Status::InvalidArgument("Hnsw::Add: null vector");
  Profiler* profiler = options_.profiler;

  const uint32_t node = num_nodes_++;
  const int level = RandomLevel();
  vectors_.Append(vec, dim_);
  node_level_.push_back(level);
  link_offset_.push_back(links_.size());
  links_.resize(links_.size() + LevelCapacity(0) +
                static_cast<size_t>(level) * options_.bnn);
  count_offset_.push_back(link_counts_.size());
  link_counts_.resize(link_counts_.size() + level + 1, 0);
  visit_stamp_.push_back(0);

  if (node == 0) {
    entry_point_ = 0;
    max_level_ = level;
    return Status::OK();
  }

  uint32_t cur = entry_point_;
  // Descend through levels above the new node's level (GreedyUpdate).
  for (int lev = max_level_; lev > level; --lev) {
    cur = GreedyClosest(vec, cur, lev, profiler);
  }

  // Connect at each level from min(level, max_level_) down to 0.
  for (int lev = std::min(level, max_level_); lev >= 0; --lev) {
    std::vector<Neighbor> cands;
    {
      ProfScope scope(profiler, "SearchNbToAdd");
      cands = SearchLayer(vec, cur, options_.efb, lev, profiler);
    }
    auto selected = SelectNeighbors(cands, options_.bnn, profiler);
    AddLinks(node, selected, lev, profiler);
    if (!cands.empty()) cur = static_cast<uint32_t>(cands.front().id);
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
  return Status::OK();
}

Status HnswIndex::Build(const float* data, size_t n) {
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("Hnsw::Build: empty input");
  }
  build_stats_ = {};
  Timer timer;
  for (size_t i = 0; i < n; ++i) {
    VECDB_RETURN_NOT_OK(Add(data + i * dim_));
  }
  // HNSW has no training phase; everything is the adding phase.
  build_stats_.add_seconds = timer.ElapsedSeconds();
#ifndef NDEBUG
  CheckInvariants();
#endif
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kFaissBuilds);
  registry.Record(obs::Hist::kFaissBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

Status HnswIndex::Delete(int64_t id) {
  if (id < 0 || static_cast<uint32_t>(id) >= num_nodes_) {
    return Status::NotFound("no node with id " + std::to_string(id));
  }
  return tombstones_.Mark(id);
}

std::vector<Neighbor> HnswIndex::SearchLayerFiltered(
    const float* query, uint32_t entry, uint32_t ef,
    const filter::SelectionVector& selection, obs::SearchCounters* counters,
    uint64_t* bitmap_probes) const {
  if (++visit_epoch_ == 0) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
    visit_epoch_ = 1;
  }
  const uint32_t epoch = visit_epoch_;

  auto greater = [](const Neighbor& a, const Neighbor& b) { return b < a; };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(greater)>
      candidates(greater);
  KMaxHeap results(ef);

  auto allowed = [&](uint32_t u) {
    ++*bitmap_probes;
    return selection.Test(u) && !tombstones_.Contains(u);
  };

  const float d0 = L2Sqr(query, NodeVector(entry), dim_);
  visit_stamp_[entry] = epoch;
  candidates.push({d0, static_cast<int64_t>(entry)});
  if (allowed(entry)) results.Push(d0, entry);

  std::vector<uint32_t> fresh;
  fresh.reserve(LevelCapacity(0));
  while (!candidates.empty()) {
    const Neighbor c = candidates.top();
    if (results.full() && c.dist > results.worst()) break;
    candidates.pop();

    const uint32_t node = static_cast<uint32_t>(c.id);
    const uint16_t count = link_counts_[count_offset_[node] + 0];
    const uint32_t* nbrs = links_.data() + LinkOffset(node, 0);

    fresh.clear();
    for (uint16_t i = 0; i < count; ++i) {
      const uint32_t u = nbrs[i];
      if (visit_stamp_[u] != epoch) {
        visit_stamp_[u] = epoch;
        fresh.push_back(u);
      }
    }
    size_t pushes = 0;
    for (uint32_t u : fresh) {
      const float d = L2Sqr(query, NodeVector(u), dim_);
      // Disallowed nodes keep routing the frontier (dropping them would
      // disconnect the traversal at low selectivity); only allowed nodes
      // may occupy result slots.
      if (!results.full() || d < results.worst()) {
        candidates.push({d, static_cast<int64_t>(u)});
        if (allowed(u)) {
          results.Push(d, u);
          ++pushes;
        }
      }
    }
    if (counters != nullptr) {
      counters->tuples_visited += fresh.size();
      counters->heap_pushes += pushes;
    }
  }
  return results.TakeSorted();
}

Result<std::vector<Neighbor>> HnswIndex::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "Hnsw::PreFilterSearch"));
  if (num_nodes_ == 0) {
    return Status::InvalidArgument("Hnsw::PreFilterSearch: index is empty");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  // The graph's vectors are one contiguous block, so pre-filter is a
  // gather of the survivor rows plus one batched distance call.
  AlignedFloats gathered;
  std::vector<int64_t> gathered_ids;
  obs::SearchCounters counters;
  selection.ForEachSet([&](size_t pos) {
    if (pos >= num_nodes_) return;
    if (tombstones_.Contains(static_cast<int64_t>(pos))) {
      ++counters.tombstones_skipped;
      return;
    }
    gathered.Append(NodeVector(static_cast<uint32_t>(pos)), dim_);
    gathered_ids.push_back(static_cast<int64_t>(pos));
  });
  KMaxHeap heap(params.k);
  if (!gathered_ids.empty()) {
    std::vector<float> dists(gathered_ids.size());
    DistanceBatch(Metric::kL2, query, gathered.data(), gathered_ids.size(),
                  dim_, dists.data());
    for (size_t i = 0; i < gathered_ids.size(); ++i) {
      heap.Push(dists[i], gathered_ids[i]);
    }
    counters.tuples_visited += gathered_ids.size();
    counters.heap_pushes += gathered_ids.size();
  }
  if (metrics != nullptr) {
    counters.FlushTo(metrics, obs::Counter::kFaissBucketsProbed,
                     obs::Counter::kFaissTuplesVisited,
                     obs::Counter::kFaissHeapPushes,
                     obs::Counter::kFaissTombstonesSkipped);
  }
  return heap.TakeSorted();
}

Result<std::vector<Neighbor>> HnswIndex::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kGraph,
                                           "Hnsw::InFilterSearch"));
  if (num_nodes_ == 0) {
    return Status::InvalidArgument("Hnsw::InFilterSearch: index is empty");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint32_t cur = entry_point_;
  for (int lev = max_level_; lev > 0; --lev) {
    cur = GreedyClosest(query, cur, lev, nullptr);
  }
  // Tombstones are filtered inside the layer search, so no over-fetch.
  const uint32_t ef = std::max<uint32_t>(params.efs,
                                         static_cast<uint32_t>(params.k));
  uint64_t bitmap_probes = 0;
  auto cands =
      SearchLayerFiltered(query, cur, ef, selection, sc, &bitmap_probes);
  if (cands.size() > params.k) cands.resize(params.k);
  if (metrics != nullptr) {
    counters.FlushTo(metrics, obs::Counter::kFaissBucketsProbed,
                     obs::Counter::kFaissTuplesVisited,
                     obs::Counter::kFaissHeapPushes,
                     obs::Counter::kFaissTombstonesSkipped);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return cands;
}

Result<std::vector<Neighbor>> HnswIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("Hnsw::Search: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kGraph, "Hnsw::Search"));
  if (num_nodes_ == 0) {
    return Status::InvalidArgument("Hnsw::Search: index is empty");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint32_t cur = entry_point_;
  for (int lev = max_level_; lev > 0; --lev) {
    cur = GreedyClosest(query, cur, lev, ctx.profiler);
  }
  // Over-fetch by the tombstone count so deletions do not starve top-k.
  const uint32_t ef = std::max<uint32_t>(
      params.efs,
      static_cast<uint32_t>(params.k + tombstones_.size()));
  auto cands = SearchLayer(query, cur, ef, 0, ctx.profiler, sc, &ctx);
  VECDB_RETURN_NOT_OK(ctx.CheckStop("Hnsw::Search"));
  if (!tombstones_.empty()) {
    std::vector<Neighbor> kept;
    kept.reserve(cands.size());
    for (const auto& nb : cands) {
      if (!tombstones_.Contains(nb.id)) {
        kept.push_back(nb);
      } else {
        ++counters.tombstones_skipped;
      }
    }
    cands = std::move(kept);
  }
  if (cands.size() > params.k) cands.resize(params.k);
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kFaissQueries);
    counters.FlushTo(metrics, obs::Counter::kFaissBucketsProbed,
                     obs::Counter::kFaissTuplesVisited,
                     obs::Counter::kFaissHeapPushes,
                     obs::Counter::kFaissTombstonesSkipped);
  }
  return cands;
}

void HnswIndex::CheckInvariants() const {
  const size_t n = num_nodes_;
  VECDB_CHECK_EQ(vectors_.size(), n * dim_) << "vector storage vs node count";
  VECDB_CHECK_EQ(node_level_.size(), n);
  VECDB_CHECK_EQ(link_offset_.size(), n);
  VECDB_CHECK_EQ(count_offset_.size(), n);
  VECDB_CHECK_EQ(visit_stamp_.size(), n);
  if (n == 0) {
    VECDB_CHECK_EQ(max_level_, -1) << "empty graph has a level";
    return;
  }
  VECDB_CHECK_LT(static_cast<size_t>(entry_point_), n);
  VECDB_CHECK_EQ(node_level_[entry_point_], max_level_)
      << "entry point is not a top-level node";
  for (uint32_t node = 0; node < n; ++node) {
    const int level = node_level_[node];
    VECDB_CHECK_GE(level, 0) << "node " << node;
    VECDB_CHECK_LE(level, max_level_) << "node " << node;
    for (int lev = 0; lev <= level; ++lev) {
      const uint16_t count = link_counts_[count_offset_[node] + lev];
      VECDB_CHECK_LE(count, LevelCapacity(lev))
          << "node " << node << " level " << lev << " overfull";
      const size_t off = LinkOffset(node, lev);
      VECDB_CHECK_LE(off + count, links_.size())
          << "node " << node << " links out of bounds";
      for (uint16_t i = 0; i < count; ++i) {
        const uint32_t peer = links_[off + i];
        VECDB_CHECK_LT(peer, n)
            << "node " << node << " links to nonexistent node";
        VECDB_CHECK_NE(peer, node) << "self-link at node " << node;
        // Edges at level `lev` may only target nodes that exist at `lev`
        // (links are made from SearchLayer results within that layer).
        VECDB_CHECK_GE(node_level_[peer], lev)
            << "node " << node << " links below peer " << peer << "'s level";
      }
    }
  }
}

size_t HnswIndex::SizeBytes() const {
  // Faiss-style accounting: raw vectors + 4-byte neighbor slots + per-node
  // metadata. This is the in-memory footprint Fig 13 compares against.
  return vectors_.size() * sizeof(float) + links_.size() * sizeof(uint32_t) +
         link_counts_.size() * sizeof(uint16_t) +
         link_offset_.size() * sizeof(size_t) +
         count_offset_.size() * sizeof(size_t) +
         node_level_.size() * sizeof(int);
}

std::string HnswIndex::Describe() const {
  return "faisslike::HNSW dim=" + std::to_string(dim_) +
         " bnn=" + std::to_string(options_.bnn) +
         " efb=" + std::to_string(options_.efb);
}

}  // namespace vecdb::faisslike
