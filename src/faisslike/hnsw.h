// Specialized-engine HNSW (Faiss analog): hierarchical proximity graph with
// contiguous 4-byte neighbor arrays, direct pointer access to vectors, and
// an epoch-stamped visited table. Construction is instrumented with the
// paper's Table III phases (SearchNbToAdd / AddLink / GreedyUpdate /
// ShrinkNbList) and Fig 8 sub-phases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/random.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "obs/metrics.h"
#include "topk/heaps.h"

namespace vecdb::faisslike {

/// Construction knobs for HnswIndex. Names follow the paper's Table II.
struct HnswOptions {
  uint32_t bnn = 16;   ///< base neighbor count M (level 0 holds 2*bnn)
  uint32_t efb = 40;   ///< construction priority-queue length
  uint64_t seed = 42;
  Profiler* profiler = nullptr;  ///< phase breakdown during Build
};

/// In-memory hierarchical navigable small world graph.
class HnswIndex final : public VectorIndex {
 public:
  HnswIndex(uint32_t dim, HnswOptions options)
      : dim_(dim), options_(options), rng_(options.seed) {}

  Status Build(const float* data, size_t n) override;

  /// Inserts one vector (id is the insertion order).
  Status Add(const float* vec);

  /// Incremental insert via the graph insertion path.
  Status Insert(const float* vec) override { return Add(vec); }

  /// Tombstones a node: it stays in the graph for routing but is filtered
  /// from results (the standard HNSW deletion strategy).
  Status Delete(int64_t id) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  /// Search mutates the shared visit-stamp scratch (visit_stamp_ /
  /// visit_epoch_), so concurrent scans on one instance race.
  bool SupportsConcurrentSearch() const override { return false; }

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_nodes_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  /// Construction options (round-tripped by Save/Load since format v2).
  const HnswOptions& options() const { return options_; }

  /// Persists the built graph (vectors + links) to a file.
  Status Save(const std::string& path) const;

  /// Loads a graph previously written by Save.
  static Result<HnswIndex> Load(const std::string& path);

  /// Aborts if the graph structure is inconsistent: per-node array sizes
  /// out of step, link counts above level capacity, an edge to a
  /// nonexistent node / to self / to a node that does not reach that level,
  /// or an entry point that is not a top-level node. Test/debug hook.
  void CheckInvariants() const;

  int max_level() const { return max_level_; }
  /// Top level of `node` in the hierarchy.
  int NodeLevel(uint32_t node) const { return node_level_[node]; }
  /// Neighbor ids of `node` at `level` (testing/diagnostics; `level` must
  /// be <= NodeLevel(node)).
  std::vector<uint32_t> NeighborsOf(uint32_t node, int level) const;

 protected:
  /// Pre-filter: gathers the bitmap's survivors from the contiguous vector
  /// block and brute-forces them with the batched distance kernel; the
  /// graph is not traversed at all.
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// In-filter: greedy upper-level descent unchanged, then a filtered beam
  /// search at level 0 where disallowed nodes still route the traversal
  /// but never enter the result heap (the hnswlib filtered-search rule).
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  /// SearchLayer with the candidate/result heaps decoupled by the bitmap:
  /// every improving node feeds the candidate frontier, only selected
  /// non-tombstoned nodes enter results. Level 0 only (upper levels route
  /// unfiltered). `bitmap_probes` counts selection tests.
  std::vector<Neighbor> SearchLayerFiltered(
      const float* query, uint32_t entry, uint32_t ef,
      const filter::SelectionVector& selection,
      obs::SearchCounters* counters, uint64_t* bitmap_probes) const;

  /// Capacity of a node's neighbor list at a level: 2*bnn at level 0
  /// (paper §II-B), bnn above.
  uint32_t LevelCapacity(int level) const {
    return level == 0 ? 2 * options_.bnn : options_.bnn;
  }

  /// Draws the level for a new node: floor(-ln(U) / ln(bnn)).
  int RandomLevel();

  /// Start offset of the neighbor slots of `node` at `level`.
  size_t LinkOffset(uint32_t node, int level) const;

  /// Greedy single-entry descent at `level` (GreedyUpdate phase).
  uint32_t GreedyClosest(const float* query, uint32_t entry, int level,
                         Profiler* profiler) const;

  /// Beam search at one level; returns up to `ef` candidates ascending.
  /// Instrumented with the Fig 8 sub-phase labels. `counters` (nullable,
  /// query path only) picks up nodes visited and heap pushes. `ctx`
  /// (nullable, query path only) makes the beam loop poll for
  /// cancellation every few pops; the loop exits early with a partial
  /// beam and the caller converts that into a Cancelled error.
  std::vector<Neighbor> SearchLayer(const float* query, uint32_t entry,
                                    uint32_t ef, int level,
                                    Profiler* profiler,
                                    obs::SearchCounters* counters = nullptr,
                                    const QueryContext* ctx = nullptr) const;

  /// HNSW neighbor-selection heuristic (ShrinkNbList phase): keeps a
  /// candidate only if it is closer to the base point than to every
  /// already-selected neighbor; caps at `max_count`.
  std::vector<uint32_t> SelectNeighbors(const std::vector<Neighbor>& cands,
                                        uint32_t max_count,
                                        Profiler* profiler) const;

  /// Connects `node` <-> `peers` at `level`, shrinking overflow lists
  /// (AddLink phase).
  void AddLinks(uint32_t node, const std::vector<uint32_t>& peers, int level,
                Profiler* profiler);

  const float* NodeVector(uint32_t node) const {
    return vectors_.data() + static_cast<size_t>(node) * dim_;
  }

  uint32_t dim_;
  HnswOptions options_;
  Rng rng_;

  AlignedFloats vectors_;
  std::vector<int> node_level_;
  std::vector<size_t> link_offset_;     // per node: start into links_
  std::vector<uint32_t> links_;         // flat neighbor slots, 4 bytes each
  std::vector<uint16_t> link_counts_;   // used slots per (node, level)
  std::vector<size_t> count_offset_;    // per node: start into link_counts_

  uint32_t num_nodes_ = 0;
  TombstoneSet tombstones_;
  uint32_t entry_point_ = 0;
  int max_level_ = -1;

  // Epoch-stamped visited table (Faiss's VisitedTable): O(1) reset.
  mutable std::vector<uint32_t> visit_stamp_;
  mutable uint32_t visit_epoch_ = 0;
};

}  // namespace vecdb::faisslike
