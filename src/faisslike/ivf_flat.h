// Specialized-engine IVF_FLAT (Faiss analog): K-means codebook, per-bucket
// contiguous vector storage, SGEMM-batched assignment in the adding phase
// (paper RC#1), k-sized result heaps (RC#6), and lock-free local-heap
// parallel search (RC#3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/thread_pool.h"
#include "clustering/kmeans.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "obs/metrics.h"
#include "topk/heaps.h"

namespace vecdb::faisslike {

/// Construction knobs for IvfFlatIndex. Names follow the paper's Table II.
struct IvfFlatOptions {
  uint32_t num_clusters = 256;  ///< c
  double sample_ratio = 0.01;   ///< sr — training sample fraction
  int train_iterations = 10;    ///< K-means Lloyd iterations
  bool use_sgemm = true;        ///< RC#1 toggle (Fig 4 disables this)
  uint64_t seed = 42;
  int num_threads = 1;          ///< build parallelism (RC#3)
  Profiler* profiler = nullptr;
};

/// In-memory inverted-file index with exact in-bucket distances.
class IvfFlatIndex final : public VectorIndex {
 public:
  IvfFlatIndex(uint32_t dim, IvfFlatOptions options)
      : dim_(dim), options_(options) {}

  /// Training phase: learns the codebook from a sample of `data`.
  Status Train(const float* data, size_t n);

  /// Replaces the codebook with externally supplied centroids (used by the
  /// paper's Fig 15 "Faiss*" experiment, which transplants PASE centroids).
  /// Must be called before adding; clears any existing buckets.
  Status SetCentroids(const float* centroids, uint32_t num_clusters);

  /// Adding phase: assigns vectors to buckets. Ids are `ids[i]`, or the
  /// running count when `ids` is null.
  Status AddBatch(const float* data, size_t n, const int64_t* ids = nullptr);

  /// Train + AddBatch with phase timing recorded in build_stats().
  Status Build(const float* data, size_t n) override;

  /// Incremental insert (PASE's aminsert counterpart).
  Status Insert(const float* vec) override { return AddBatch(vec, 1); }

  /// Tombstones a row id (filtered at search, reclaimed on rebuild);
  /// NotFound if the id was never indexed or is already deleted.
  Status Delete(int64_t id) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  /// Batched multi-query search: bucket selection for all `nq` queries via
  /// ONE SGEMM-decomposed distance batch against the codebook (RC#1,
  /// reusing the precomputed centroid norms), then inter-query thread-pool
  /// parallelism with one reused KMaxHeap per worker (RC#3). Per-query
  /// results are bit-identical to single-query Search.
  Result<std::vector<std::vector<Neighbor>>> SearchBatch(
      const float* queries, size_t nq,
      const SearchParams& params) const override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  /// Persists the built index (codebook + buckets) to a file.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save.
  static Result<IvfFlatIndex> Load(const std::string& path);

  /// Aborts if bucket storage is inconsistent: bucket sizes not summing to
  /// the total vector count, a bucket whose vector storage disagrees with
  /// its id list, or a truncated codebook. Test/debug hook.
  void CheckInvariants() const;

  uint32_t dim() const { return dim_; }
  uint32_t num_clusters() const { return num_clusters_; }
  /// Construction options (round-tripped by Save/Load since format v2).
  const IvfFlatOptions& options() const { return options_; }
  /// Row-major codebook (num_clusters * dim), valid after Train.
  const float* centroids() const { return centroids_.data(); }
  /// Ids in one bucket (testing/diagnostics).
  const std::vector<int64_t>& bucket_ids(uint32_t b) const {
    return bucket_ids_[b];
  }

 protected:
  /// Pre-filter: gathers the bitmap's survivors from every bucket into one
  /// contiguous block and brute-forces them with the batched distance
  /// kernel (RC#1 idiom applied to the survivor set).
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// In-filter: normal nprobe bucket selection, but the bitmap gates each
  /// tuple before its distance is computed, so non-matching tuples never
  /// enter the heap.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  /// Scans one bucket, pushing candidates into `heap`; profiler labels
  /// match the paper's Table V categories. `counters` (nullable) picks up
  /// tuples visited / heap pushes / tombstones skipped for the metrics
  /// registry.
  void ScanBucket(uint32_t bucket, const float* query, KMaxHeap& heap,
                  Profiler* profiler, obs::SearchCounters* counters) const;

  /// ScanBucket with the in-filter bitmap gate; `bitmap_probes` counts
  /// selection tests for the filter.bitmap_probes counter.
  void ScanBucketFiltered(uint32_t bucket, const float* query,
                          const filter::SelectionVector& selection,
                          KMaxHeap& heap, obs::SearchCounters* counters,
                          uint64_t* bitmap_probes) const;

  /// Selects the nprobe closest buckets to the query.
  std::vector<uint32_t> SelectBuckets(const float* query,
                                      uint32_t nprobe) const;

  /// True if `id` is currently stored in some bucket (live or tombstoned).
  bool ContainsId(int64_t id) const;

  /// Recomputes the cached squared centroid norms (the "store those items
  /// in a table" half of the SGEMM decomposition, amortized across batches).
  void RefreshCentroidNorms();

  uint32_t dim_;
  IvfFlatOptions options_;
  uint32_t num_clusters_ = 0;
  AlignedFloats centroids_;
  AlignedFloats centroid_norms_;  ///< per-centroid squared L2 norms
  std::vector<AlignedFloats> bucket_vecs_;
  std::vector<std::vector<int64_t>> bucket_ids_;
  size_t num_vectors_ = 0;
  TombstoneSet tombstones_;
};

}  // namespace vecdb::faisslike
