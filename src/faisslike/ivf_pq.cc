#include "faisslike/ivf_pq.h"

#include <algorithm>
#include <cstring>

#include "common/random.h"
#include "common/timer.h"
#include "common/thread_pool.h"
#include "distance/kernels.h"
#include "distance/sgemm.h"
#include "obs/metrics.h"

namespace vecdb::faisslike {
namespace {

void FlushSearchCounters(obs::MetricsRegistry* m,
                         const obs::SearchCounters& sc) {
  sc.FlushTo(m, obs::Counter::kFaissBucketsProbed,
             obs::Counter::kFaissTuplesVisited,
             obs::Counter::kFaissHeapPushes,
             obs::Counter::kFaissTombstonesSkipped);
}

}  // namespace

Status IvfPqIndex::Train(const float* data, size_t n) {
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kFaissStyle;
  km.use_sgemm = options_.use_sgemm;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  RefreshCentroidNorms();

  // PQ trains on its own sample (same sr) of the base data.
  size_t sample_n = std::max<size_t>(
      options_.pq_codes, static_cast<size_t>(options_.sample_ratio * n));
  sample_n = std::min(sample_n, n);
  Rng rng(options_.seed + 1);
  auto picks = rng.SampleWithoutReplacement(static_cast<uint32_t>(n),
                                            static_cast<uint32_t>(sample_n));
  AlignedFloats sample(sample_n * dim_);
  for (size_t i = 0; i < sample_n; ++i) {
    std::memcpy(sample.data() + i * dim_,
                data + static_cast<size_t>(picks[i]) * dim_,
                dim_ * sizeof(float));
  }
  PqOptions pq_opt;
  pq_opt.num_subvectors = options_.pq_m;
  pq_opt.num_codes = options_.pq_codes;
  pq_opt.max_iterations = options_.train_iterations;
  pq_opt.style = KMeansStyle::kFaissStyle;
  pq_opt.use_sgemm = options_.use_sgemm;
  pq_opt.seed = options_.seed + 2;
  pq_opt.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(
      ProductQuantizer pq,
      ProductQuantizer::Train(sample.data(), sample_n, dim_, pq_opt));
  pq_.emplace(std::move(pq));

  bucket_codes_.assign(num_clusters_, {});
  bucket_ids_.assign(num_clusters_, {});
  refine_vectors_.Resize(0);
  refine_pos_.clear();
  num_vectors_ = 0;
  tombstones_.Clear();
  return Status::OK();
}

Status IvfPqIndex::AddBatch(const float* data, size_t n, const int64_t* ids) {
  if (!pq_) return Status::InvalidArgument("IvfPq::AddBatch: not trained");
  if (data == nullptr && n > 0) {
    return Status::InvalidArgument("IvfPq::AddBatch: null data");
  }
  std::vector<uint32_t> assign(n);
  if (options_.use_sgemm) {
    CpuTimer timer;
    AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                    /*use_sgemm=*/true, assign.data(), nullptr, nullptr,
                    options_.profiler);
    build_stats_.accounting.serial_nanos += timer.ElapsedNanos();
  } else {
    CpuTimer timer;
    AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                    /*use_sgemm=*/false, assign.data(), nullptr, nullptr,
                    options_.profiler);
    if (!build_stats_.accounting.worker_busy_nanos.empty()) {
      build_stats_.accounting.worker_busy_nanos[0] += timer.ElapsedNanos();
    }
  }

  // Encoding dominates the IVF_PQ adding phase and parallelizes cleanly
  // (this is why Fig 9c/9d scale even with SGEMM enabled).
  const size_t code_size = pq_->code_size();
  std::vector<uint8_t> codes(n * code_size);
  auto encode_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pq_->Encode(data + i * dim_, codes.data() + i * code_size);
    }
  };
  if (options_.num_threads > 1) {
    ThreadPool pool(options_.num_threads);
    auto& acct = build_stats_.accounting;
    if (acct.worker_busy_nanos.size() !=
        static_cast<size_t>(options_.num_threads)) {
      acct.Reset(options_.num_threads);
    }
    pool.ParallelFor(n, [&](int worker, size_t begin, size_t end) {
      CpuTimer timer;
      encode_range(begin, end);
      acct.worker_busy_nanos[worker] += timer.ElapsedNanos();
    });
  } else {
    CpuTimer timer;
    {
      ProfScope scope(options_.profiler, "pq_encode");
      encode_range(0, n);
    }
    if (!build_stats_.accounting.worker_busy_nanos.empty()) {
      build_stats_.accounting.worker_busy_nanos[0] += timer.ElapsedNanos();
    }
  }

  CpuTimer append_timer;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t b = assign[i];
    const uint8_t* code = codes.data() + i * code_size;
    bucket_codes_[b].insert(bucket_codes_[b].end(), code, code + code_size);
    const int64_t id = ids != nullptr
                           ? ids[i]
                           : static_cast<int64_t>(num_vectors_ + i);
    bucket_ids_[b].push_back(id);
    if (options_.refine_factor > 0) {
      refine_pos_[id] = refine_vectors_.size() / dim_;
      refine_vectors_.Append(data + i * dim_, dim_);
    }
  }
  build_stats_.accounting.serial_nanos += append_timer.ElapsedNanos();
  num_vectors_ += n;
  return Status::OK();
}

Status IvfPqIndex::Build(const float* data, size_t n) {
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("IvfPq::Build: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("IvfPq::Build: c > n");
  }
  build_stats_ = {};
  build_stats_.accounting.Reset(options_.num_threads);
  Timer timer;
  VECDB_RETURN_NOT_OK(Train(data, n));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();
  VECDB_RETURN_NOT_OK(AddBatch(data, n));
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kFaissBuilds);
  registry.Record(obs::Hist::kFaissBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

void IvfPqIndex::RefreshCentroidNorms() {
  centroid_norms_.Resize(num_clusters_);
  RowNormsSqr(centroids_.data(), num_clusters_, dim_, centroid_norms_.data());
}

bool IvfPqIndex::ContainsId(int64_t id) const {
  for (const auto& ids : bucket_ids_) {
    for (int64_t stored : ids) {
      if (stored == id) return true;
    }
  }
  return false;
}

Status IvfPqIndex::Delete(int64_t id) {
  if (!ContainsId(id)) {
    return Status::NotFound("IvfPq::Delete: id " + std::to_string(id) +
                            " not indexed");
  }
  return tombstones_.Mark(id);
}

std::vector<uint32_t> IvfPqIndex::SelectBuckets(const float* query,
                                                uint32_t nprobe) const {
  KMaxHeap heap(nprobe);
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    heap.Push(L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                    dim_),
              c);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

void IvfPqIndex::ScanBucket(uint32_t bucket, const float* table,
                            KMaxHeap& heap, Profiler* profiler,
                            obs::SearchCounters* counters) const {
  if (counters != nullptr) ++counters->buckets_probed;
  const auto& ids = bucket_ids_[bucket];
  if (ids.empty()) return;
  const uint8_t* codes = bucket_codes_[bucket].data();
  const size_t code_size = pq_->code_size();
  thread_local std::vector<float> dists;
  dists.resize(ids.size());
  {
    ProfScope scope(profiler, "adc_scan");
    for (size_t i = 0; i < ids.size(); ++i) {
      dists[i] = pq_->AdcDistance(table, codes + i * code_size);
    }
  }
  size_t skipped = 0;
  {
    ProfScope scope(profiler, "MinHeap");
    for (size_t i = 0; i < ids.size(); ++i) {
      if (tombstones_.Contains(ids[i])) {
        ++skipped;
        continue;
      }
      heap.Push(dists[i], ids[i]);
    }
  }
  if (counters != nullptr) {
    counters->tuples_visited += ids.size();
    counters->heap_pushes += ids.size() - skipped;
    counters->tombstones_skipped += skipped;
  }
}

void IvfPqIndex::ScanBucketFiltered(uint32_t bucket, const float* table,
                                    const filter::SelectionVector& selection,
                                    KMaxHeap& heap,
                                    obs::SearchCounters* counters,
                                    uint64_t* bitmap_probes) const {
  if (counters != nullptr) ++counters->buckets_probed;
  const auto& ids = bucket_ids_[bucket];
  if (ids.empty()) return;
  const uint8_t* codes = bucket_codes_[bucket].data();
  const size_t code_size = pq_->code_size();
  size_t visited = 0;
  size_t skipped = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    ++*bitmap_probes;
    if (id < 0 || !selection.Test(static_cast<size_t>(id))) continue;
    if (tombstones_.Contains(id)) {
      ++skipped;
      continue;
    }
    ++visited;
    heap.Push(pq_->AdcDistance(table, codes + i * code_size), id);
  }
  if (counters != nullptr) {
    counters->tuples_visited += visited;
    counters->heap_pushes += visited;
    counters->tombstones_skipped += skipped;
  }
}

std::vector<Neighbor> IvfPqIndex::RefineExact(const float* query,
                                              std::vector<Neighbor> adc,
                                              size_t k) const {
  if (options_.refine_factor == 0) return adc;
  KMaxHeap exact(k);
  for (const auto& nb : adc) {
    auto it = refine_pos_.find(nb.id);
    if (it == refine_pos_.end()) continue;
    exact.Push(L2Sqr(query, refine_vectors_.data() + it->second * dim_, dim_),
               nb.id);
  }
  return exact.TakeSorted();
}

Result<std::vector<Neighbor>> IvfPqIndex::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "IvfPq::PreFilterSearch"));
  if (!pq_) {
    return Status::InvalidArgument("IvfPq::PreFilterSearch: not built");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  std::vector<float> table(pq_->table_size());
  if (options_.optimized_table) {
    pq_->ComputeDistanceTableOptimized(query, table.data());
  } else {
    pq_->ComputeDistanceTableNaive(query, table.data());
  }
  const size_t fetch_k = options_.refine_factor > 0
                             ? params.k * options_.refine_factor
                             : params.k;
  // Brute-force the survivor set through the ADC table: every bucket, but
  // only codes whose ids pass the bitmap.
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  KMaxHeap heap(fetch_k);
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    ScanBucketFiltered(b, table.data(), selection, heap, sc, &bitmap_probes);
  }
  if (sc != nullptr) sc->buckets_probed = 0;  // exhaustive pass, not probes
  if (metrics != nullptr) FlushSearchCounters(metrics, counters);
  return RefineExact(query, heap.TakeSorted(), params.k);
}

Result<std::vector<Neighbor>> IvfPqIndex::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kIvf,
                                           "IvfPq::InFilterSearch"));
  if (!pq_) {
    return Status::InvalidArgument("IvfPq::InFilterSearch: not built");
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  const std::vector<uint32_t> probes = SelectBuckets(query, nprobe);
  std::vector<float> table(pq_->table_size());
  if (options_.optimized_table) {
    pq_->ComputeDistanceTableOptimized(query, table.data());
  } else {
    pq_->ComputeDistanceTableNaive(query, table.data());
  }
  const size_t fetch_k = options_.refine_factor > 0
                             ? params.k * options_.refine_factor
                             : params.k;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  KMaxHeap heap(fetch_k);
  for (uint32_t b : probes) {
    ScanBucketFiltered(b, table.data(), selection, heap, sc, &bitmap_probes);
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return RefineExact(query, heap.TakeSorted(), params.k);
}

Result<std::vector<Neighbor>> IvfPqIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("IvfPq::Search: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "IvfPq::Search"));
  if (!pq_) return Status::InvalidArgument("IvfPq::Search: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kFaissSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kFaissQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);

  std::vector<uint32_t> probes;
  {
    ProfScope scope(ctx.profiler, "SelectBuckets");
    probes = SelectBuckets(query, nprobe);
  }

  std::vector<float> table(pq_->table_size());
  {
    ProfScope scope(ctx.profiler, "PrecomputedTable");
    if (options_.optimized_table) {
      pq_->ComputeDistanceTableOptimized(query, table.data());
    } else {
      pq_->ComputeDistanceTableNaive(query, table.data());
    }
  }

  // With refinement, over-fetch ADC candidates and rescore them exactly
  // against the stored raw vectors (Faiss IndexRefineFlat).
  const size_t fetch_k = options_.refine_factor > 0
                             ? params.k * options_.refine_factor
                             : params.k;
  auto refine = [&](std::vector<Neighbor> adc) -> std::vector<Neighbor> {
    if (options_.refine_factor == 0) return adc;
    ProfScope scope(ctx.profiler, "refine");
    KMaxHeap exact(params.k);
    for (const auto& nb : adc) {
      auto it = refine_pos_.find(nb.id);
      if (it == refine_pos_.end()) continue;
      exact.Push(
          L2Sqr(query, refine_vectors_.data() + it->second * dim_, dim_),
          nb.id);
    }
    return exact.TakeSorted();
  };

  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;

  if (params.num_threads <= 1) {
    CpuTimer timer;
    KMaxHeap heap(fetch_k);
    for (uint32_t b : probes) {
      ScanBucket(b, table.data(), heap, ctx.profiler, sc);
    }
    if (ctx.accounting != nullptr) {
      if (ctx.accounting->worker_busy_nanos.empty()) {
        ctx.accounting->Reset(1);
      }
      ctx.accounting->worker_busy_nanos[0] += timer.ElapsedNanos();
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    return refine(heap.TakeSorted());
  }

  ThreadPool pool(params.num_threads);
  std::vector<std::vector<Neighbor>> locals(params.num_threads);
  std::vector<obs::SearchCounters> worker_counters(params.num_threads);
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(params.num_threads)) {
    acct->Reset(params.num_threads);
  }
  pool.ParallelFor(probes.size(), [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    KMaxHeap local(fetch_k);
    for (size_t i = begin; i < end; ++i) {
      ScanBucket(probes[i], table.data(), local, nullptr,
                 sc != nullptr ? &worker_counters[worker] : nullptr);
    }
    locals[worker] = local.TakeSorted();
    if (acct != nullptr) acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
  });
  CpuTimer merge_timer;
  auto merged = MergeTopK(std::move(locals), fetch_k);
  if (acct != nullptr) acct->serial_nanos += merge_timer.ElapsedNanos();
  if (metrics != nullptr) {
    for (const auto& w : worker_counters) counters.MergeFrom(w);
    FlushSearchCounters(metrics, counters);
  }
  return refine(std::move(merged));
}

Result<std::vector<std::vector<Neighbor>>> IvfPqIndex::SearchBatch(
    const float* queries, size_t nq, const SearchParams& params) const {
  if (queries == nullptr && nq > 0) {
    return Status::InvalidArgument("IvfPq::SearchBatch: null queries");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "IvfPq::SearchBatch"));
  if (!pq_) {
    return Status::InvalidArgument("IvfPq::SearchBatch: index not built");
  }
  std::vector<std::vector<Neighbor>> results(nq);
  if (nq == 0) return results;
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kFaissQueries, nq);
    metrics->AddUnchecked(obs::Counter::kFaissBatchQueries, nq);
  }
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  const int num_workers = std::max(params.num_threads, 1);
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(num_workers)) {
    acct->Reset(num_workers);
  }

  // RC#1: coarse bucket selection for the whole batch in one
  // SGEMM-decomposed call, reusing the cached centroid norms.
  std::vector<float> centroid_dists(nq * static_cast<size_t>(num_clusters_));
  {
    CpuTimer timer;
    ProfScope scope(ctx.profiler, "SelectBucketsSgemm");
    AllPairsL2Sqr(queries, nq, centroids_.data(), num_clusters_, dim_,
                  /*x_norms=*/nullptr, centroid_norms_.data(),
                  centroid_dists.data());
    if (acct != nullptr) acct->serial_nanos += timer.ElapsedNanos();
  }

  const size_t fetch_k = options_.refine_factor > 0
                             ? params.k * options_.refine_factor
                             : params.k;
  // One ADC table buffer and one k-heap per worker, recycled across all of
  // that worker's queries; scans run in per-query selection order, keeping
  // results identical to single-query Search.
  auto run_query = [&](size_t q, KMaxHeap& heap, std::vector<float>& table,
                       Profiler* profiler, obs::SearchCounters* counters) {
    const float* query = queries + q * static_cast<size_t>(dim_);
    const float* row = centroid_dists.data() + q * num_clusters_;
    KMaxHeap probe_heap(nprobe);
    for (uint32_t c = 0; c < num_clusters_; ++c) probe_heap.Push(row[c], c);
    {
      ProfScope scope(profiler, "PrecomputedTable");
      if (options_.optimized_table) {
        pq_->ComputeDistanceTableOptimized(query, table.data());
      } else {
        pq_->ComputeDistanceTableNaive(query, table.data());
      }
    }
    for (const auto& nb : probe_heap.TakeSorted()) {
      ScanBucket(static_cast<uint32_t>(nb.id), table.data(), heap, profiler,
                 counters);
    }
    std::vector<Neighbor> adc = heap.TakeSorted();
    if (options_.refine_factor == 0) {
      results[q] = std::move(adc);
      return;
    }
    ProfScope scope(profiler, "refine");
    KMaxHeap exact(params.k);
    for (const auto& nb : adc) {
      auto it = refine_pos_.find(nb.id);
      if (it == refine_pos_.end()) continue;
      exact.Push(
          L2Sqr(query, refine_vectors_.data() + it->second * dim_, dim_),
          nb.id);
    }
    results[q] = exact.TakeSorted();
  };

  if (params.num_threads <= 1) {
    CpuTimer timer;
    KMaxHeap heap(fetch_k);
    std::vector<float> table(pq_->table_size());
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (size_t q = 0; q < nq; ++q) {
      run_query(q, heap, table, ctx.profiler, sc);
    }
    if (acct != nullptr) acct->worker_busy_nanos[0] += timer.ElapsedNanos();
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    return results;
  }

  ThreadPool pool(params.num_threads);
  pool.ParallelFor(nq, [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    KMaxHeap heap(fetch_k);
    std::vector<float> table(pq_->table_size());
    // Per-worker scratch counters, flushed once at worker exit.
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (size_t q = begin; q < end; ++q) {
      run_query(q, heap, table, nullptr, sc);
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    if (acct != nullptr) {
      acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
    }
  });
  return results;
}

size_t IvfPqIndex::SizeBytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  if (pq_) {
    bytes += static_cast<size_t>(pq_->num_subvectors()) * pq_->num_codes() *
             pq_->sub_dim() * sizeof(float);
  }
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    bytes += bucket_codes_[b].size();
    bytes += bucket_ids_[b].size() * sizeof(int64_t);
  }
  bytes += refine_vectors_.size() * sizeof(float);
  bytes += refine_pos_.size() * (sizeof(int64_t) + sizeof(size_t));
  return bytes;
}

std::string IvfPqIndex::Describe() const {
  return "faisslike::IVF_PQ dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_) +
         " m=" + std::to_string(options_.pq_m) +
         (options_.use_sgemm ? " sgemm=on" : " sgemm=off");
}

}  // namespace vecdb::faisslike
