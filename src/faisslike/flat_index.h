// Brute-force flat index (Faiss IndexFlat analog): exact search by scanning
// every vector. Baseline for recall measurements and small workloads.
#pragma once

#include <string>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "distance/metric.h"

namespace vecdb::faisslike {

/// Exact k-NN by linear scan over an in-memory matrix.
class FlatIndex final : public VectorIndex {
 public:
  /// Creates an empty index over `dim`-dimensional vectors.
  FlatIndex(uint32_t dim, Metric metric = Metric::kL2)
      : dim_(dim), metric_(metric) {}

  Status Build(const float* data, size_t n) override;

  /// Appends one vector with an explicit id.
  Status Add(const float* vec, int64_t id);

  /// Tombstones a row id (filtered from scan results); NotFound if the id
  /// was never added or is already deleted.
  Status Delete(int64_t id) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  size_t SizeBytes() const override {
    return vectors_.size() * sizeof(float) + ids_.size() * sizeof(int64_t);
  }
  size_t NumVectors() const override { return ids_.size() - tombstones_.size(); }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  uint32_t dim() const { return dim_; }
  Metric metric() const { return metric_; }

 private:
  uint32_t dim_;
  Metric metric_;
  AlignedFloats vectors_;
  std::vector<int64_t> ids_;
  TombstoneSet tombstones_;
};

}  // namespace vecdb::faisslike
