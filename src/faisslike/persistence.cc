// Save/Load for the specialized engine's indexes (Faiss's write_index /
// read_index analog): one self-describing binary file per index.
#include <cstring>

#include "common/serialize.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"

namespace vecdb::faisslike {

namespace {
constexpr uint32_t kIvfFlatMagic = 0x56495646;  // "VIVF"
constexpr uint32_t kIvfPqMagic = 0x56505158;    // "VPQX"
constexpr uint32_t kHnswMagic = 0x56484e57;     // "VHNW"
// v1 carried only the options needed to search (use_sgemm /
// optimized_table); v2 serializes the full build-options block so a loaded
// index re-trains and re-inserts exactly like the original, and adds the
// IVF_PQ refinement vectors that v1 silently dropped. Loaders accept both.
constexpr uint32_t kMinFormatVersion = 1;
constexpr uint32_t kFormatVersion = 2;
}  // namespace

Status IvfFlatIndex::Save(const std::string& path) const {
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("IvfFlat::Save: index not built");
  }
  if (!tombstones_.empty()) {
    return Status::InvalidArgument(
        "IvfFlat::Save: rebuild before persisting a deleted-from index");
  }
  VECDB_ASSIGN_OR_RETURN(BinaryWriter writer,
                         BinaryWriter::Open(path, kIvfFlatMagic,
                                            kFormatVersion));
  VECDB_RETURN_NOT_OK(writer.Write(dim_));
  VECDB_RETURN_NOT_OK(writer.Write(num_clusters_));
  VECDB_RETURN_NOT_OK(writer.Write<uint64_t>(num_vectors_));
  VECDB_RETURN_NOT_OK(writer.Write(options_.use_sgemm));
  // v2: the rest of the build-options block.
  VECDB_RETURN_NOT_OK(writer.Write(options_.num_clusters));
  VECDB_RETURN_NOT_OK(writer.Write(options_.sample_ratio));
  VECDB_RETURN_NOT_OK(writer.Write<int32_t>(options_.train_iterations));
  VECDB_RETURN_NOT_OK(writer.Write(options_.seed));
  VECDB_RETURN_NOT_OK(writer.Write<int32_t>(options_.num_threads));
  VECDB_RETURN_NOT_OK(writer.WriteFloats(centroids_));
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    VECDB_RETURN_NOT_OK(writer.WriteFloats(bucket_vecs_[b]));
    VECDB_RETURN_NOT_OK(writer.WriteVector(bucket_ids_[b]));
  }
  return writer.Close();
}

Result<IvfFlatIndex> IvfFlatIndex::Load(const std::string& path) {
  uint32_t version = 0;
  VECDB_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::Open(path, kIvfFlatMagic, kMinFormatVersion,
                         kFormatVersion, &version));
  uint32_t dim = 0, clusters = 0;
  uint64_t num_vectors = 0;
  bool use_sgemm = true;
  VECDB_RETURN_NOT_OK(reader.Read(&dim));
  VECDB_RETURN_NOT_OK(reader.Read(&clusters));
  VECDB_RETURN_NOT_OK(reader.Read(&num_vectors));
  VECDB_RETURN_NOT_OK(reader.Read(&use_sgemm));
  if (dim == 0 || clusters == 0) {
    return Status::Corruption("IvfFlat::Load: bad geometry");
  }
  IvfFlatOptions options;
  options.num_clusters = clusters;
  options.use_sgemm = use_sgemm;
  if (version >= 2) {
    int32_t train_iterations = 0, num_threads = 0;
    VECDB_RETURN_NOT_OK(reader.Read(&options.num_clusters));
    VECDB_RETURN_NOT_OK(reader.Read(&options.sample_ratio));
    VECDB_RETURN_NOT_OK(reader.Read(&train_iterations));
    VECDB_RETURN_NOT_OK(reader.Read(&options.seed));
    VECDB_RETURN_NOT_OK(reader.Read(&num_threads));
    options.train_iterations = train_iterations;
    options.num_threads = num_threads;
  }
  IvfFlatIndex index(dim, options);
  index.num_clusters_ = clusters;
  index.num_vectors_ = num_vectors;
  VECDB_RETURN_NOT_OK(reader.ReadFloats(&index.centroids_));
  if (index.centroids_.size() != static_cast<size_t>(clusters) * dim) {
    return Status::Corruption("IvfFlat::Load: centroid size mismatch");
  }
  index.bucket_vecs_ = std::vector<AlignedFloats>(clusters);
  index.bucket_ids_.assign(clusters, {});
  size_t total = 0;
  for (uint32_t b = 0; b < clusters; ++b) {
    VECDB_RETURN_NOT_OK(reader.ReadFloats(&index.bucket_vecs_[b]));
    VECDB_RETURN_NOT_OK(reader.ReadVector(&index.bucket_ids_[b]));
    if (index.bucket_vecs_[b].size() !=
        index.bucket_ids_[b].size() * dim) {
      return Status::Corruption("IvfFlat::Load: bucket size mismatch");
    }
    total += index.bucket_ids_[b].size();
  }
  if (total != num_vectors) {
    return Status::Corruption("IvfFlat::Load: vector count mismatch");
  }
  index.RefreshCentroidNorms();
  return index;
}

Status IvfPqIndex::Save(const std::string& path) const {
  if (!pq_) return Status::InvalidArgument("IvfPq::Save: index not built");
  if (!tombstones_.empty()) {
    return Status::InvalidArgument(
        "IvfPq::Save: rebuild before persisting a deleted-from index");
  }
  VECDB_ASSIGN_OR_RETURN(
      BinaryWriter writer,
      BinaryWriter::Open(path, kIvfPqMagic, kFormatVersion));
  VECDB_RETURN_NOT_OK(writer.Write(dim_));
  VECDB_RETURN_NOT_OK(writer.Write(num_clusters_));
  VECDB_RETURN_NOT_OK(writer.Write<uint64_t>(num_vectors_));
  VECDB_RETURN_NOT_OK(writer.Write(options_.optimized_table));
  // v2: the rest of the build-options block.
  VECDB_RETURN_NOT_OK(writer.Write(options_.num_clusters));
  VECDB_RETURN_NOT_OK(writer.Write(options_.pq_m));
  VECDB_RETURN_NOT_OK(writer.Write(options_.pq_codes));
  VECDB_RETURN_NOT_OK(writer.Write(options_.sample_ratio));
  VECDB_RETURN_NOT_OK(writer.Write<int32_t>(options_.train_iterations));
  VECDB_RETURN_NOT_OK(writer.Write(options_.use_sgemm));
  VECDB_RETURN_NOT_OK(writer.Write(options_.refine_factor));
  VECDB_RETURN_NOT_OK(writer.Write(options_.seed));
  VECDB_RETURN_NOT_OK(writer.Write<int32_t>(options_.num_threads));
  VECDB_RETURN_NOT_OK(writer.WriteFloats(centroids_));
  VECDB_RETURN_NOT_OK(pq_->Serialize(&writer));
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    VECDB_RETURN_NOT_OK(writer.WriteVector(bucket_codes_[b]));
    VECDB_RETURN_NOT_OK(writer.WriteVector(bucket_ids_[b]));
  }
  // v2: the refinement sidecar (raw vectors + row->id mapping), which v1
  // dropped — a refining index reloaded from a v1 file silently lost its
  // exact-rescore data.
  if (options_.refine_factor > 0) {
    const size_t rows = refine_vectors_.size() / dim_;
    std::vector<int64_t> row_ids(rows);
    for (const auto& [id, row] : refine_pos_) row_ids[row] = id;
    VECDB_RETURN_NOT_OK(writer.WriteFloats(refine_vectors_));
    VECDB_RETURN_NOT_OK(writer.WriteVector(row_ids));
  }
  return writer.Close();
}

Result<IvfPqIndex> IvfPqIndex::Load(const std::string& path) {
  uint32_t version = 0;
  VECDB_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::Open(path, kIvfPqMagic, kMinFormatVersion,
                         kFormatVersion, &version));
  uint32_t dim = 0, clusters = 0;
  uint64_t num_vectors = 0;
  bool optimized_table = true;
  VECDB_RETURN_NOT_OK(reader.Read(&dim));
  VECDB_RETURN_NOT_OK(reader.Read(&clusters));
  VECDB_RETURN_NOT_OK(reader.Read(&num_vectors));
  VECDB_RETURN_NOT_OK(reader.Read(&optimized_table));
  if (dim == 0 || clusters == 0) {
    return Status::Corruption("IvfPq::Load: bad geometry");
  }
  IvfPqOptions options;
  options.num_clusters = clusters;
  options.optimized_table = optimized_table;
  if (version >= 2) {
    int32_t train_iterations = 0, num_threads = 0;
    VECDB_RETURN_NOT_OK(reader.Read(&options.num_clusters));
    VECDB_RETURN_NOT_OK(reader.Read(&options.pq_m));
    VECDB_RETURN_NOT_OK(reader.Read(&options.pq_codes));
    VECDB_RETURN_NOT_OK(reader.Read(&options.sample_ratio));
    VECDB_RETURN_NOT_OK(reader.Read(&train_iterations));
    VECDB_RETURN_NOT_OK(reader.Read(&options.use_sgemm));
    VECDB_RETURN_NOT_OK(reader.Read(&options.refine_factor));
    VECDB_RETURN_NOT_OK(reader.Read(&options.seed));
    VECDB_RETURN_NOT_OK(reader.Read(&num_threads));
    options.train_iterations = train_iterations;
    options.num_threads = num_threads;
  }
  IvfPqIndex index(dim, options);
  index.num_clusters_ = clusters;
  index.num_vectors_ = num_vectors;
  VECDB_RETURN_NOT_OK(reader.ReadFloats(&index.centroids_));
  if (index.centroids_.size() != static_cast<size_t>(clusters) * dim) {
    return Status::Corruption("IvfPq::Load: centroid size mismatch");
  }
  VECDB_ASSIGN_OR_RETURN(ProductQuantizer pq,
                         ProductQuantizer::Deserialize(&reader));
  if (pq.dim() != dim) {
    return Status::Corruption("IvfPq::Load: PQ dim mismatch");
  }
  index.options_.pq_m = pq.num_subvectors();
  index.options_.pq_codes = pq.num_codes();
  index.pq_.emplace(std::move(pq));
  index.bucket_codes_.assign(clusters, {});
  index.bucket_ids_.assign(clusters, {});
  const size_t code_size = index.pq_->code_size();
  size_t total = 0;
  for (uint32_t b = 0; b < clusters; ++b) {
    VECDB_RETURN_NOT_OK(reader.ReadVector(&index.bucket_codes_[b]));
    VECDB_RETURN_NOT_OK(reader.ReadVector(&index.bucket_ids_[b]));
    if (index.bucket_codes_[b].size() !=
        index.bucket_ids_[b].size() * code_size) {
      return Status::Corruption("IvfPq::Load: bucket size mismatch");
    }
    total += index.bucket_ids_[b].size();
  }
  if (total != num_vectors) {
    return Status::Corruption("IvfPq::Load: vector count mismatch");
  }
  if (version >= 2 && index.options_.refine_factor > 0) {
    std::vector<int64_t> row_ids;
    VECDB_RETURN_NOT_OK(reader.ReadFloats(&index.refine_vectors_));
    VECDB_RETURN_NOT_OK(reader.ReadVector(&row_ids));
    if (index.refine_vectors_.size() != row_ids.size() * dim) {
      return Status::Corruption("IvfPq::Load: refine sidecar mismatch");
    }
    index.refine_pos_.reserve(row_ids.size());
    for (size_t row = 0; row < row_ids.size(); ++row) {
      index.refine_pos_[row_ids[row]] = row;
    }
  }
  index.RefreshCentroidNorms();
  return index;
}

Status HnswIndex::Save(const std::string& path) const {
  if (num_nodes_ == 0) {
    return Status::InvalidArgument("Hnsw::Save: index is empty");
  }
  if (!tombstones_.empty()) {
    return Status::InvalidArgument(
        "Hnsw::Save: rebuild before persisting a deleted-from index");
  }
  VECDB_ASSIGN_OR_RETURN(
      BinaryWriter writer,
      BinaryWriter::Open(path, kHnswMagic, kFormatVersion));
  VECDB_RETURN_NOT_OK(writer.Write(dim_));
  VECDB_RETURN_NOT_OK(writer.Write(options_.bnn));
  VECDB_RETURN_NOT_OK(writer.Write(options_.efb));
  // v2: the rest of the build-options block.
  VECDB_RETURN_NOT_OK(writer.Write(options_.seed));
  VECDB_RETURN_NOT_OK(writer.Write(num_nodes_));
  VECDB_RETURN_NOT_OK(writer.Write(entry_point_));
  VECDB_RETURN_NOT_OK(writer.Write(max_level_));
  VECDB_RETURN_NOT_OK(writer.WriteFloats(vectors_));
  VECDB_RETURN_NOT_OK(writer.WriteVector(node_level_));
  VECDB_RETURN_NOT_OK(writer.WriteVector(link_offset_));
  VECDB_RETURN_NOT_OK(writer.WriteVector(links_));
  VECDB_RETURN_NOT_OK(writer.WriteVector(link_counts_));
  VECDB_RETURN_NOT_OK(writer.WriteVector(count_offset_));
  return writer.Close();
}

Result<HnswIndex> HnswIndex::Load(const std::string& path) {
  uint32_t version = 0;
  VECDB_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::Open(path, kHnswMagic, kMinFormatVersion,
                         kFormatVersion, &version));
  uint32_t dim = 0;
  HnswOptions options;
  VECDB_RETURN_NOT_OK(reader.Read(&dim));
  VECDB_RETURN_NOT_OK(reader.Read(&options.bnn));
  VECDB_RETURN_NOT_OK(reader.Read(&options.efb));
  if (version >= 2) {
    VECDB_RETURN_NOT_OK(reader.Read(&options.seed));
  }
  if (dim == 0 || options.bnn == 0) {
    return Status::Corruption("Hnsw::Load: bad geometry");
  }
  HnswIndex index(dim, options);
  VECDB_RETURN_NOT_OK(reader.Read(&index.num_nodes_));
  VECDB_RETURN_NOT_OK(reader.Read(&index.entry_point_));
  VECDB_RETURN_NOT_OK(reader.Read(&index.max_level_));
  VECDB_RETURN_NOT_OK(reader.ReadFloats(&index.vectors_));
  VECDB_RETURN_NOT_OK(reader.ReadVector(&index.node_level_));
  VECDB_RETURN_NOT_OK(reader.ReadVector(&index.link_offset_));
  VECDB_RETURN_NOT_OK(reader.ReadVector(&index.links_));
  VECDB_RETURN_NOT_OK(reader.ReadVector(&index.link_counts_));
  VECDB_RETURN_NOT_OK(reader.ReadVector(&index.count_offset_));
  const size_t n = index.num_nodes_;
  if (index.vectors_.size() != n * dim || index.node_level_.size() != n ||
      index.link_offset_.size() != n || index.count_offset_.size() != n ||
      (n > 0 && index.entry_point_ >= n)) {
    return Status::Corruption("Hnsw::Load: inconsistent graph");
  }
  // Neighbor ids must be in range.
  for (uint32_t nb : index.links_) {
    if (nb >= n && nb != 0) {
      // Unused slots are zero-filled; a nonzero out-of-range id is corrupt.
      return Status::Corruption("Hnsw::Load: neighbor id out of range");
    }
  }
  index.visit_stamp_.assign(n, 0);
  index.visit_epoch_ = 0;
  return index;
}

}  // namespace vecdb::faisslike
