#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace vecdb::net {
namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

std::string PeerString(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::ListenTcp(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  const int one = 1;
  // REUSEADDR so test servers can rebind a just-closed port without
  // waiting out TIME_WAIT.
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return sock;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  return sock;
}

Result<Socket> Socket::Accept(std::string* peer) const {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  int fd;
  do {
    fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  if (peer != nullptr) *peer = PeerString(addr);
  return Socket(fd);
}

Result<uint16_t> Socket::bound_port() const {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Status Socket::SendAll(const void* data, size_t len) const {
  const auto* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::SendSome(const void* data, size_t len) const {
  ssize_t n;
  do {
    n = ::send(fd_, data, len, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send");
  }
  return static_cast<size_t>(n);
}

Result<size_t> Socket::RecvSome(void* buf, size_t cap) const {
  ssize_t n;
  do {
    n = ::recv(fd_, buf, cap, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::NotSupported("recv would block");
    }
    return Errno("recv");
  }
  return static_cast<size_t>(n);
}

Status Socket::SetNonBlocking(bool enabled) const {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::SetNoDelay(bool enabled) const {
  const int one = enabled ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<WakePipe> WakePipe::Create() {
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  WakePipe wp;
  wp.read_fd_ = fds[0];
  wp.write_fd_ = fds[1];
  for (int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      return Errno("fcntl(pipe)");
    }
  }
  return wp;
}

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

WakePipe::WakePipe(WakePipe&& other) noexcept
    : read_fd_(other.read_fd_), write_fd_(other.write_fd_) {
  other.read_fd_ = -1;
  other.write_fd_ = -1;
}

WakePipe& WakePipe::operator=(WakePipe&& other) noexcept {
  if (this != &other) {
    this->~WakePipe();
    read_fd_ = other.read_fd_;
    write_fd_ = other.write_fd_;
    other.read_fd_ = -1;
    other.write_fd_ = -1;
  }
  return *this;
}

void WakePipe::Signal() const {
  const char byte = 'w';
  // Non-blocking: if the pipe is already full, the scheduler has a wakeup
  // pending anyway, so a dropped byte is harmless.
  (void)!::write(write_fd_, &byte, 1);
}

void WakePipe::Drain() const {
  char buf[64];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

Result<int> Poll(std::vector<PollEntry>& entries, int timeout_ms) {
  std::vector<pollfd> fds(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    fds[i].fd = entries[i].fd;
    fds[i].events = static_cast<short>((entries[i].want_read ? POLLIN : 0) |
                                       (entries[i].want_write ? POLLOUT : 0));
    fds[i].revents = 0;
  }
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].readable = (fds[i].revents & POLLIN) != 0;
    entries[i].writable = (fds[i].revents & POLLOUT) != 0;
    entries[i].error =
        (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return rc;
}

}  // namespace vecdb::net
