#include "net/client.h"

namespace vecdb::net {

Result<std::unique_ptr<VecClient>> VecClient::Connect(const std::string& host,
                                                      uint16_t port) {
  std::unique_ptr<VecClient> client(new VecClient());
  VECDB_ASSIGN_OR_RETURN(client->sock_, Socket::ConnectTcp(host, port));
  VECDB_RETURN_NOT_OK(client->sock_.SetNoDelay(true));
  VECDB_RETURN_NOT_OK(client->SendFrame(
      Frame{FrameType::kHello, EncodeHello(kProtocolVersion)}));
  VECDB_ASSIGN_OR_RETURN(Frame reply, client->ReadFrame());
  if (reply.type == FrameType::kError) {
    // Capacity refusal or version mismatch, relayed verbatim.
    VECDB_ASSIGN_OR_RETURN(WireError error, DecodeError(reply.payload));
    return error.ToStatus();
  }
  if (reply.type != FrameType::kHelloOk) {
    return Status::Corruption("expected HelloOk, got frame type " +
                              std::to_string(static_cast<int>(reply.type)));
  }
  VECDB_ASSIGN_OR_RETURN(HelloOk ok, DecodeHelloOk(reply.payload));
  if (ok.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: server v" + std::to_string(ok.version));
  }
  client->session_id_ = ok.session_id;
  return client;
}

VecClient::~VecClient() { Close(); }

void VecClient::Close() {
  if (closed_ || !sock_.valid()) return;
  closed_ = true;
  (void)SendFrame(Frame{FrameType::kGoodbye, {}});
  sock_.Close();
}

Status VecClient::SendFrame(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  MutexLock lock(send_mu_);
  return sock_.SendAll(bytes.data(), bytes.size());
}

Result<Frame> VecClient::ReadFrame() {
  for (;;) {
    VECDB_ASSIGN_OR_RETURN(auto frame, decoder_.Next());
    if (frame.has_value()) return std::move(*frame);
    uint8_t buf[4096];
    VECDB_ASSIGN_OR_RETURN(size_t n, sock_.RecvSome(buf, sizeof(buf)));
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    decoder_.Feed(buf, n);
  }
}

Result<sql::QueryResult> VecClient::Execute(const std::string& statement) {
  if (closed_) return Status::InvalidArgument("client is closed");
  VECDB_RETURN_NOT_OK(
      SendFrame(Frame{FrameType::kStatement, EncodeStatement(statement)}));
  VECDB_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  switch (reply.type) {
    case FrameType::kResult:
      return DecodeQueryResult(reply.payload);
    case FrameType::kError: {
      VECDB_ASSIGN_OR_RETURN(WireError error, DecodeError(reply.payload));
      return error.ToStatus();
    }
    default:
      return Status::Corruption(
          "expected Result or Error, got frame type " +
          std::to_string(static_cast<int>(reply.type)));
  }
}

Status VecClient::Cancel() {
  if (closed_) return Status::InvalidArgument("client is closed");
  return SendFrame(Frame{FrameType::kCancel, {}});
}

}  // namespace vecdb::net
