#include "net/frame.h"

#include <cstring>

#include "pgstub/crc32c.h"

namespace vecdb::net {
namespace {

// --- Little-endian put/get helpers over byte vectors ---------------------

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked reader over a payload. Every Get* fails with
/// Corruption instead of reading past the end, so a truncated or
/// bit-flipped payload surfaces as a clean error.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8() {
    VECDB_RETURN_NOT_OK(Need(1));
    return data_[pos_++];
  }

  Result<uint32_t> GetU32() {
    VECDB_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  Result<uint64_t> GetU64() {
    VECDB_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  Result<double> GetF64() {
    VECDB_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> GetString() {
    VECDB_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    VECDB_RETURN_NOT_OK(Need(n));
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Status ExpectEnd() const {
    if (pos_ != size_) {
      return Status::Corruption("payload has " +
                                std::to_string(size_ - pos_) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (size_ - pos_ < n) {
      return Status::Corruption("payload truncated: need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(size_ - pos_));
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

bool IsKnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kGoodbye);
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.payload.size() + 4);
  PutU32(out, kFrameMagic);
  PutU8(out, static_cast<uint8_t>(frame.type));
  PutU8(out, 0);   // flags
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  PutU32(out, pgstub::Crc32c(out.data(), 12));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  PutU32(out, pgstub::Crc32c(frame.payload.data(), frame.payload.size()));
  return out;
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact the consumed prefix before growing, so the buffer's high-water
  // mark tracks the largest single frame, not the whole session.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kMaxPayload) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  VECDB_RETURN_NOT_OK(poisoned_);
  auto poison = [&](std::string msg) -> Status {
    poisoned_ = Status::Corruption(std::move(msg));
    return poisoned_;
  };
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return std::optional<Frame>{};
  const uint8_t* h = buf_.data() + pos_;
  auto get_u32 = [&](size_t off) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(h[off + i]) << (8 * i);
    }
    return v;
  };
  // Validate the header CRC first: it vouches for every other header
  // field, including the length the decoder is about to trust.
  if (get_u32(12) != pgstub::Crc32c(h, 12)) {
    return poison("frame header CRC mismatch");
  }
  if (get_u32(0) != kFrameMagic) return poison("bad frame magic");
  if (h[5] != 0 || h[6] != 0 || h[7] != 0) {
    return poison("nonzero reserved frame bits");
  }
  const uint8_t type = h[4];
  if (!IsKnownFrameType(type)) {
    return poison("unknown frame type " + std::to_string(type));
  }
  const uint32_t payload_len = get_u32(8);
  if (payload_len > kMaxPayload) {
    return poison("frame payload too large: " + std::to_string(payload_len));
  }
  const size_t total = kFrameHeaderSize + payload_len + 4;
  if (avail < total) {
    return std::optional<Frame>{};  // torn frame: wait for more bytes
  }
  const uint8_t* body = h + kFrameHeaderSize;
  uint32_t body_crc = 0;
  for (int i = 0; i < 4; ++i) {
    body_crc |= static_cast<uint32_t>(body[payload_len + i]) << (8 * i);
  }
  if (body_crc != pgstub::Crc32c(body, payload_len)) {
    return poison("frame payload CRC mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(body, body + payload_len);
  pos_ += total;
  return std::optional<Frame>(std::move(frame));
}

std::vector<uint8_t> EncodeHello(uint32_t version) {
  std::vector<uint8_t> out;
  PutU32(out, version);
  return out;
}

Result<uint32_t> DecodeHello(const std::vector<uint8_t>& payload) {
  Reader r(payload.data(), payload.size());
  VECDB_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  VECDB_RETURN_NOT_OK(r.ExpectEnd());
  return version;
}

std::vector<uint8_t> EncodeHelloOk(uint32_t version, uint64_t session_id) {
  std::vector<uint8_t> out;
  PutU32(out, version);
  PutU64(out, session_id);
  return out;
}

Result<HelloOk> DecodeHelloOk(const std::vector<uint8_t>& payload) {
  Reader r(payload.data(), payload.size());
  HelloOk ok;
  VECDB_ASSIGN_OR_RETURN(ok.version, r.GetU32());
  VECDB_ASSIGN_OR_RETURN(ok.session_id, r.GetU64());
  VECDB_RETURN_NOT_OK(r.ExpectEnd());
  return ok;
}

std::vector<uint8_t> EncodeStatement(const std::string& sql) {
  std::vector<uint8_t> out;
  PutString(out, sql);
  return out;
}

Result<std::string> DecodeStatement(const std::vector<uint8_t>& payload) {
  Reader r(payload.data(), payload.size());
  VECDB_ASSIGN_OR_RETURN(std::string sql, r.GetString());
  VECDB_RETURN_NOT_OK(r.ExpectEnd());
  return sql;
}

std::vector<uint8_t> EncodeQueryResult(const sql::QueryResult& result) {
  std::vector<uint8_t> out;
  PutString(out, result.message);
  PutU32(out, static_cast<uint32_t>(result.columns.size()));
  for (const auto& col : result.columns) PutString(out, col);
  PutU64(out, result.rows.size());
  for (const auto& row : result.rows) {
    PutU64(out, static_cast<uint64_t>(row.id));
    PutF64(out, row.distance);
  }
  PutF64(out, result.stats.wall_seconds);
  PutU64(out, result.stats.rows_scanned);
  PutU64(out, result.stats.rows_returned);
  return out;
}

Result<sql::QueryResult> DecodeQueryResult(
    const std::vector<uint8_t>& payload) {
  Reader r(payload.data(), payload.size());
  sql::QueryResult out;
  VECDB_ASSIGN_OR_RETURN(out.message, r.GetString());
  VECDB_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
  // Sanity bound: the engine emits at most a handful of columns, and the
  // payload must actually hold them. Guards against a corrupt count
  // driving a huge allocation.
  if (ncols > 64) {
    return Status::Corruption("implausible column count " +
                              std::to_string(ncols));
  }
  out.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    VECDB_ASSIGN_OR_RETURN(std::string col, r.GetString());
    out.columns.push_back(std::move(col));
  }
  VECDB_ASSIGN_OR_RETURN(uint64_t nrows, r.GetU64());
  if (nrows > kMaxPayload / 16) {
    return Status::Corruption("implausible row count " +
                              std::to_string(nrows));
  }
  out.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    sql::QueryResult::Row row;
    VECDB_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
    row.id = static_cast<int64_t>(id);
    VECDB_ASSIGN_OR_RETURN(row.distance, r.GetF64());
    out.rows.push_back(row);
  }
  VECDB_ASSIGN_OR_RETURN(out.stats.wall_seconds, r.GetF64());
  VECDB_ASSIGN_OR_RETURN(out.stats.rows_scanned, r.GetU64());
  VECDB_ASSIGN_OR_RETURN(out.stats.rows_returned, r.GetU64());
  VECDB_RETURN_NOT_OK(r.ExpectEnd());
  return out;
}

std::vector<uint8_t> EncodeError(const Status& status) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutString(out, status.message());
  return out;
}

Result<WireError> DecodeError(const std::vector<uint8_t>& payload) {
  Reader r(payload.data(), payload.size());
  VECDB_ASSIGN_OR_RETURN(uint32_t code, r.GetU32());
  VECDB_ASSIGN_OR_RETURN(std::string message, r.GetString());
  VECDB_RETURN_NOT_OK(r.ExpectEnd());
  if (code == static_cast<uint32_t>(StatusCode::kOk) ||
      code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return Status::Corruption("bad status code in error frame: " +
                              std::to_string(code));
  }
  WireError err;
  err.code = static_cast<StatusCode>(code);
  err.message = std::move(message);
  return err;
}

}  // namespace vecdb::net
