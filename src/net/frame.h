// The vecdb wire protocol: versioned, length-prefixed, CRC-guarded
// frames, shared by VecServer and VecClient. See docs/SERVER.md for the
// full specification.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic 0x56444246 ("VDBF")
//   4       1     frame type (FrameType)
//   5       1     flags (reserved, must be 0)
//   6       2     reserved (must be 0)
//   8       4     payload length (bytes; <= kMaxPayload)
//   12      4     CRC-32C over bytes [0, 12)
//   16      n     payload
//   16+n    4     CRC-32C over the payload
//
// The header CRC lets the decoder reject a corrupt length field before
// trusting it; the payload CRC catches corruption in the body. A decoder
// that sees a bad magic, bad CRC, nonzero reserved bits, or an oversized
// length fails the connection — framing is never resynchronized, exactly
// like PostgreSQL's v3 protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/database.h"

namespace vecdb::net {

inline constexpr uint32_t kFrameMagic = 0x56444246;  // "VDBF" LE
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
/// Payload cap: statements and result sets are small; anything bigger is
/// a corrupt or hostile length field.
inline constexpr uint32_t kMaxPayload = 16u * 1024 * 1024;

enum class FrameType : uint8_t {
  kHello = 1,     ///< client -> server: u32 protocol version
  kHelloOk = 2,   ///< server -> client: u32 version, u64 session id
  kStatement = 3, ///< client -> server: UTF-8 SQL text
  kResult = 4,    ///< server -> client: encoded QueryResult
  kError = 5,     ///< server -> client: u32 status code, string message
  kCancel = 6,    ///< client -> server: empty; out-of-band statement cancel
  kGoodbye = 7,   ///< client -> server: empty; orderly close
};

/// Whether `t` is a type this protocol version defines.
bool IsKnownFrameType(uint8_t t);

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<uint8_t> payload;
};

/// Encodes one frame: header + payload + payload CRC.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Incremental decoder for a byte stream of frames. Feed() bytes as they
/// arrive; Next() yields one frame at a time. Torn frames (partial
/// header or payload) return nullopt until more bytes arrive; corrupt
/// frames return Corruption and poison the decoder — the connection must
/// be dropped, matching the no-resync rule above.
class FrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t n);

  /// One decoded frame, nullopt if the buffer holds only a partial
  /// frame, or Corruption (sticky) on a malformed stream.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
  Status poisoned_ = Status::OK();
};

// --- Payload codecs ------------------------------------------------------
// All multi-byte integers little-endian; strings are u32 length + bytes.

std::vector<uint8_t> EncodeHello(uint32_t version);
Result<uint32_t> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeHelloOk(uint32_t version, uint64_t session_id);
struct HelloOk {
  uint32_t version = 0;
  uint64_t session_id = 0;
};
Result<HelloOk> DecodeHelloOk(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeStatement(const std::string& sql);
Result<std::string> DecodeStatement(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResult(const sql::QueryResult& result);
Result<sql::QueryResult> DecodeQueryResult(
    const std::vector<uint8_t>& payload);

/// kError payload: the failing statement's Status (never OK). Decoded
/// into a plain struct because Result<Status> is ill-formed (the value
/// and error constructors would collide).
std::vector<uint8_t> EncodeError(const Status& status);
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  Status ToStatus() const { return Status(code, message); }
};
Result<WireError> DecodeError(const std::vector<uint8_t>& payload);

}  // namespace vecdb::net
