// VecClient: blocking client for the vecdb wire protocol. One TCP
// connection, one server-side session. Execute() is synchronous;
// Cancel() may be called from another thread to abort the statement in
// flight (it sends the out-of-band kCancel frame). See docs/SERVER.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/frame.h"
#include "net/socket.h"
#include "sql/database.h"

namespace vecdb::net {

class VecClient {
 public:
  /// Connects and completes the Hello/HelloOk handshake. Fails cleanly
  /// if the server refuses the connection (capacity) or speaks a
  /// different protocol version.
  static Result<std::unique_ptr<VecClient>> Connect(const std::string& host,
                                                    uint16_t port);
  VecClient(const VecClient&) = delete;
  VecClient& operator=(const VecClient&) = delete;

  /// Executes one statement and blocks for its Result or Error frame.
  /// A server-side error (including Cancelled) comes back as that
  /// statement's Status — the connection remains usable.
  Result<sql::QueryResult> Execute(const std::string& statement);

  /// Requests cancellation of the statement currently executing on this
  /// connection. Safe to call from any thread while another thread sits
  /// in Execute(); that Execute returns the server's Cancelled error.
  Status Cancel();

  /// Sends Goodbye and closes. The destructor does the same.
  void Close();
  ~VecClient();

  /// The server-side session id (SHOW SESSIONS / CANCEL <id> handle).
  uint64_t session_id() const { return session_id_; }

 private:
  VecClient() = default;

  /// Reads frames until one is decodable; fails on EOF or corruption.
  Result<Frame> ReadFrame();
  /// Sends one whole encoded frame under send_mu_, so a concurrent
  /// Cancel() can never interleave bytes inside a Statement frame.
  Status SendFrame(const Frame& frame) VECDB_EXCLUDES(send_mu_);

  Socket sock_;
  Mutex send_mu_;
  FrameDecoder decoder_;  ///< only the Execute caller reads
  uint64_t session_id_ = 0;
  bool closed_ = false;
};

}  // namespace vecdb::net
