// VecServer: the networked front end over the SQL/Session engine. One
// listener thread accepts loopback TCP connections; one scheduler thread
// multiplexes every connection with poll(2); statements execute on a
// fixed ThreadPool. N clients never cost N OS threads — the thread bill
// is listener + scheduler + worker_threads, regardless of connection
// count. See docs/SERVER.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb::net {

struct ServerOptions {
  /// TCP port to listen on (loopback only). 0 picks an ephemeral port —
  /// read the real one back with VecServer::port(). Must be < 65536.
  uint32_t listen_port = 0;
  /// Connections beyond this are refused with an Error frame at accept
  /// time (PostgreSQL's "too many clients"). Must be >= 1.
  uint32_t max_connections = 64;
  /// Statement-executor pool size. Must be >= 1. Note the engine's
  /// AdmissionController still bounds concurrent statements; this pool
  /// just bounds the threads that run them.
  uint32_t worker_threads = 4;
};

/// A running server. Construct with Start(); the destructor (or Stop())
/// shuts down: stops accepting, cancels in-flight statements, drains the
/// worker pool, and closes every connection.
class VecServer {
 public:
  static Result<std::unique_ptr<VecServer>> Start(sql::MiniDatabase* db,
                                                  const ServerOptions& options);
  ~VecServer();
  VecServer(const VecServer&) = delete;
  VecServer& operator=(const VecServer&) = delete;

  /// The port actually bound (resolves listen_port == 0).
  uint16_t port() const { return port_; }

  /// Currently open client connections.
  size_t connections() const VECDB_EXCLUDES(conns_mu_);

  /// Idempotent orderly shutdown (also run by the destructor).
  void Stop();

 private:
  /// Per-connection state. The scheduler thread owns sock/decoder/
  /// protocol state; `mu` guards only what workers share with the
  /// scheduler (the outbound buffer and the statement queue).
  struct Conn {
    Socket sock;
    std::string peer;
    std::shared_ptr<sql::Session> session;
    FrameDecoder decoder;   ///< scheduler thread only
    bool hello_done = false;  ///< scheduler thread only
    /// Decoder poisoned; reads stop, the connection drains its error
    /// frame and closes. Scheduler thread only.
    bool protocol_failed = false;

    Mutex mu;
    std::vector<uint8_t> out VECDB_GUARDED_BY(mu);
    size_t out_pos VECDB_GUARDED_BY(mu) = 0;
    /// Statements received while one is executing: FIFO, one at a time,
    /// preserving per-connection statement order.
    std::deque<std::string> pending VECDB_GUARDED_BY(mu);
    bool executing VECDB_GUARDED_BY(mu) = false;
    /// Close once the outbound buffer drains (Goodbye or protocol error).
    bool close_after_flush VECDB_GUARDED_BY(mu) = false;
  };

  VecServer(sql::MiniDatabase* db, const ServerOptions& options);

  void ListenerLoop();
  void SchedulerLoop();

  /// Handles every frame currently decodable on `conn`. Returns false if
  /// the connection must be dropped (EOF, protocol error after the error
  /// frame is queued, or decode failure).
  bool PumpFrames(const std::shared_ptr<Conn>& conn);
  bool HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);

  /// Queues `sql` on the connection: executes immediately on the pool if
  /// the connection is idle, else appends to its pending queue.
  void SubmitStatement(const std::shared_ptr<Conn>& conn, std::string sql);
  /// Runs on a pool worker: executes one statement, queues the response,
  /// and chains the next pending statement if any.
  void ExecuteOnWorker(std::shared_ptr<Conn> conn, std::string sql);

  /// Appends an encoded frame to the connection's outbound buffer and
  /// wakes the scheduler to flush it.
  void QueueFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);

  /// Non-blocking flush of the outbound buffer. Returns false when the
  /// connection should be dropped (send failure, or drained with
  /// close_after_flush set).
  bool FlushOut(const std::shared_ptr<Conn>& conn);

  sql::MiniDatabase* const db_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  Socket listen_sock_;
  WakePipe wake_listen_;
  WakePipe wake_sched_;
  std::atomic<bool> stopping_{false};
  /// Serializes pool submission against Stop() destroying the pool:
  /// Submit happens only with this held and stopping_ false.
  Mutex submit_mu_;
  std::unique_ptr<ThreadPool> pool_;

  mutable Mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_ VECDB_GUARDED_BY(conns_mu_);

  std::thread listener_;
  std::thread scheduler_;
  bool stopped_ = false;  ///< Stop() already ran (main thread only)
};

}  // namespace vecdb::net
