// Thin RAII wrappers over the POSIX socket API. This is the ONLY place in
// the tree allowed to touch socket(2)-family calls (enforced by
// tools/lint.py rule raw-socket); everything above it — the frame codec,
// VecServer, VecClient — works in terms of Socket, WakePipe, and Poll.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vecdb::net {

/// One owned socket file descriptor. Move-only; the destructor closes.
/// All methods are plain syscall wrappers — thread safety is the
/// caller's concern (the server never touches one fd from two threads
/// without its own lock).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Creates a TCP listener bound to 127.0.0.1:`port` (0 picks an
  /// ephemeral port — read it back with bound_port()). Loopback only:
  /// this is a test/measurement server, not an exposed service.
  static Result<Socket> ListenTcp(uint16_t port, int backlog);

  /// Blocking connect to `host`:`port` (numeric IPv4 only, e.g.
  /// "127.0.0.1").
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

  /// Accepts one pending connection; fills `peer` with "ip:port".
  /// Blocking unless this listener is non-blocking.
  Result<Socket> Accept(std::string* peer) const;

  /// The port this listener is actually bound to.
  Result<uint16_t> bound_port() const;

  /// Blocking send of the whole buffer (EINTR-retrying). Fails once the
  /// peer is gone; never raises SIGPIPE.
  Status SendAll(const void* data, size_t len) const;

  /// One send(2) call; returns bytes accepted (possibly 0 on a
  /// non-blocking socket with a full buffer). Never raises SIGPIPE.
  Result<size_t> SendSome(const void* data, size_t len) const;

  /// One recv(2) call; returns bytes read, 0 on orderly EOF. On a
  /// non-blocking socket, returns NotSupported("would block") when no
  /// data is ready (callers poll first, so this is rare).
  Result<size_t> RecvSome(void* buf, size_t cap) const;

  Status SetNonBlocking(bool enabled) const;

  /// Disables Nagle so small frames (statements, cancels) are not
  /// delayed behind a timer.
  Status SetNoDelay(bool enabled) const;

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Self-pipe used to interrupt a poll() sleeping on sockets: any thread
/// calls Signal(), the scheduler sees the read end readable and calls
/// Drain(). Both fds are non-blocking so Signal never stalls a writer.
class WakePipe {
 public:
  static Result<WakePipe> Create();
  WakePipe() = default;
  ~WakePipe();
  WakePipe(WakePipe&& other) noexcept;
  WakePipe& operator=(WakePipe&& other) noexcept;
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  void Signal() const;
  void Drain() const;
  int read_fd() const { return read_fd_; }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// One fd's interest and readiness for Poll() — mirrors struct pollfd
/// without leaking <poll.h> into headers.
struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  // Filled by Poll():
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< POLLERR | POLLHUP | POLLNVAL
};

/// poll(2) over `entries`; blocks up to `timeout_ms` (-1 = forever).
/// Returns the number of ready entries (0 on timeout).
Result<int> Poll(std::vector<PollEntry>& entries, int timeout_ms);

}  // namespace vecdb::net
