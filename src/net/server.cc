#include "net/server.h"

#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace vecdb::net {
namespace {

constexpr int kListenBacklog = 64;
/// Scheduler poll timeout: a safety net only — wakeups arrive via the
/// wake pipe, so this bounds how stale a missed edge can get.
constexpr int kPollTimeoutMs = 100;
constexpr size_t kRecvChunk = 4096;

}  // namespace

VecServer::VecServer(sql::MiniDatabase* db, const ServerOptions& options)
    : db_(db), options_(options) {}

Result<std::unique_ptr<VecServer>> VecServer::Start(
    sql::MiniDatabase* db, const ServerOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("VecServer::Start: null database");
  }
  if (options.listen_port > 65535) {
    return Status::InvalidArgument(
        "listen_port must be < 65536, got " +
        std::to_string(options.listen_port));
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.worker_threads < 1) {
    return Status::InvalidArgument("worker_threads must be >= 1");
  }
  std::unique_ptr<VecServer> server(new VecServer(db, options));
  VECDB_ASSIGN_OR_RETURN(
      server->listen_sock_,
      Socket::ListenTcp(static_cast<uint16_t>(options.listen_port),
                        kListenBacklog));
  VECDB_ASSIGN_OR_RETURN(uint16_t port, server->listen_sock_.bound_port());
  server->port_ = port;
  // The listener polls, so accept readiness and shutdown share one wait.
  VECDB_RETURN_NOT_OK(server->listen_sock_.SetNonBlocking(true));
  VECDB_ASSIGN_OR_RETURN(server->wake_listen_, WakePipe::Create());
  VECDB_ASSIGN_OR_RETURN(server->wake_sched_, WakePipe::Create());
  server->pool_ = std::make_unique<ThreadPool>(
      static_cast<int>(options.worker_threads));
  server->listener_ = std::thread([s = server.get()] { s->ListenerLoop(); });
  server->scheduler_ = std::thread([s = server.get()] { s->SchedulerLoop(); });
  return server;
}

VecServer::~VecServer() { Stop(); }

size_t VecServer::connections() const {
  MutexLock lock(conns_mu_);
  return conns_.size();
}

void VecServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  {
    // Once stopping_ is observed under submit_mu_, no thread submits to
    // the pool again, so destroying it below cannot race a Submit.
    MutexLock lock(submit_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_listen_.Signal();
  if (listener_.joinable()) listener_.join();
  // Abort in-flight SELECT scans so the pool drains promptly; statements
  // finish with a Cancelled error, connections stay orderly.
  {
    MutexLock lock(conns_mu_);
    for (const auto& conn : conns_) conn->session->RequestCancel();
  }
  // ~ThreadPool runs every already-queued statement, then joins.
  pool_.reset();
  wake_sched_.Signal();
  if (scheduler_.joinable()) scheduler_.join();
  MutexLock lock(conns_mu_);
  for (const auto& conn : conns_) conn->session->Close();
  conns_.clear();  // Conn destructors close the sockets
}

void VecServer::ListenerLoop() {
  auto& metrics = obs::MetricsRegistry::Global();
  std::vector<PollEntry> entries(2);
  while (!stopping_.load(std::memory_order_acquire)) {
    entries[0] = PollEntry{wake_listen_.read_fd(), true, false};
    entries[1] = PollEntry{listen_sock_.fd(), true, false};
    auto polled = Poll(entries, -1);
    if (!polled.ok()) break;
    if (entries[0].readable) wake_listen_.Drain();
    if (!entries[1].readable) continue;
    std::string peer;
    auto accepted = listen_sock_.Accept(&peer);
    if (!accepted.ok()) continue;  // non-blocking race or transient error
    Socket sock = std::move(*accepted);
    size_t open;
    {
      MutexLock lock(conns_mu_);
      open = conns_.size();
    }
    if (open >= options_.max_connections) {
      metrics.Add(obs::Counter::kServerConnsRejected);
      // Best-effort refusal: one error frame on the still-blocking
      // socket, then close. A client mid-handshake sees a clean error
      // instead of a silent RST.
      Frame frame;
      frame.type = FrameType::kError;
      frame.payload = EncodeError(Status::ResourceExhausted(
          "too many connections (max " +
          std::to_string(options_.max_connections) + ")"));
      const std::vector<uint8_t> bytes = EncodeFrame(frame);
      (void)sock.SendAll(bytes.data(), bytes.size());
      continue;
    }
    if (!sock.SetNoDelay(true).ok() || !sock.SetNonBlocking(true).ok()) {
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(sock);
    conn->peer = peer;
    conn->session = db_->CreateSession();
    conn->session->set_peer(peer);
    metrics.Add(obs::Counter::kServerConnsAccepted);
    {
      MutexLock lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    wake_sched_.Signal();
  }
}

void VecServer::SchedulerLoop() {
  auto& metrics = obs::MetricsRegistry::Global();
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<std::shared_ptr<Conn>> snapshot;
    {
      MutexLock lock(conns_mu_);
      snapshot = conns_;
    }
    std::vector<PollEntry> entries;
    entries.reserve(snapshot.size() + 1);
    entries.push_back(PollEntry{wake_sched_.read_fd(), true, false});
    for (const auto& conn : snapshot) {
      bool want_write;
      {
        MutexLock lock(conn->mu);
        want_write = conn->out_pos < conn->out.size();
      }
      // Always poll for readability: an out-of-band Cancel frame must be
      // seen even while a statement occupies a worker.
      entries.push_back(PollEntry{conn->sock.fd(), true, want_write});
    }
    if (!Poll(entries, kPollTimeoutMs).ok()) break;
    if (entries[0].readable) wake_sched_.Drain();
    std::vector<const Conn*> drop;
    for (size_t i = 0; i < snapshot.size(); ++i) {
      const auto& conn = snapshot[i];
      const PollEntry& e = entries[i + 1];
      bool alive = true;
      if (e.error) alive = false;
      if (alive && e.readable && !conn->protocol_failed) {
        uint8_t buf[kRecvChunk];
        auto got = conn->sock.RecvSome(buf, sizeof(buf));
        if (got.ok()) {
          if (*got == 0) {
            alive = false;  // orderly EOF
          } else {
            metrics.Add(obs::Counter::kServerBytesIn, *got);
            conn->decoder.Feed(buf, *got);
            alive = PumpFrames(conn);
          }
        } else if (!got.status().IsNotSupported()) {
          alive = false;  // read error (would-block is IsNotSupported)
        }
      }
      if (alive) alive = FlushOut(conn);
      if (!alive) drop.push_back(conn.get());
    }
    if (!drop.empty()) {
      MutexLock lock(conns_mu_);
      for (const Conn* dead : drop) {
        for (auto it = conns_.begin(); it != conns_.end(); ++it) {
          if (it->get() == dead) {
            (*it)->session->Close();
            conns_.erase(it);
            break;
          }
        }
      }
    }
  }
}

bool VecServer::PumpFrames(const std::shared_ptr<Conn>& conn) {
  auto& metrics = obs::MetricsRegistry::Global();
  for (;;) {
    auto next = conn->decoder.Next();
    if (!next.ok()) {
      // Malformed stream: answer with one error frame, then close after
      // it flushes. The decoder is poisoned, so stop reading this
      // connection entirely (protocol_failed gates future recv calls).
      metrics.Add(obs::Counter::kServerProtocolErrors);
      conn->protocol_failed = true;
      QueueFrame(conn, Frame{FrameType::kError, EncodeError(next.status())});
      MutexLock lock(conn->mu);
      conn->close_after_flush = true;
      return true;
    }
    if (!next->has_value()) return true;  // torn frame: wait for bytes
    if (!HandleFrame(conn, **next)) return false;
  }
}

bool VecServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                            const Frame& frame) {
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Add(obs::Counter::kServerFramesIn);
  auto protocol_error = [&](const Status& status) {
    metrics.Add(obs::Counter::kServerProtocolErrors);
    QueueFrame(conn, Frame{FrameType::kError, EncodeError(status)});
    MutexLock lock(conn->mu);
    conn->close_after_flush = true;
    return true;  // keep the connection until the error frame flushes
  };
  if (!conn->hello_done) {
    if (frame.type != FrameType::kHello) {
      return protocol_error(
          Status::InvalidArgument("expected Hello as the first frame"));
    }
    auto version = DecodeHello(frame.payload);
    if (!version.ok()) return protocol_error(version.status());
    if (*version != kProtocolVersion) {
      return protocol_error(Status::InvalidArgument(
          "protocol version mismatch: client v" + std::to_string(*version) +
          ", server v" + std::to_string(kProtocolVersion)));
    }
    conn->hello_done = true;
    QueueFrame(conn,
               Frame{FrameType::kHelloOk,
                     EncodeHelloOk(kProtocolVersion, conn->session->id())});
    return true;
  }
  switch (frame.type) {
    case FrameType::kStatement: {
      auto sql = DecodeStatement(frame.payload);
      if (!sql.ok()) return protocol_error(sql.status());
      metrics.Add(obs::Counter::kServerStatements);
      SubmitStatement(conn, std::move(*sql));
      return true;
    }
    case FrameType::kCancel:
      // Out-of-band: acts on the statement in flight immediately, no
      // response frame — the cancelled statement's Error is the answer.
      metrics.Add(obs::Counter::kServerCancelFrames);
      conn->session->RequestCancel();
      return true;
    case FrameType::kGoodbye: {
      MutexLock lock(conn->mu);
      conn->close_after_flush = true;
      return true;
    }
    default:
      return protocol_error(Status::InvalidArgument(
          "unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)) + " from client"));
  }
}

void VecServer::SubmitStatement(const std::shared_ptr<Conn>& conn,
                                std::string sql) {
  {
    MutexLock lock(conn->mu);
    if (conn->executing) {
      // One statement at a time per connection, in arrival order; the
      // finishing worker chains the next one.
      conn->pending.push_back(std::move(sql));
      return;
    }
    conn->executing = true;
  }
  MutexLock lock(submit_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    MutexLock conn_lock(conn->mu);
    conn->executing = false;
    return;
  }
  pool_->Submit([this, conn, sql = std::move(sql)]() mutable {
    ExecuteOnWorker(conn, std::move(sql));
  });
}

void VecServer::ExecuteOnWorker(std::shared_ptr<Conn> conn, std::string sql) {
  auto& metrics = obs::MetricsRegistry::Global();
  Timer timer;
  Result<sql::QueryResult> result = conn->session->Execute(sql);
  metrics.Record(obs::Hist::kServerStatementNanos,
                 static_cast<uint64_t>(timer.ElapsedNanos()));
  Frame frame;
  if (result.ok()) {
    frame.type = FrameType::kResult;
    frame.payload = EncodeQueryResult(*result);
  } else {
    frame.type = FrameType::kError;
    frame.payload = EncodeError(result.status());
  }
  QueueFrame(conn, frame);
  std::string next;
  {
    MutexLock lock(conn->mu);
    if (conn->pending.empty()) {
      conn->executing = false;
      return;
    }
    next = std::move(conn->pending.front());
    conn->pending.pop_front();
    // executing stays true: this worker hands the connection straight to
    // the next statement.
  }
  MutexLock lock(submit_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    MutexLock conn_lock(conn->mu);
    conn->executing = false;
    return;
  }
  pool_->Submit([this, conn = std::move(conn), sql = std::move(next)]() mutable {
    ExecuteOnWorker(std::move(conn), std::move(sql));
  });
}

void VecServer::QueueFrame(const std::shared_ptr<Conn>& conn,
                           const Frame& frame) {
  auto& metrics = obs::MetricsRegistry::Global();
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  metrics.Add(obs::Counter::kServerFramesOut);
  metrics.Add(obs::Counter::kServerBytesOut, bytes.size());
  {
    MutexLock lock(conn->mu);
    conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
  }
  wake_sched_.Signal();
}

bool VecServer::FlushOut(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn->mu);
  while (conn->out_pos < conn->out.size()) {
    auto sent = conn->sock.SendSome(conn->out.data() + conn->out_pos,
                                    conn->out.size() - conn->out_pos);
    if (!sent.ok()) return false;
    if (*sent == 0) return true;  // kernel buffer full; poll for POLLOUT
    conn->out_pos += *sent;
  }
  conn->out.clear();
  conn->out_pos = 0;
  return !conn->close_after_flush;
}

}  // namespace vecdb::net
