// PASE IVF_PQ: page-resident inverted file over product-quantized codes.
// Reproduces RC#1 (no SGEMM), RC#2 (tuple access), RC#5 (PASE K-means),
// RC#6 (n-sized heap), RC#7 (naive per-query precomputed table), and RC#3
// (locked global heap when parallel).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "obs/metrics.h"
#include "pase/pase_common.h"
#include "quantizer/pq.h"
#include "topk/heaps.h"

namespace vecdb::pase {

/// Construction knobs. Names follow the paper's Table II.
struct PaseIvfPqOptions {
  uint32_t num_clusters = 256;  ///< c
  uint32_t pq_m = 16;           ///< m
  uint32_t pq_codes = 256;      ///< c_pq
  double sample_ratio = 0.01;   ///< sr
  int train_iterations = 10;
  uint64_t seed = 42;
  std::string rel_prefix = "pase_ivfpq";
  Profiler* profiler = nullptr;
};

/// Page-resident IVF_PQ index.
class PaseIvfPqIndex final : public VectorIndex {
 public:
  PaseIvfPqIndex(PaseEnv env, uint32_t dim, PaseIvfPqOptions options)
      : env_(env), dim_(dim), options_(options) {}

  Status Build(const float* data, size_t n) override;

  /// aminsert: encodes and appends the new row to its bucket chain.
  Status Insert(const float* vec) override;

  /// amdelete: tombstones a row (PASE marks dead tuples; VACUUM reclaims).
  /// Row ids are assigned contiguously from 0, so anything outside
  /// [0, num_vectors_) was never indexed and reports NotFound.
  Status Delete(int64_t id) override {
    if (id < 0 || id >= static_cast<int64_t>(num_vectors_)) {
      return Status::NotFound("PaseIvfPq::Delete: row " + std::to_string(id) +
                              " not indexed");
    }
    return tombstones_.Mark(id);
  }

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  uint32_t num_clusters() const { return num_clusters_; }
  const float* centroids() const { return centroids_.data(); }

 protected:
  /// Pre-filter: one naive precomputed table (RC#7), then every bucket's
  /// page chain walked with the bitmap gating each code before its ADC
  /// distance.
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// In-filter: nprobe bucket selection unchanged, the bitmap pushed into
  /// the page-chain ADC scans.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  struct BucketChain {
    pgstub::BlockId head = pgstub::kInvalidBlock;
    pgstub::BlockId tail = pgstub::kInvalidBlock;
  };

  Status AppendToBucket(uint32_t bucket, int64_t row_id, const uint8_t* code);
  Result<std::vector<uint32_t>> SelectBuckets(const float* query,
                                              uint32_t nprobe,
                                              Profiler* profiler) const;
  /// `counters` (nullable, owned by the calling worker) picks up tuples
  /// visited / heap pushes / tombstones skipped.
  Status ScanBucket(uint32_t bucket, const float* table, NHeap* collector,
                    Mutex* mu, int64_t* serial_nanos, Profiler* profiler,
                    obs::SearchCounters* counters) const;

  /// ScanBucket with the in-filter bitmap gate: rejected codes skip the
  /// ADC distance and the heap. `bitmap_probes` counts selection tests.
  Status ScanBucketFiltered(uint32_t bucket, const float* table,
                            const filter::SelectionVector& selection,
                            NHeap* collector, Profiler* profiler,
                            obs::SearchCounters* counters,
                            uint64_t* bitmap_probes) const;

  PaseEnv env_;
  uint32_t dim_;
  PaseIvfPqOptions options_;

  uint32_t num_clusters_ = 0;
  size_t num_vectors_ = 0;
  pgstub::RelId centroid_rel_ = pgstub::kInvalidRel;
  pgstub::RelId data_rel_ = pgstub::kInvalidRel;
  std::vector<BucketChain> chains_;
  AlignedFloats centroids_;
  std::optional<ProductQuantizer> pq_;
  TombstoneSet tombstones_;
};

}  // namespace vecdb::pase
