#include "pase/pase_common.h"

namespace vecdb::pase {

// Out-of-line on purpose: PASE pays a function call + hash probe per
// visited check (paper Fig 8's HVTGet), and so do we.
__attribute__((noinline)) bool HashVisitedTable::GetAndSet(uint64_t key) {
  auto [it, inserted] = set_.insert(key);
  (void)it;
  return !inserted;
}

}  // namespace vecdb::pase
