#include "pase/ivf_flat.h"

#include <cstring>

#include "clustering/kmeans.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::pase {

namespace {

void FlushSearchCounters(obs::MetricsRegistry* m,
                         const obs::SearchCounters& sc) {
  sc.FlushTo(m, obs::Counter::kPaseBucketsProbed,
             obs::Counter::kPaseTuplesVisited,
             obs::Counter::kPaseHeapPushes,
             obs::Counter::kPaseTombstonesSkipped);
}

/// Special space of data pages: forward link of the bucket's chain.
struct DataPageSpecial {
  pgstub::BlockId next;
};

// pgvector-mode distance evaluation: the executor dispatches the `<->`
// operator through a function pointer per tuple (SQL expression
// machinery), instead of a direct inlined kernel call.
__attribute__((noinline)) float IndirectL2Sqr(const float* a, const float* b,
                                              size_t d) {
  return L2Sqr(a, b, d);
}
using DistanceFn = float (*)(const float*, const float*, size_t);
volatile DistanceFn g_pgvector_distance = &IndirectL2Sqr;

/// Centroid tuple: id + chain head + vector.
struct CentroidTupleHeader {
  uint32_t cid;
  pgstub::BlockId head;
};
}  // namespace

Status PaseIvfFlatIndex::AppendToBucket(uint32_t bucket, int64_t row_id,
                                        const float* vec) {
  const uint32_t tuple_bytes =
      sizeof(PaseVectorTuple) + dim_ * sizeof(float);
  std::vector<char> tuple(tuple_bytes);
  auto* header = reinterpret_cast<PaseVectorTuple*>(tuple.data());
  header->row_id = row_id;
  header->level = 0;
  std::memcpy(tuple.data() + sizeof(PaseVectorTuple), vec,
              dim_ * sizeof(float));

  BucketChain& chain = chains_[bucket];
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::OK();
    }
    env_.bufmgr->Unpin(handle, false);
  }

  // Chain a fresh page onto the bucket.
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(data_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(sizeof(DataPageSpecial));
  reinterpret_cast<DataPageSpecial*>(page.Special())->next =
      pgstub::kInvalidBlock;
  if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
      pgstub::kInvalidOffset) {
    env_.bufmgr->Unpin(fresh.second, true);
    return Status::Internal("PaseIvfFlat: tuple larger than a page");
  }
  env_.bufmgr->Unpin(fresh.second, true);

  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle prev,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView prev_page(prev.data, env_.bufmgr->page_size());
    reinterpret_cast<DataPageSpecial*>(prev_page.Special())->next =
        fresh.first;
    env_.bufmgr->Unpin(prev, true);
  } else {
    chain.head = fresh.first;
  }
  chain.tail = fresh.first;
  return Status::OK();
}

Status PaseIvfFlatIndex::WriteCentroidPages() {
  const uint32_t tuple_bytes =
      sizeof(CentroidTupleHeader) + dim_ * sizeof(float);
  std::vector<char> tuple(tuple_bytes);
  pgstub::BufferHandle handle;
  bool have_page = false;
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    auto* header = reinterpret_cast<CentroidTupleHeader*>(tuple.data());
    header->cid = c;
    header->head = chains_[c].head;
    std::memcpy(tuple.data() + sizeof(CentroidTupleHeader),
                centroids_.data() + static_cast<size_t>(c) * dim_,
                dim_ * sizeof(float));
    if (have_page) {
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
          pgstub::kInvalidOffset) {
        continue;
      }
      env_.bufmgr->Unpin(handle, true);
      have_page = false;
    }
    VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(centroid_rel_));
    handle = fresh.second;
    have_page = true;
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    page.Init(0);
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::Internal("PaseIvfFlat: centroid tuple exceeds page");
    }
  }
  if (have_page) env_.bufmgr->Unpin(handle, true);
  return Status::OK();
}

Status PaseIvfFlatIndex::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("PaseIvfFlat: bad env");
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("PaseIvfFlat: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("PaseIvfFlat: c > n");
  }
  build_stats_ = {};
  Timer timer;

  // --- Training phase: PASE-style K-means (RC#5), per-pair distances.
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kPaseStyle;
  km.use_sgemm = false;  // RC#1: PASE has no SGEMM path
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // --- Adding phase: naive per-pair assignment (the fvec_L2sqr_ref
  // bottleneck of Fig 3) and page-chain appends through the buffer manager.
  VECDB_ASSIGN_OR_RETURN(centroid_rel_, env_.smgr->CreateRelation(
                                            options_.rel_prefix + "_centroid"));
  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  chains_.assign(num_clusters_, {});

  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, assign.data(), nullptr, nullptr,
                  options_.profiler);
  for (size_t i = 0; i < n; ++i) {
    VECDB_RETURN_NOT_OK(AppendToBucket(assign[i], static_cast<int64_t>(i),
                                       data + i * dim_));
  }
  VECDB_RETURN_NOT_OK(WriteCentroidPages());
  num_vectors_ = n;
  next_row_id_ = static_cast<int64_t>(n);
  build_stats_.add_seconds = timer.ElapsedSeconds();
#ifndef NDEBUG
  CheckInvariants();
#endif
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kPaseBuilds);
  registry.Record(obs::Hist::kPaseBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

Status PaseIvfFlatIndex::Vacuum() {
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("PaseIvfFlat: index not built");
  }
  if (tombstones_.empty()) return Status::OK();

  // Collect live tuples bucket by bucket from the old chains.
  struct LiveRow {
    int64_t row_id;
    std::vector<float> vec;
  };
  std::vector<std::vector<LiveRow>> live(num_clusters_);
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    pgstub::BlockId block = chains_[b].head;
    while (block != pgstub::kInvalidBlock) {
      VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                             env_.bufmgr->Pin(data_rel_, block));
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      const uint16_t count = page.ItemCount();
      for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
        const char* item = page.GetItem(slot);
        const auto* header = reinterpret_cast<const PaseVectorTuple*>(item);
        if (tombstones_.Contains(header->row_id)) continue;
        const float* vec = reinterpret_cast<const float*>(
            item + sizeof(PaseVectorTuple));
        live[b].push_back({header->row_id, {vec, vec + dim_}});
      }
      block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
      env_.bufmgr->Unpin(handle, false);
    }
  }

  // Swap in a fresh data relation and rewrite the chains densely.
  VECDB_RETURN_NOT_OK(env_.bufmgr->InvalidateRelation(data_rel_));
  VECDB_RETURN_NOT_OK(env_.smgr->DropRelation(data_rel_));
  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  chains_.assign(num_clusters_, {});
  size_t total = 0;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    for (const auto& row : live[b]) {
      VECDB_RETURN_NOT_OK(AppendToBucket(b, row.row_id, row.vec.data()));
      ++total;
    }
  }
  num_vectors_ = total;
  tombstones_.Clear();
#ifndef NDEBUG
  CheckInvariants();
#endif
  return Status::OK();
}

Result<bool> PaseIvfFlatIndex::ContainsRow(int64_t row_id) const {
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    pgstub::BlockId block = chains_[b].head;
    while (block != pgstub::kInvalidBlock) {
      VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                             env_.bufmgr->Pin(data_rel_, block));
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      const uint16_t count = page.ItemCount();
      for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
        const auto* header =
            reinterpret_cast<const PaseVectorTuple*>(page.GetItem(slot));
        if (header->row_id == row_id) {
          env_.bufmgr->Unpin(handle, false);
          return true;
        }
      }
      block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
      env_.bufmgr->Unpin(handle, false);
    }
  }
  return false;
}

Status PaseIvfFlatIndex::Delete(int64_t id) {
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("PaseIvfFlat: index not built");
  }
  VECDB_ASSIGN_OR_RETURN(bool stored, ContainsRow(id));
  if (!stored) {
    return Status::NotFound("PaseIvfFlat::Delete: row " + std::to_string(id) +
                            " not indexed");
  }
  return tombstones_.Mark(id);
}

Status PaseIvfFlatIndex::Insert(const float* vec) {
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("PaseIvfFlat: index not built");
  }
  if (vec == nullptr) return Status::InvalidArgument("PaseIvfFlat: null vec");
  uint32_t bucket = 0;
  AssignToNearest(vec, 1, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, &bucket, nullptr);
  VECDB_RETURN_NOT_OK(AppendToBucket(bucket, next_row_id_, vec));
  ++next_row_id_;
  ++num_vectors_;
  return Status::OK();
}

Result<std::vector<uint32_t>> PaseIvfFlatIndex::SelectBuckets(
    const float* query, uint32_t nprobe, Profiler* profiler) const {
  ProfScope scope(profiler, "SelectBuckets");
  KMaxHeap heap(nprobe);
  VECDB_ASSIGN_OR_RETURN(pgstub::BlockId blocks,
                         env_.smgr->NumBlocks(centroid_rel_));
  for (pgstub::BlockId b = 0; b < blocks; ++b) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(centroid_rel_, b));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      const auto* header = reinterpret_cast<const CentroidTupleHeader*>(item);
      const float* vec =
          reinterpret_cast<const float*>(item + sizeof(CentroidTupleHeader));
      heap.Push(L2Sqr(query, vec, dim_), header->cid);
    }
    env_.bufmgr->Unpin(handle, false);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

Status PaseIvfFlatIndex::ScanBucket(uint32_t bucket, const float* query,
                                    NHeap* collector, Mutex* mu,
                                    int64_t* serial_nanos, Profiler* profiler,
                                    obs::SearchCounters* counters) const {
  if (counters != nullptr) ++counters->buckets_probed;
  pgstub::BlockId block = chains_[bucket].head;
  std::vector<const char*> items;
  std::vector<float> dists;
  while (block != pgstub::kInvalidBlock) {
    pgstub::BufferHandle handle;
    items.clear();
    {
      // Tuple access: buffer-manager pin + line-pointer resolution (RC#2).
      ProfScope scope(profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      const uint16_t count = page.ItemCount();
      for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
        items.push_back(page.GetItem(slot));
      }
    }
    dists.resize(items.size());
    {
      ProfScope scope(profiler, "fvec_L2sqr");
      if (options_.pgvector_mode) {
        DistanceFn fn = g_pgvector_distance;
        for (size_t i = 0; i < items.size(); ++i) {
          const float* vec = reinterpret_cast<const float*>(
              items[i] + sizeof(PaseVectorTuple));
          dists[i] = fn(query, vec, dim_);
        }
      } else {
        for (size_t i = 0; i < items.size(); ++i) {
          const float* vec = reinterpret_cast<const float*>(
              items[i] + sizeof(PaseVectorTuple));
          dists[i] = L2Sqr(query, vec, dim_);
        }
      }
    }
    size_t skipped = 0;
    {
      ProfScope scope(profiler, "MinHeap");
      if (mu == nullptr) {
        for (size_t i = 0; i < items.size(); ++i) {
          const auto* header =
              reinterpret_cast<const PaseVectorTuple*>(items[i]);
          if (tombstones_.Contains(header->row_id)) {
            ++skipped;
            continue;
          }
          collector->Push(dists[i], header->row_id);
        }
      } else {
        // RC#3: one lock acquisition per candidate insertion, as PASE's
        // shared global heap does. The whole push loop is serialized work.
        CpuTimer timer;
        for (size_t i = 0; i < items.size(); ++i) {
          const auto* header =
              reinterpret_cast<const PaseVectorTuple*>(items[i]);
          if (tombstones_.Contains(header->row_id)) {
            ++skipped;
            continue;
          }
          MutexLock guard(*mu);
          collector->Push(dists[i], header->row_id);
        }
        if (serial_nanos != nullptr) {
          MutexLock guard(*mu);
          *serial_nanos += timer.ElapsedNanos();
        }
      }
    }
    if (counters != nullptr) {
      counters->tuples_visited += items.size();
      counters->heap_pushes += items.size() - skipped;
      counters->tombstones_skipped += skipped;
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
    env_.bufmgr->Unpin(handle, false);
  }
  return Status::OK();
}

Status PaseIvfFlatIndex::ScanBucketFiltered(
    uint32_t bucket, const float* query,
    const filter::SelectionVector& selection, NHeap* collector,
    Profiler* profiler, obs::SearchCounters* counters,
    uint64_t* bitmap_probes) const {
  if (counters != nullptr) ++counters->buckets_probed;
  pgstub::BlockId block = chains_[bucket].head;
  while (block != pgstub::kInvalidBlock) {
    pgstub::BufferHandle handle;
    {
      // Tuple access still pays the pin + line-pointer cost (RC#2); the
      // bitmap only saves the distance computation and the heap push.
      ProfScope scope(profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      const auto* header = reinterpret_cast<const PaseVectorTuple*>(item);
      ++*bitmap_probes;
      if (header->row_id < 0 ||
          !selection.Test(static_cast<size_t>(header->row_id))) {
        continue;
      }
      if (tombstones_.Contains(header->row_id)) {
        if (counters != nullptr) ++counters->tombstones_skipped;
        continue;
      }
      const float* vec =
          reinterpret_cast<const float*>(item + sizeof(PaseVectorTuple));
      const float dist = L2Sqr(query, vec, dim_);
      collector->Push(dist, header->row_id);
      if (counters != nullptr) {
        ++counters->tuples_visited;
        ++counters->heap_pushes;
      }
    }
    block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
    env_.bufmgr->Unpin(handle, false);
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> PaseIvfFlatIndex::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "PaseIvfFlat::PreFilterSearch"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("PaseIvfFlat: index not built");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);

  NHeap collector;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    VECDB_RETURN_NOT_OK(ScanBucketFiltered(b, query, selection, &collector,
                                           ctx.profiler, sc, &bitmap_probes));
  }
  if (metrics != nullptr) {
    // The exhaustive pass touches every chain; that is not "probing", so
    // the bucket counter stays out of the flush.
    counters.buckets_probed = 0;
    FlushSearchCounters(metrics, counters);
  }
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseIvfFlatIndex::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kIvf,
                                           "PaseIvfFlat::InFilterSearch"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("PaseIvfFlat: index not built");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  VECDB_ASSIGN_OR_RETURN(std::vector<uint32_t> probes,
                         SelectBuckets(query, nprobe, ctx.profiler));

  NHeap collector;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  for (uint32_t b : probes) {
    VECDB_RETURN_NOT_OK(ctx.CheckStop("PaseIvfFlat::InFilterSearch"));
    VECDB_RETURN_NOT_OK(ScanBucketFiltered(b, query, selection, &collector,
                                           ctx.profiler, sc, &bitmap_probes));
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseIvfFlatIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("PaseIvfFlat: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "PaseIvfFlat::Search"));
  if (num_clusters_ == 0) {
    return Status::InvalidArgument("PaseIvfFlat: index not built");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  VECDB_ASSIGN_OR_RETURN(std::vector<uint32_t> probes,
                         SelectBuckets(query, nprobe, ctx.profiler));

  // RC#6: all candidates go into one n-sized heap, popped k times at the
  // end — never a bounded k-heap.
  NHeap collector;

  if (params.num_threads <= 1) {
    CpuTimer timer;
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (uint32_t b : probes) {
      // Cancellation checkpoint at bucket granularity, as in the faisslike
      // engine — the interruption latency is one bucket's scan time.
      VECDB_RETURN_NOT_OK(ctx.CheckStop("PaseIvfFlat::Search"));
      VECDB_RETURN_NOT_OK(ScanBucket(b, query, &collector, nullptr, nullptr,
                                     ctx.profiler, sc));
    }
    if (ctx.accounting != nullptr) {
      if (ctx.accounting->worker_busy_nanos.empty()) {
        ctx.accounting->Reset(1);
      }
      ctx.accounting->worker_busy_nanos[0] += timer.ElapsedNanos();
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    ProfScope scope(ctx.profiler, "MinHeap");
    if (options_.pgvector_mode) {
      // pgvector sorts the full candidate set (ORDER BY semantics) rather
      // than heap-selecting k of n.
      auto all = collector.PopK(collector.size());
      if (all.size() > params.k) all.resize(params.k);
      return all;
    }
    return collector.PopK(params.k);
  }

  // Parallel PASE search: workers share ONE global collector behind a lock.
  ThreadPool pool(params.num_threads);
  Mutex mu;
  int64_t serial_nanos = 0;
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(params.num_threads)) {
    acct->Reset(params.num_threads);
  }
  Status worker_status = Status::OK();
  Mutex status_mu;
  pool.ParallelFor(probes.size(), [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    // Per-worker scratch counters, flushed once at worker exit.
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (size_t i = begin; i < end; ++i) {
      // Workers cannot return through ParallelFor; bail at the next
      // bucket and let the post-join CheckStop raise the Cancelled error.
      if (ctx.StopRequested()) break;
      Status s = ScanBucket(probes[i], query, &collector, &mu, &serial_nanos,
                            nullptr, sc);
      if (!s.ok()) {
        MutexLock guard(status_mu);
        if (worker_status.ok()) worker_status = s;
      }
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    if (acct != nullptr) {
      acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
    }
  });
  VECDB_RETURN_NOT_OK(worker_status);
  VECDB_RETURN_NOT_OK(ctx.CheckStop("PaseIvfFlat::Search"));
  CpuTimer pop_timer;
  auto results = collector.PopK(params.k);
  if (acct != nullptr) {
    // Busy time already includes the serialized push section; move it to
    // the serial term so the model reflects the lock's serialization.
    acct->serial_nanos += serial_nanos + pop_timer.ElapsedNanos();
    for (auto& busy : acct->worker_busy_nanos) {
      busy = std::max<int64_t>(
          0, busy - serial_nanos / static_cast<int64_t>(
                        acct->worker_busy_nanos.size()));
    }
  }
  return results;
}

void PaseIvfFlatIndex::CheckInvariants() const {
  if (num_clusters_ == 0) return;  // not built yet; nothing to audit
  VECDB_CHECK_EQ(chains_.size(), num_clusters_) << "chain count vs clusters";
  VECDB_CHECK_EQ(centroids_.size(),
                 static_cast<size_t>(num_clusters_) * dim_)
      << "centroid matrix truncated";
  VECDB_CHECK_LE(tombstones_.size(), num_vectors_)
      << "more tombstones than stored rows";
  // Walk every bucket's page chain; stored tuples (live + tombstoned, which
  // stay in place until Vacuum) must sum to num_vectors_, and a tail block
  // must terminate its chain.
  size_t stored = 0;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    const BucketChain& chain = chains_[b];
    VECDB_CHECK_EQ(chain.head == pgstub::kInvalidBlock,
                   chain.tail == pgstub::kInvalidBlock)
        << "bucket " << b << " has a head xor a tail";
    pgstub::BlockId block = chain.head;
    pgstub::BlockId last = pgstub::kInvalidBlock;
    while (block != pgstub::kInvalidBlock) {
      auto pinned = env_.bufmgr->Pin(data_rel_, block);
      VECDB_CHECK(pinned.ok())
          << "bucket " << b << " chain pin failed: "
          << pinned.status().ToString();
      pgstub::PageView page(pinned->data, env_.bufmgr->page_size());
      stored += page.ItemCount();
      last = block;
      block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
      env_.bufmgr->Unpin(*pinned, false);
    }
    if (chain.head != pgstub::kInvalidBlock) {
      VECDB_CHECK_EQ(last, chain.tail)
          << "bucket " << b << " chain does not end at its tail";
    }
  }
  VECDB_CHECK_EQ(stored, num_vectors_) << "chain population vs num_vectors";
}

size_t PaseIvfFlatIndex::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(centroid_rel_); r.ok()) blocks += *r;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  return blocks * static_cast<size_t>(env_.bufmgr->page_size());
}

std::string PaseIvfFlatIndex::Describe() const {
  return "pase::IVF_FLAT dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_) + " page=" +
         std::to_string(env_.bufmgr->page_size());
}

}  // namespace vecdb::pase
