// PASE HNSW: the generalized-engine graph index, stored the way the paper
// dissects it in §V-C and §VI-C — vector tuples in heap-style data pages,
// and one adjacency page per vertex holding per-level neighbor lists of
// 24-byte HnswNeighborTuples. Every hop of graph traversal goes through the
// buffer manager (RC#2), visited checks go through a hash table behind a
// function call (HVTGet), neighbor lists are fetched via an out-of-line
// cursor (pasepfirst), and each new adjacency list starts a fresh page
// (RC#4 — the Fig 13 space blow-up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "obs/metrics.h"
#include "pase/pase_common.h"

namespace vecdb::pase {

/// Construction knobs. Names follow the paper's Table II.
struct PaseHnswOptions {
  uint32_t bnn = 16;  ///< base neighbor count (level 0 holds 2*bnn)
  uint32_t efb = 40;  ///< construction queue length
  uint64_t seed = 42;
  std::string rel_prefix = "pase_hnsw";
  Profiler* profiler = nullptr;
};

/// Page-resident HNSW index.
class PaseHnswIndex final : public VectorIndex {
 public:
  PaseHnswIndex(PaseEnv env, uint32_t dim, PaseHnswOptions options)
      : env_(env), dim_(dim), options_(options), rng_(options.seed) {}

  Status Build(const float* data, size_t n) override;

  /// aminsert: inserts one vector through the page-resident graph path.
  Status Insert(const float* vec) override;

  /// amdelete: tombstones a node; it keeps routing but leaves results.
  Status Delete(int64_t id) override;

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  /// Search mutates the shared visited hash table scratch, so concurrent
  /// scans on one instance race.
  bool SupportsConcurrentSearch() const override { return false; }

  /// Relation-file footprint (pages * page size) across the data and
  /// neighbor relations — the Fig 13 / Table IV metric.
  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  int max_level() const { return max_level_; }

 protected:
  /// Pre-filter: walks every data-relation page, gating each vector tuple
  /// on the bitmap before its distance — the graph is never traversed, but
  /// every tuple access still goes through the buffer manager (RC#2).
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// In-filter: greedy upper-level descent unchanged, then a filtered beam
  /// search at level 0 where disallowed vertices still route the traversal
  /// but never enter the result heap.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  /// In-memory vertex locator mirroring HnswGlobalId.
  struct VertexRef {
    pgstub::BlockId nblk = pgstub::kInvalidBlock;
    pgstub::BlockId dblk = pgstub::kInvalidBlock;
    pgstub::OffsetNumber doff = pgstub::kInvalidOffset;

    bool valid() const { return nblk != pgstub::kInvalidBlock; }
  };

  /// A scored vertex during traversal.
  struct Scored {
    float dist;
    VertexRef ref;
    int64_t row_id;
  };

  int RandomLevel();

  /// Creates the data/neighbor relations on first use.
  Status EnsureRelations();

  /// Full insertion path shared by Build and Insert.
  Status AddOne(const float* vec);

  /// Inserts the vector tuple into the data relation.
  Result<VertexRef> InsertVectorTuple(int64_t row_id, int level,
                                      const float* vec);

  /// Creates the vertex's adjacency page (one fresh page per vertex, RC#4)
  /// with empty per-level lists; fills in ref.nblk.
  Status CreateNeighborPage(VertexRef* ref, int level);

  /// Reads a vertex's vector (and row id) through the buffer manager —
  /// the paper's Tuple Access path.
  Status ReadVector(const VertexRef& ref, float* vec, int64_t* row_id,
                    Profiler* profiler) const;

  /// pasepfirst analog: fetches the neighbor entries of `ref` at `level`
  /// into `out` via page indirection. Out-of-line on purpose.
  Status FetchNeighbors(const VertexRef& ref, int level,
                        std::vector<HnswNeighborTuple>* out,
                        Profiler* profiler) const;

  /// Overwrites the neighbor list of `ref` at `level`.
  Status StoreNeighbors(const VertexRef& ref, int level,
                        const std::vector<HnswNeighborTuple>& entries);

  /// Greedy descent at `level` starting from `entry`.
  Result<Scored> GreedyClosest(const float* query, const Scored& entry,
                               int level, Profiler* profiler) const;

  /// Beam search at one level (SearchNbToAdd when called from Add).
  /// `counters` (nullable, query path only) picks up tuples visited and
  /// heap pushes. `ctx` (nullable, query path only) makes the beam loop
  /// poll for cancellation every few pops and fail with Cancelled.
  Result<std::vector<Scored>> SearchLayer(
      const float* query, const Scored& entry, uint32_t ef, int level,
      Profiler* profiler, obs::SearchCounters* counters = nullptr,
      const QueryContext* ctx = nullptr) const;

  /// SearchLayer with the candidate/result heaps decoupled by the bitmap:
  /// every improving vertex feeds the frontier, only selected
  /// non-tombstoned rows enter results. Level 0 only. `bitmap_probes`
  /// counts selection tests.
  Result<std::vector<Scored>> SearchLayerFiltered(
      const float* query, const Scored& entry, uint32_t ef,
      const filter::SelectionVector& selection,
      obs::SearchCounters* counters, uint64_t* bitmap_probes) const;

  /// Neighbor-selection heuristic over page-resident candidate vectors.
  Result<std::vector<Scored>> SelectNeighbors(
      const float* base_vec, const std::vector<Scored>& cands,
      uint32_t max_count, Profiler* profiler) const;

  /// Links node <-> peers at `level`, shrinking overflowing reverse lists.
  Status AddLinks(const VertexRef& node, const float* node_vec,
                  int64_t node_row, const std::vector<Scored>& peers,
                  int level, Profiler* profiler);

  uint32_t LevelCapacity(int level) const {
    return level == 0 ? 2 * options_.bnn : options_.bnn;
  }

  PaseEnv env_;
  uint32_t dim_;
  PaseHnswOptions options_;
  Rng rng_;

  pgstub::RelId data_rel_ = pgstub::kInvalidRel;
  pgstub::RelId nbr_rel_ = pgstub::kInvalidRel;
  size_t num_vectors_ = 0;
  TombstoneSet tombstones_;
  VertexRef entry_point_;
  int64_t entry_row_ = -1;
  int max_level_ = -1;
  mutable HashVisitedTable visited_;
};

}  // namespace vecdb::pase
