// PASE IVF_SQ8: the page-resident counterpart of faisslike::IvfSq8Index —
// centroid pages plus per-bucket chains of SQ8 code tuples, scanned
// through the buffer manager with PASE's n-sized heap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "pase/pase_common.h"
#include "quantizer/sq8.h"
#include "topk/heaps.h"

namespace vecdb::pase {

/// Construction knobs.
struct PaseIvfSq8Options {
  uint32_t num_clusters = 256;
  double sample_ratio = 0.01;
  int train_iterations = 10;
  uint64_t seed = 42;
  std::string rel_prefix = "pase_ivfsq8";
  Profiler* profiler = nullptr;
};

/// Page-resident IVF_SQ8 index.
class PaseIvfSq8Index final : public VectorIndex {
 public:
  PaseIvfSq8Index(PaseEnv env, uint32_t dim, PaseIvfSq8Options options)
      : env_(env), dim_(dim), options_(options) {}

  Status Build(const float* data, size_t n) override;

  /// aminsert: encodes and appends the new row to its bucket chain.
  Status Insert(const float* vec) override;

  /// amdelete: tombstones a row (PASE marks dead tuples; VACUUM reclaims).
  /// Row ids are assigned contiguously from 0, so anything outside
  /// [0, num_vectors_) was never indexed and reports NotFound.
  Status Delete(int64_t id) override {
    if (id < 0 || id >= static_cast<int64_t>(num_vectors_)) {
      return Status::NotFound("PaseIvfSq8::Delete: row " + std::to_string(id) +
                              " not indexed");
    }
    return tombstones_.Mark(id);
  }

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

 protected:
  /// Walks every bucket chain, fast-scanning only the predicate's
  /// survivors page by page (codes stay page-resident; the gather kernel
  /// reads them behind their tuple headers).
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// Probes nprobe chains, testing the bitmap per tuple during the walk.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  struct BucketChain {
    pgstub::BlockId head = pgstub::kInvalidBlock;
    pgstub::BlockId tail = pgstub::kInvalidBlock;
  };

  Status AppendToBucket(uint32_t bucket, int64_t row_id, const uint8_t* code);

  /// Walks one bucket chain, gathering each page's live (and, when
  /// `selection` is non-null, selected) code pointers and running one
  /// gather-kernel call per page while it is pinned.
  Status ScanChain(uint32_t bucket, const Sq8Query& prep,
                   const filter::SelectionVector* selection, NHeap* collector,
                   Profiler* profiler, obs::SearchCounters* counters,
                   uint64_t* bitmap_probes, uint64_t* scan_blocks,
                   uint64_t* scan_codes) const;

  PaseEnv env_;
  uint32_t dim_;
  PaseIvfSq8Options options_;
  uint32_t num_clusters_ = 0;
  size_t num_vectors_ = 0;
  pgstub::RelId data_rel_ = pgstub::kInvalidRel;
  std::vector<BucketChain> chains_;
  AlignedFloats centroids_;
  std::optional<ScalarQuantizer8> sq_;
  TombstoneSet tombstones_;
};

}  // namespace vecdb::pase
