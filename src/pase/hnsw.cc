#include "pase/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"
#include "topk/heaps.h"

namespace vecdb::pase {

namespace {
/// Per-level neighbor list stored as one page item: header + fixed
/// capacity of 24-byte HnswNeighborTuple slots.
struct NeighborListHeader {
  uint16_t level;
  uint16_t count;
  uint32_t capacity;
};
}  // namespace

int PaseHnswIndex::RandomLevel() {
  const double u = rng_.UniformDouble();
  const double mult = 1.0 / std::log(static_cast<double>(options_.bnn));
  return std::min(static_cast<int>(-std::log(u + 1e-30) * mult), 31);
}

Result<PaseHnswIndex::VertexRef> PaseHnswIndex::InsertVectorTuple(
    int64_t row_id, int level, const float* vec) {
  const uint32_t tuple_bytes =
      sizeof(PaseVectorTuple) + dim_ * sizeof(float);
  std::vector<char> tuple(tuple_bytes);
  auto* header = reinterpret_cast<PaseVectorTuple*>(tuple.data());
  header->row_id = row_id;
  header->level = static_cast<uint32_t>(level);
  std::memcpy(tuple.data() + sizeof(PaseVectorTuple), vec,
              dim_ * sizeof(float));

  // Append to the tail data page, extending on overflow.
  VECDB_ASSIGN_OR_RETURN(pgstub::BlockId blocks,
                         env_.smgr->NumBlocks(data_rel_));
  if (blocks > 0) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(data_rel_, blocks - 1));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const pgstub::OffsetNumber slot =
        page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes));
    env_.bufmgr->Unpin(handle, slot != pgstub::kInvalidOffset);
    if (slot != pgstub::kInvalidOffset) {
      VertexRef ref;
      ref.dblk = blocks - 1;
      ref.doff = slot;
      return ref;
    }
  }
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(data_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(0);
  const pgstub::OffsetNumber slot =
      page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes));
  env_.bufmgr->Unpin(fresh.second, true);
  if (slot == pgstub::kInvalidOffset) {
    return Status::Internal("PaseHnsw: vector tuple larger than a page");
  }
  VertexRef ref;
  ref.dblk = fresh.first;
  ref.doff = slot;
  return ref;
}

Status PaseHnswIndex::CreateNeighborPage(VertexRef* ref, int level) {
  // RC#4: every vertex's adjacency lists start on a brand-new page, no
  // matter how little of it they use.
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(nbr_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(0);
  for (int lev = 0; lev <= level; ++lev) {
    const uint32_t cap = LevelCapacity(lev);
    const uint32_t item_bytes =
        sizeof(NeighborListHeader) + cap * sizeof(HnswNeighborTuple);
    std::vector<char> item(item_bytes, 0);
    auto* header = reinterpret_cast<NeighborListHeader*>(item.data());
    header->level = static_cast<uint16_t>(lev);
    header->count = 0;
    header->capacity = cap;
    if (page.AddItem(item.data(), static_cast<uint16_t>(item_bytes)) ==
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(fresh.second, true);
      return Status::ResourceExhausted(
          "PaseHnsw: adjacency lists exceed one page (level " +
          std::to_string(level) + ", bnn " + std::to_string(options_.bnn) +
          ", page " + std::to_string(env_.bufmgr->page_size()) + ")");
    }
  }
  env_.bufmgr->Unpin(fresh.second, true);
  ref->nblk = fresh.first;
  return Status::OK();
}

Status PaseHnswIndex::ReadVector(const VertexRef& ref, float* vec,
                                 int64_t* row_id, Profiler* profiler) const {
  ProfScope scope(profiler, "TupleAccess");
  VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                         env_.bufmgr->Pin(data_rel_, ref.dblk));
  pgstub::PageView page(handle.data, env_.bufmgr->page_size());
  const char* item = page.GetItem(ref.doff);
  if (item == nullptr) {
    env_.bufmgr->Unpin(handle, false);
    return Status::Corruption("PaseHnsw: dangling vertex data pointer");
  }
  const auto* header = reinterpret_cast<const PaseVectorTuple*>(item);
  if (row_id != nullptr) *row_id = header->row_id;
  if (vec != nullptr) {
    std::memcpy(vec, item + sizeof(PaseVectorTuple), dim_ * sizeof(float));
  }
  env_.bufmgr->Unpin(handle, false);
  return Status::OK();
}

// Out-of-line neighbor fetch — the pasepfirst() indirection of Fig 8.
__attribute__((noinline)) Status PaseHnswIndex::FetchNeighbors(
    const VertexRef& ref, int level, std::vector<HnswNeighborTuple>* out,
    Profiler* profiler) const {
  ProfScope scope(profiler, "pasepfirst");
  out->clear();
  VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                         env_.bufmgr->Pin(nbr_rel_, ref.nblk));
  pgstub::PageView page(handle.data, env_.bufmgr->page_size());
  const char* item =
      page.GetItem(static_cast<pgstub::OffsetNumber>(level + 1));
  if (item == nullptr) {
    env_.bufmgr->Unpin(handle, false);
    return Status::Corruption("PaseHnsw: missing neighbor list at level " +
                              std::to_string(level));
  }
  const auto* header = reinterpret_cast<const NeighborListHeader*>(item);
  const auto* entries = reinterpret_cast<const HnswNeighborTuple*>(
      item + sizeof(NeighborListHeader));
  out->assign(entries, entries + header->count);
  env_.bufmgr->Unpin(handle, false);
  return Status::OK();
}

Status PaseHnswIndex::StoreNeighbors(
    const VertexRef& ref, int level,
    const std::vector<HnswNeighborTuple>& entries) {
  VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                         env_.bufmgr->Pin(nbr_rel_, ref.nblk));
  pgstub::PageView page(handle.data, env_.bufmgr->page_size());
  char* item = page.GetItem(static_cast<pgstub::OffsetNumber>(level + 1));
  if (item == nullptr) {
    env_.bufmgr->Unpin(handle, false);
    return Status::Corruption("PaseHnsw: missing neighbor list at level " +
                              std::to_string(level));
  }
  auto* header = reinterpret_cast<NeighborListHeader*>(item);
  if (entries.size() > header->capacity) {
    env_.bufmgr->Unpin(handle, false);
    return Status::Internal("PaseHnsw: neighbor list overflow");
  }
  header->count = static_cast<uint16_t>(entries.size());
  std::memcpy(item + sizeof(NeighborListHeader), entries.data(),
              entries.size() * sizeof(HnswNeighborTuple));
  env_.bufmgr->Unpin(handle, true);
  return Status::OK();
}

Result<PaseHnswIndex::Scored> PaseHnswIndex::GreedyClosest(
    const float* query, const Scored& entry, int level,
    Profiler* profiler) const {
  ProfScope scope(profiler, "GreedyUpdate");
  Scored cur = entry;
  std::vector<HnswNeighborTuple> nbrs;
  std::vector<float> vec(dim_);
  bool improved = true;
  while (improved) {
    improved = false;
    VECDB_RETURN_NOT_OK(FetchNeighbors(cur.ref, level, &nbrs, nullptr));
    for (const auto& nb : nbrs) {
      VertexRef ref{nb.gid.nblkid, nb.gid.dblkid,
                    static_cast<pgstub::OffsetNumber>(nb.gid.doffset)};
      int64_t row = -1;
      VECDB_RETURN_NOT_OK(ReadVector(ref, vec.data(), &row, nullptr));
      const float d = L2Sqr(query, vec.data(), dim_);
      if (d < cur.dist) {
        cur = {d, ref, row};
        improved = true;
      }
    }
  }
  return cur;
}

Result<std::vector<PaseHnswIndex::Scored>> PaseHnswIndex::SearchLayer(
    const float* query, const Scored& entry, uint32_t ef, int level,
    Profiler* profiler, obs::SearchCounters* counters,
    const QueryContext* ctx) const {
  visited_.Reset();
  visited_.GetAndSet(entry.ref.nblk);

  auto cand_greater = [](const Scored& a, const Scored& b) {
    return a.dist > b.dist;
  };
  std::priority_queue<Scored, std::vector<Scored>, decltype(cand_greater)>
      candidates(cand_greater);
  // Bounded max-heap of the ef best results (worst on top).
  auto res_less = [](const Scored& a, const Scored& b) {
    return a.dist < b.dist;
  };
  std::vector<Scored> results;
  results.reserve(ef + 1);

  auto results_push = [&](const Scored& s) {
    results.push_back(s);
    std::push_heap(results.begin(), results.end(), res_less);
    if (results.size() > ef) {
      std::pop_heap(results.begin(), results.end(), res_less);
      results.pop_back();
    }
  };
  auto results_worst = [&]() {
    return results.size() < ef ? std::numeric_limits<float>::infinity()
                               : results.front().dist;
  };

  candidates.push(entry);
  results_push(entry);

  std::vector<HnswNeighborTuple> nbrs;
  std::vector<HnswNeighborTuple> fresh;
  std::vector<float> vec(dim_);
  uint32_t pops = 0;
  while (!candidates.empty()) {
    // Cancellation checkpoint every 32 beam pops — same cadence as the
    // faisslike engine, so both graph scans have bounded abort latency.
    if (ctx != nullptr && (++pops & 31u) == 0u) {
      VECDB_RETURN_NOT_OK(ctx->CheckStop("PaseHnsw::SearchLayer"));
    }
    const Scored c = candidates.top();
    if (results.size() >= ef && c.dist > results_worst()) break;
    candidates.pop();

    // pasepfirst: fetch the adjacency list through page indirection.
    VECDB_RETURN_NOT_OK(FetchNeighbors(c.ref, level, &nbrs, profiler));

    // HVTGet: hash-table visited filtering, one function call per entry.
    fresh.clear();
    {
      ProfScope scope(profiler, "HVTGet");
      for (const auto& nb : nbrs) {
        if (!visited_.GetAndSet(nb.gid.nblkid)) fresh.push_back(nb);
      }
    }

    // Tuple access + distance per unvisited neighbor.
    size_t pushes = 0;
    for (const auto& nb : fresh) {
      VertexRef ref{nb.gid.nblkid, nb.gid.dblkid,
                    static_cast<pgstub::OffsetNumber>(nb.gid.doffset)};
      int64_t row = -1;
      VECDB_RETURN_NOT_OK(ReadVector(ref, vec.data(), &row, profiler));
      float d;
      {
        ProfScope scope(profiler, "fvec_L2sqr");
        d = L2Sqr(query, vec.data(), dim_);
      }
      if (results.size() < ef || d < results_worst()) {
        Scored s{d, ref, row};
        candidates.push(s);
        results_push(s);
        ++pushes;
      }
    }
    if (counters != nullptr) {
      counters->tuples_visited += fresh.size();
      counters->heap_pushes += pushes;
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Scored& a, const Scored& b) { return a.dist < b.dist; });
  return results;
}

Result<std::vector<PaseHnswIndex::Scored>> PaseHnswIndex::SelectNeighbors(
    const float* base_vec, const std::vector<Scored>& cands,
    uint32_t max_count, Profiler* profiler) const {
  (void)base_vec;
  ProfScope scope(profiler, "ShrinkNbList");
  std::vector<Scored> selected;
  std::vector<std::vector<float>> selected_vecs;
  std::vector<float> cand_vec(dim_);
  for (const auto& c : cands) {
    if (selected.size() >= max_count) break;
    VECDB_RETURN_NOT_OK(ReadVector(c.ref, cand_vec.data(), nullptr, nullptr));
    bool keep = true;
    for (const auto& sv : selected_vecs) {
      if (L2Sqr(cand_vec.data(), sv.data(), dim_) < c.dist) {
        keep = false;
        break;
      }
    }
    if (keep) {
      selected.push_back(c);
      selected_vecs.push_back(cand_vec);
    }
  }
  return selected;
}

Status PaseHnswIndex::AddLinks(const VertexRef& node, const float* node_vec,
                               int64_t node_row,
                               const std::vector<Scored>& peers, int level,
                               Profiler* profiler) {
  ProfScope scope(profiler, "AddLink");
  const uint32_t cap = LevelCapacity(level);

  // Forward edges.
  std::vector<HnswNeighborTuple> entries;
  entries.reserve(peers.size());
  for (const auto& p : peers) {
    HnswNeighborTuple t{};
    t.gid = {p.ref.nblk, p.ref.dblk, p.ref.doff};
    entries.push_back(t);
  }
  VECDB_RETURN_NOT_OK(StoreNeighbors(node, level, entries));

  // Reverse edges with heuristic shrink on overflow.
  std::vector<HnswNeighborTuple> plist;
  std::vector<float> peer_vec(dim_);
  std::vector<float> nb_vec(dim_);
  for (const auto& p : peers) {
    VECDB_RETURN_NOT_OK(FetchNeighbors(p.ref, level, &plist, nullptr));
    HnswNeighborTuple mine{};
    mine.gid = {node.nblk, node.dblk, node.doff};
    if (plist.size() < cap) {
      plist.push_back(mine);
      VECDB_RETURN_NOT_OK(StoreNeighbors(p.ref, level, plist));
      continue;
    }
    // Re-rank all of the peer's neighbors plus the new node by distance to
    // the peer, then apply the selection heuristic.
    VECDB_RETURN_NOT_OK(ReadVector(p.ref, peer_vec.data(), nullptr, nullptr));
    std::vector<Scored> merged;
    merged.reserve(plist.size() + 1);
    for (const auto& t : plist) {
      VertexRef ref{t.gid.nblkid, t.gid.dblkid,
                    static_cast<pgstub::OffsetNumber>(t.gid.doffset)};
      int64_t row = -1;
      VECDB_RETURN_NOT_OK(ReadVector(ref, nb_vec.data(), &row, nullptr));
      merged.push_back({L2Sqr(peer_vec.data(), nb_vec.data(), dim_), ref, row});
    }
    merged.push_back(
        {L2Sqr(peer_vec.data(), node_vec, dim_), node, node_row});
    std::sort(merged.begin(), merged.end(),
              [](const Scored& a, const Scored& b) { return a.dist < b.dist; });
    VECDB_ASSIGN_OR_RETURN(std::vector<Scored> kept,
                           SelectNeighbors(peer_vec.data(), merged, cap,
                                           nullptr));
    std::vector<HnswNeighborTuple> stored;
    stored.reserve(kept.size());
    for (const auto& s : kept) {
      HnswNeighborTuple t{};
      t.gid = {s.ref.nblk, s.ref.dblk, s.ref.doff};
      stored.push_back(t);
    }
    VECDB_RETURN_NOT_OK(StoreNeighbors(p.ref, level, stored));
  }
  return Status::OK();
}

Status PaseHnswIndex::EnsureRelations() {
  if (data_rel_ != pgstub::kInvalidRel) return Status::OK();
  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  VECDB_ASSIGN_OR_RETURN(
      nbr_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_nbr"));
  return Status::OK();
}

Status PaseHnswIndex::AddOne(const float* vec) {
  Profiler* profiler = options_.profiler;
  const int64_t row_id = static_cast<int64_t>(num_vectors_);
  const int level = RandomLevel();
  VECDB_ASSIGN_OR_RETURN(VertexRef ref,
                         InsertVectorTuple(row_id, level, vec));
  VECDB_RETURN_NOT_OK(CreateNeighborPage(&ref, level));

  if (num_vectors_ == 0) {
    entry_point_ = ref;
    entry_row_ = 0;
    max_level_ = level;
    ++num_vectors_;
    return Status::OK();
  }

  std::vector<float> entry_vec(dim_);
  VECDB_RETURN_NOT_OK(
      ReadVector(entry_point_, entry_vec.data(), nullptr, nullptr));
  Scored cur{L2Sqr(vec, entry_vec.data(), dim_), entry_point_, entry_row_};
  for (int lev = max_level_; lev > level; --lev) {
    VECDB_ASSIGN_OR_RETURN(cur, GreedyClosest(vec, cur, lev, profiler));
  }

  for (int lev = std::min(level, max_level_); lev >= 0; --lev) {
    std::vector<Scored> cands;
    {
      ProfScope scope(profiler, "SearchNbToAdd");
      VECDB_ASSIGN_OR_RETURN(
          cands, SearchLayer(vec, cur, options_.efb, lev, profiler));
    }
    VECDB_ASSIGN_OR_RETURN(
        std::vector<Scored> selected,
        SelectNeighbors(vec, cands, options_.bnn, profiler));
    VECDB_RETURN_NOT_OK(AddLinks(ref, vec, row_id, selected, lev, profiler));
    if (!cands.empty()) cur = cands.front();
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = ref;
    entry_row_ = row_id;
  }
  ++num_vectors_;
  return Status::OK();
}

Status PaseHnswIndex::Insert(const float* vec) {
  if (!env_.valid()) return Status::InvalidArgument("PaseHnsw: bad env");
  if (vec == nullptr) return Status::InvalidArgument("PaseHnsw: null vec");
  VECDB_RETURN_NOT_OK(EnsureRelations());
  return AddOne(vec);
}

Status PaseHnswIndex::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("PaseHnsw: bad env");
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("PaseHnsw: empty input");
  }
  build_stats_ = {};
  Timer timer;
  VECDB_RETURN_NOT_OK(EnsureRelations());
  for (size_t i = 0; i < n; ++i) {
    VECDB_RETURN_NOT_OK(AddOne(data + i * dim_));
  }
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kPaseBuilds);
  registry.Record(obs::Hist::kPaseBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

Status PaseHnswIndex::Delete(int64_t id) {
  if (id < 0 || static_cast<size_t>(id) >= num_vectors_) {
    return Status::NotFound("no row with id " + std::to_string(id));
  }
  return tombstones_.Mark(id);
}

Result<std::vector<PaseHnswIndex::Scored>> PaseHnswIndex::SearchLayerFiltered(
    const float* query, const Scored& entry, uint32_t ef,
    const filter::SelectionVector& selection, obs::SearchCounters* counters,
    uint64_t* bitmap_probes) const {
  visited_.Reset();
  visited_.GetAndSet(entry.ref.nblk);

  auto allowed = [&](int64_t row_id) {
    ++*bitmap_probes;
    return row_id >= 0 && selection.Test(static_cast<size_t>(row_id)) &&
           !tombstones_.Contains(row_id);
  };

  auto cand_greater = [](const Scored& a, const Scored& b) {
    return a.dist > b.dist;
  };
  std::priority_queue<Scored, std::vector<Scored>, decltype(cand_greater)>
      candidates(cand_greater);
  auto res_less = [](const Scored& a, const Scored& b) {
    return a.dist < b.dist;
  };
  std::vector<Scored> results;
  results.reserve(ef + 1);

  auto results_push = [&](const Scored& s) {
    results.push_back(s);
    std::push_heap(results.begin(), results.end(), res_less);
    if (results.size() > ef) {
      std::pop_heap(results.begin(), results.end(), res_less);
      results.pop_back();
    }
  };
  auto results_worst = [&]() {
    return results.size() < ef ? std::numeric_limits<float>::infinity()
                               : results.front().dist;
  };

  candidates.push(entry);
  if (allowed(entry.row_id)) results_push(entry);

  std::vector<HnswNeighborTuple> nbrs;
  std::vector<HnswNeighborTuple> fresh;
  std::vector<float> vec(dim_);
  while (!candidates.empty()) {
    const Scored c = candidates.top();
    if (results.size() >= ef && c.dist > results_worst()) break;
    candidates.pop();

    VECDB_RETURN_NOT_OK(FetchNeighbors(c.ref, 0, &nbrs, nullptr));
    fresh.clear();
    for (const auto& nb : nbrs) {
      if (!visited_.GetAndSet(nb.gid.nblkid)) fresh.push_back(nb);
    }

    size_t pushes = 0;
    for (const auto& nb : fresh) {
      VertexRef ref{nb.gid.nblkid, nb.gid.dblkid,
                    static_cast<pgstub::OffsetNumber>(nb.gid.doffset)};
      int64_t row = -1;
      VECDB_RETURN_NOT_OK(ReadVector(ref, vec.data(), &row, nullptr));
      const float d = L2Sqr(query, vec.data(), dim_);
      if (results.size() < ef || d < results_worst()) {
        Scored s{d, ref, row};
        // Disallowed vertices still route the frontier; only selected
        // live rows can enter the result heap.
        candidates.push(s);
        if (allowed(row)) {
          results_push(s);
          ++pushes;
        }
      }
    }
    if (counters != nullptr) {
      counters->tuples_visited += fresh.size();
      counters->heap_pushes += pushes;
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Scored& a, const Scored& b) { return a.dist < b.dist; });
  return results;
}

Result<std::vector<Neighbor>> PaseHnswIndex::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "PaseHnsw::PreFilterSearch"));
  if (num_vectors_ == 0) {
    return Status::InvalidArgument("PaseHnsw: index is empty");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);

  obs::SearchCounters counters;
  NHeap collector;
  VECDB_ASSIGN_OR_RETURN(pgstub::BlockId blocks,
                         env_.smgr->NumBlocks(data_rel_));
  for (pgstub::BlockId b = 0; b < blocks; ++b) {
    pgstub::BufferHandle handle;
    {
      ProfScope scope(ctx.profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, b));
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      const auto* header = reinterpret_cast<const PaseVectorTuple*>(item);
      if (header->row_id < 0 ||
          !selection.Test(static_cast<size_t>(header->row_id))) {
        continue;
      }
      if (tombstones_.Contains(header->row_id)) {
        ++counters.tombstones_skipped;
        continue;
      }
      const float* vec =
          reinterpret_cast<const float*>(item + sizeof(PaseVectorTuple));
      collector.Push(L2Sqr(query, vec, dim_), header->row_id);
      ++counters.tuples_visited;
      ++counters.heap_pushes;
    }
    env_.bufmgr->Unpin(handle, false);
  }
  if (metrics != nullptr) {
    counters.FlushTo(metrics, obs::Counter::kPaseBucketsProbed,
                     obs::Counter::kPaseTuplesVisited,
                     obs::Counter::kPaseHeapPushes,
                     obs::Counter::kPaseTombstonesSkipped);
  }
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseHnswIndex::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kGraph,
                                           "PaseHnsw::InFilterSearch"));
  if (num_vectors_ == 0) {
    return Status::InvalidArgument("PaseHnsw: index is empty");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;

  std::vector<float> entry_vec(dim_);
  VECDB_RETURN_NOT_OK(
      ReadVector(entry_point_, entry_vec.data(), nullptr, ctx.profiler));
  Scored cur{L2Sqr(query, entry_vec.data(), dim_), entry_point_, entry_row_};
  for (int lev = max_level_; lev > 0; --lev) {
    VECDB_ASSIGN_OR_RETURN(cur, GreedyClosest(query, cur, lev, ctx.profiler));
  }
  // No tombstone over-fetch: tombstones are filtered inside the beam.
  const uint32_t ef =
      std::max<uint32_t>(params.efs, static_cast<uint32_t>(params.k));
  uint64_t bitmap_probes = 0;
  VECDB_ASSIGN_OR_RETURN(
      std::vector<Scored> found,
      SearchLayerFiltered(query, cur, ef, selection, sc, &bitmap_probes));
  std::vector<Neighbor> out;
  out.reserve(std::min(found.size(), params.k));
  for (const auto& s : found) {
    if (out.size() >= params.k) break;
    out.push_back({s.dist, s.row_id});
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kPaseQueries);
    counters.FlushTo(metrics, obs::Counter::kPaseBucketsProbed,
                     obs::Counter::kPaseTuplesVisited,
                     obs::Counter::kPaseHeapPushes,
                     obs::Counter::kPaseTombstonesSkipped);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return out;
}

Result<std::vector<Neighbor>> PaseHnswIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) return Status::InvalidArgument("PaseHnsw: null query");
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kGraph, "PaseHnsw::Search"));
  if (num_vectors_ == 0) {
    return Status::InvalidArgument("PaseHnsw: index is empty");
  }
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;

  std::vector<float> entry_vec(dim_);
  VECDB_RETURN_NOT_OK(
      ReadVector(entry_point_, entry_vec.data(), nullptr, ctx.profiler));
  Scored cur{L2Sqr(query, entry_vec.data(), dim_), entry_point_, entry_row_};
  for (int lev = max_level_; lev > 0; --lev) {
    VECDB_ASSIGN_OR_RETURN(cur, GreedyClosest(query, cur, lev, ctx.profiler));
  }
  const uint32_t ef = std::max<uint32_t>(
      params.efs, static_cast<uint32_t>(params.k + tombstones_.size()));
  VECDB_ASSIGN_OR_RETURN(
      std::vector<Scored> found,
      SearchLayer(query, cur, ef, 0, ctx.profiler, sc, &ctx));
  // Beams shorter than one checkpoint interval still honor a stop
  // request: never return partial results for a cancelled statement.
  VECDB_RETURN_NOT_OK(ctx.CheckStop("PaseHnsw::Search"));
  std::vector<Neighbor> out;
  out.reserve(std::min(found.size(), params.k));
  for (const auto& s : found) {
    if (out.size() >= params.k) break;
    if (tombstones_.Contains(s.row_id)) {
      ++counters.tombstones_skipped;
      continue;
    }
    out.push_back({s.dist, s.row_id});
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kPaseQueries);
    counters.FlushTo(metrics, obs::Counter::kPaseBucketsProbed,
                     obs::Counter::kPaseTuplesVisited,
                     obs::Counter::kPaseHeapPushes,
                     obs::Counter::kPaseTombstonesSkipped);
  }
  return out;
}

size_t PaseHnswIndex::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  if (auto r = env_.smgr->NumBlocks(nbr_rel_); r.ok()) blocks += *r;
  return blocks * static_cast<size_t>(env_.bufmgr->page_size());
}

std::string PaseHnswIndex::Describe() const {
  return "pase::HNSW dim=" + std::to_string(dim_) +
         " bnn=" + std::to_string(options_.bnn) +
         " page=" + std::to_string(env_.bufmgr->page_size());
}

}  // namespace vecdb::pase
