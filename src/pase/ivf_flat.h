// PASE IVF_FLAT: the generalized-engine inverted file, stored in
// PostgreSQL-style pages (centroid pages + per-bucket chains of data pages)
// and searched through the buffer manager. Faithfully reproduces the
// paper's root causes: no SGEMM in the adding phase (RC#1), tuple access
// via page indirection (RC#2), an n-sized result heap (RC#6), PASE-style
// K-means (RC#5), and a locked global heap under intra-query parallelism
// (RC#3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/index.h"
#include "core/tombstones.h"
#include "obs/metrics.h"
#include "pase/pase_common.h"
#include "topk/heaps.h"

namespace vecdb::pase {

/// Construction knobs. Names follow the paper's Table II.
struct PaseIvfFlatOptions {
  uint32_t num_clusters = 256;  ///< c
  double sample_ratio = 0.01;   ///< sr (PASE expresses this as x/1000)
  int train_iterations = 10;
  uint64_t seed = 42;
  std::string rel_prefix = "pase_ivfflat";  ///< relation name prefix
  Profiler* profiler = nullptr;
  /// Fig 2 comparison point: emulate pgvector's slower executor — distance
  /// evaluated through per-tuple operator dispatch and results fully sorted
  /// instead of heap-selected.
  bool pgvector_mode = false;
};

/// Page-resident IVF_FLAT index.
class PaseIvfFlatIndex final : public VectorIndex {
 public:
  PaseIvfFlatIndex(PaseEnv env, uint32_t dim, PaseIvfFlatOptions options)
      : env_(env), dim_(dim), options_(options) {}

  Status Build(const float* data, size_t n) override;

  /// aminsert: assigns the new row to its bucket chain.
  Status Insert(const float* vec) override;

  /// amdelete: tombstones a row (PASE marks dead tuples; VACUUM reclaims).
  /// NotFound if the row id is not stored in any page chain — which
  /// includes ids reclaimed by a previous Vacuum.
  Status Delete(int64_t id) override;

  /// VACUUM: rewrites the bucket chains without dead tuples, reclaiming
  /// pages and clearing the tombstone set.
  Status Vacuum();

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params) const override;

  /// Relation-file footprint in bytes (pages * page size), which is how a
  /// PostgreSQL index reports its size.
  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return num_vectors_ - tombstones_.size();
  }
  uint32_t Dim() const override { return dim_; }
  std::string Describe() const override;

  /// Aborts if index structure is inconsistent: chain count differing from
  /// the cluster count, page-chain tuple population not summing to the
  /// vector count, more tombstones than rows, or a truncated centroid
  /// matrix. Test/debug hook.
  void CheckInvariants() const;

  /// Trained centroids (row-major, c * dim) for the paper's Fig 15
  /// centroid-transplant experiment.
  const float* centroids() const { return centroids_.data(); }
  uint32_t num_clusters() const { return num_clusters_; }

 protected:
  /// Pre-filter: walks every bucket's page chain with the bitmap gating
  /// each tuple before its distance — an exhaustive filtered scan through
  /// the buffer manager (PASE has no batched kernel path, RC#1).
  Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

  /// In-filter: nprobe bucket selection unchanged, the bitmap pushed into
  /// the page-chain scans so rejected tuples never reach the n-heap.
  Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const override;

 private:
  /// ScanBucket with the in-filter bitmap gate: rejected tuples skip the
  /// distance computation and the heap. `bitmap_probes` counts selection
  /// tests for the filter.bitmap_probes counter. Single-threaded (the
  /// filtered path never shares the collector).
  Status ScanBucketFiltered(uint32_t bucket, const float* query,
                            const filter::SelectionVector& selection,
                            NHeap* collector, Profiler* profiler,
                            obs::SearchCounters* counters,
                            uint64_t* bitmap_probes) const;

  struct BucketChain {
    pgstub::BlockId head = pgstub::kInvalidBlock;
    pgstub::BlockId tail = pgstub::kInvalidBlock;
  };

  /// Appends one vector tuple to a bucket's page chain.
  Status AppendToBucket(uint32_t bucket, int64_t row_id, const float* vec);

  /// Writes centroid tuples into the centroid relation pages.
  Status WriteCentroidPages();

  /// Scans the centroid pages to pick the nprobe closest buckets.
  Result<std::vector<uint32_t>> SelectBuckets(const float* query,
                                              uint32_t nprobe,
                                              Profiler* profiler) const;

  /// Walks one bucket's page chain, appending candidates to `collector`.
  /// Thread-safe when `mu` is non-null (PASE's locked global heap, RC#3);
  /// lock+push time is then charged to `serial_nanos`.
  /// `counters` (nullable, owned by the calling worker) picks up tuples
  /// visited / heap pushes / tombstones skipped.
  Status ScanBucket(uint32_t bucket, const float* query, NHeap* collector,
                    Mutex* mu, int64_t* serial_nanos, Profiler* profiler,
                    obs::SearchCounters* counters) const;

  /// Walks every page chain looking for a stored tuple with `row_id`
  /// (live or tombstoned). Vacuumed rows are gone from the chains.
  Result<bool> ContainsRow(int64_t row_id) const;

  PaseEnv env_;
  uint32_t dim_;
  PaseIvfFlatOptions options_;

  uint32_t num_clusters_ = 0;
  size_t num_vectors_ = 0;
  pgstub::RelId centroid_rel_ = pgstub::kInvalidRel;
  pgstub::RelId data_rel_ = pgstub::kInvalidRel;
  std::vector<BucketChain> chains_;
  AlignedFloats centroids_;  // in-memory copy for build-time assignment
  TombstoneSet tombstones_;
  /// Monotone id source for Insert; never reused, even after Vacuum.
  int64_t next_row_id_ = 0;
};

}  // namespace vecdb::pase
