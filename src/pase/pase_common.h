// Shared definitions of the PASE-like generalized engine: the storage
// environment handle, on-page tuple formats (including the 24-byte
// HNSWNeighborTuple the paper dissects in §VI-C), and the hash-based
// visited table whose HVTGet() calls show up in the paper's Fig 8.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/status.h"
#include "pgstub/bufmgr.h"
#include "pgstub/smgr.h"

namespace vecdb::pase {

/// The PostgreSQL-like runtime a PASE index lives in. Both pointers are
/// borrowed and must outlive the index.
struct PaseEnv {
  pgstub::StorageManager* smgr = nullptr;
  pgstub::BufferManager* bufmgr = nullptr;

  bool valid() const { return smgr != nullptr && bufmgr != nullptr; }
};

/// On-page vector tuple of the PASE data pages: row id + raw floats.
struct PaseVectorTuple {
  int64_t row_id;
  uint32_t level;  // used by HNSW; 0 elsewhere
  // float vec[dim] follows
};

/// The virtual-link half of a PASE neighbor entry (8-byte char pointer in
/// PASE; reproduced as an 8-byte field so the layout cost is identical).
struct PaseTuple {
  uint64_t vlink;
};

/// Physical vertex locator: neighbor page + data tuple address.
struct HnswGlobalId {
  uint32_t nblkid;   ///< block of the vertex's adjacency page
  uint32_t dblkid;   ///< block of the vertex's vector tuple
  uint32_t doffset;  ///< slot of the vertex's vector tuple
};

/// One neighbor slot in a PASE HNSW adjacency list: 24 bytes after
/// alignment (8-byte PaseTuple + 12-byte HnswGlobalId + 4 padding), versus
/// Faiss's 4-byte neighbor id — the first cause of the paper's Fig 13
/// space blow-up (RC#4).
struct HnswNeighborTuple {
  PaseTuple link;
  HnswGlobalId gid;
};
static_assert(sizeof(HnswNeighborTuple) == 24,
              "paper reports 24 bytes for HNSWNeighborTuple");

/// PASE's visited-vector hash table. The lookup is an out-of-line function
/// call into a hash set — deliberately shaped like PASE's HVTGet(), in
/// contrast to Faiss's inlined epoch-stamp array probe.
class HashVisitedTable {
 public:
  void Reset() { set_.clear(); }

  /// Returns true if `key` was already visited, marking it either way.
  bool GetAndSet(uint64_t key);

 private:
  std::unordered_set<uint64_t> set_;
};

}  // namespace vecdb::pase
