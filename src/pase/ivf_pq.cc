#include "pase/ivf_pq.h"

#include <cstring>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::pase {

namespace {

void FlushSearchCounters(obs::MetricsRegistry* m,
                         const obs::SearchCounters& sc) {
  sc.FlushTo(m, obs::Counter::kPaseBucketsProbed,
             obs::Counter::kPaseTuplesVisited,
             obs::Counter::kPaseHeapPushes,
             obs::Counter::kPaseTombstonesSkipped);
}

struct DataPageSpecial {
  pgstub::BlockId next;
};

struct CentroidTupleHeader {
  uint32_t cid;
  pgstub::BlockId head;
};

/// Code tuple: row id + m PQ bytes.
struct CodeTupleHeader {
  int64_t row_id;
};
}  // namespace

Status PaseIvfPqIndex::AppendToBucket(uint32_t bucket, int64_t row_id,
                                      const uint8_t* code) {
  const uint32_t tuple_bytes =
      sizeof(CodeTupleHeader) + static_cast<uint32_t>(pq_->code_size());
  std::vector<char> tuple(tuple_bytes);
  reinterpret_cast<CodeTupleHeader*>(tuple.data())->row_id = row_id;
  std::memcpy(tuple.data() + sizeof(CodeTupleHeader), code, pq_->code_size());

  BucketChain& chain = chains_[bucket];
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::OK();
    }
    env_.bufmgr->Unpin(handle, false);
  }
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(data_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(sizeof(DataPageSpecial));
  reinterpret_cast<DataPageSpecial*>(page.Special())->next =
      pgstub::kInvalidBlock;
  if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
      pgstub::kInvalidOffset) {
    env_.bufmgr->Unpin(fresh.second, true);
    return Status::Internal("PaseIvfPq: tuple larger than a page");
  }
  env_.bufmgr->Unpin(fresh.second, true);
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle prev,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView prev_page(prev.data, env_.bufmgr->page_size());
    reinterpret_cast<DataPageSpecial*>(prev_page.Special())->next =
        fresh.first;
    env_.bufmgr->Unpin(prev, true);
  } else {
    chain.head = fresh.first;
  }
  chain.tail = fresh.first;
  return Status::OK();
}

Status PaseIvfPqIndex::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("PaseIvfPq: bad env");
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("PaseIvfPq: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("PaseIvfPq: c > n");
  }
  build_stats_ = {};
  Timer timer;

  // --- Training: PASE-style coarse K-means and PQ, no SGEMM anywhere.
  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kPaseStyle;
  km.use_sgemm = false;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);

  size_t sample_n = std::max<size_t>(
      options_.pq_codes, static_cast<size_t>(options_.sample_ratio * n));
  sample_n = std::min(sample_n, n);
  Rng rng(options_.seed + 1);
  auto picks = rng.SampleWithoutReplacement(static_cast<uint32_t>(n),
                                            static_cast<uint32_t>(sample_n));
  AlignedFloats sample(sample_n * dim_);
  for (size_t i = 0; i < sample_n; ++i) {
    std::memcpy(sample.data() + i * dim_,
                data + static_cast<size_t>(picks[i]) * dim_,
                dim_ * sizeof(float));
  }
  PqOptions pq_opt;
  pq_opt.num_subvectors = options_.pq_m;
  pq_opt.num_codes = options_.pq_codes;
  pq_opt.max_iterations = options_.train_iterations;
  pq_opt.style = KMeansStyle::kPaseStyle;
  pq_opt.use_sgemm = false;
  pq_opt.seed = options_.seed + 2;
  pq_opt.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(
      ProductQuantizer pq,
      ProductQuantizer::Train(sample.data(), sample_n, dim_, pq_opt));
  pq_.emplace(std::move(pq));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // --- Adding: naive assignment + encode + page-chain append.
  VECDB_ASSIGN_OR_RETURN(centroid_rel_, env_.smgr->CreateRelation(
                                            options_.rel_prefix + "_centroid"));
  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  chains_.assign(num_clusters_, {});

  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, assign.data(), nullptr, nullptr,
                  options_.profiler);
  std::vector<uint8_t> code(pq_->code_size());
  for (size_t i = 0; i < n; ++i) {
    {
      ProfScope scope(options_.profiler, "pq_encode");
      pq_->Encode(data + i * dim_, code.data());
    }
    VECDB_RETURN_NOT_OK(
        AppendToBucket(assign[i], static_cast<int64_t>(i), code.data()));
  }

  // Write centroid pages (same layout as IVF_FLAT).
  const uint32_t tuple_bytes =
      sizeof(CentroidTupleHeader) + dim_ * sizeof(float);
  std::vector<char> tuple(tuple_bytes);
  pgstub::BufferHandle handle;
  bool have_page = false;
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    auto* header = reinterpret_cast<CentroidTupleHeader*>(tuple.data());
    header->cid = c;
    header->head = chains_[c].head;
    std::memcpy(tuple.data() + sizeof(CentroidTupleHeader),
                centroids_.data() + static_cast<size_t>(c) * dim_,
                dim_ * sizeof(float));
    if (have_page) {
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
          pgstub::kInvalidOffset) {
        continue;
      }
      env_.bufmgr->Unpin(handle, true);
      have_page = false;
    }
    VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(centroid_rel_));
    handle = fresh.second;
    have_page = true;
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    page.Init(0);
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::Internal("PaseIvfPq: centroid tuple exceeds page");
    }
  }
  if (have_page) env_.bufmgr->Unpin(handle, true);

  num_vectors_ = n;
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kPaseBuilds);
  registry.Record(obs::Hist::kPaseBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

Status PaseIvfPqIndex::Insert(const float* vec) {
  if (!pq_) return Status::InvalidArgument("PaseIvfPq: index not built");
  if (vec == nullptr) return Status::InvalidArgument("PaseIvfPq: null vec");
  uint32_t bucket = 0;
  AssignToNearest(vec, 1, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, &bucket, nullptr);
  std::vector<uint8_t> code(pq_->code_size());
  pq_->Encode(vec, code.data());
  VECDB_RETURN_NOT_OK(AppendToBucket(
      bucket, static_cast<int64_t>(num_vectors_), code.data()));
  ++num_vectors_;
  return Status::OK();
}

Result<std::vector<uint32_t>> PaseIvfPqIndex::SelectBuckets(
    const float* query, uint32_t nprobe, Profiler* profiler) const {
  ProfScope scope(profiler, "SelectBuckets");
  KMaxHeap heap(nprobe);
  VECDB_ASSIGN_OR_RETURN(pgstub::BlockId blocks,
                         env_.smgr->NumBlocks(centroid_rel_));
  for (pgstub::BlockId b = 0; b < blocks; ++b) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(centroid_rel_, b));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      const auto* header = reinterpret_cast<const CentroidTupleHeader*>(item);
      const float* vec =
          reinterpret_cast<const float*>(item + sizeof(CentroidTupleHeader));
      heap.Push(L2Sqr(query, vec, dim_), header->cid);
    }
    env_.bufmgr->Unpin(handle, false);
  }
  auto sorted = heap.TakeSorted();
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& nb : sorted) out.push_back(static_cast<uint32_t>(nb.id));
  return out;
}

Status PaseIvfPqIndex::ScanBucket(uint32_t bucket, const float* table,
                                  NHeap* collector, Mutex* mu,
                                  int64_t* serial_nanos, Profiler* profiler,
                                  obs::SearchCounters* counters) const {
  if (counters != nullptr) ++counters->buckets_probed;
  pgstub::BlockId block = chains_[bucket].head;
  std::vector<const char*> items;
  std::vector<float> dists;
  while (block != pgstub::kInvalidBlock) {
    pgstub::BufferHandle handle;
    items.clear();
    {
      ProfScope scope(profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      const uint16_t count = page.ItemCount();
      for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
        items.push_back(page.GetItem(slot));
      }
    }
    dists.resize(items.size());
    {
      ProfScope scope(profiler, "adc_scan");
      for (size_t i = 0; i < items.size(); ++i) {
        const uint8_t* code = reinterpret_cast<const uint8_t*>(
            items[i] + sizeof(CodeTupleHeader));
        dists[i] = pq_->AdcDistance(table, code);
      }
    }
    size_t skipped = 0;
    {
      ProfScope scope(profiler, "MinHeap");
      if (mu == nullptr) {
        for (size_t i = 0; i < items.size(); ++i) {
          const auto* header =
              reinterpret_cast<const CodeTupleHeader*>(items[i]);
          if (tombstones_.Contains(header->row_id)) {
            ++skipped;
            continue;
          }
          collector->Push(dists[i], header->row_id);
        }
      } else {
        CpuTimer timer;
        for (size_t i = 0; i < items.size(); ++i) {
          const auto* header =
              reinterpret_cast<const CodeTupleHeader*>(items[i]);
          if (tombstones_.Contains(header->row_id)) {
            ++skipped;
            continue;
          }
          MutexLock guard(*mu);
          collector->Push(dists[i], header->row_id);
        }
        if (serial_nanos != nullptr) {
          MutexLock guard(*mu);
          *serial_nanos += timer.ElapsedNanos();
        }
      }
    }
    if (counters != nullptr) {
      counters->tuples_visited += items.size();
      counters->heap_pushes += items.size() - skipped;
      counters->tombstones_skipped += skipped;
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
    env_.bufmgr->Unpin(handle, false);
  }
  return Status::OK();
}

Status PaseIvfPqIndex::ScanBucketFiltered(
    uint32_t bucket, const float* table,
    const filter::SelectionVector& selection, NHeap* collector,
    Profiler* profiler, obs::SearchCounters* counters,
    uint64_t* bitmap_probes) const {
  if (counters != nullptr) ++counters->buckets_probed;
  pgstub::BlockId block = chains_[bucket].head;
  while (block != pgstub::kInvalidBlock) {
    pgstub::BufferHandle handle;
    {
      ProfScope scope(profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      const auto* header = reinterpret_cast<const CodeTupleHeader*>(item);
      ++*bitmap_probes;
      if (header->row_id < 0 ||
          !selection.Test(static_cast<size_t>(header->row_id))) {
        continue;
      }
      if (tombstones_.Contains(header->row_id)) {
        if (counters != nullptr) ++counters->tombstones_skipped;
        continue;
      }
      const uint8_t* code =
          reinterpret_cast<const uint8_t*>(item + sizeof(CodeTupleHeader));
      collector->Push(pq_->AdcDistance(table, code), header->row_id);
      if (counters != nullptr) {
        ++counters->tuples_visited;
        ++counters->heap_pushes;
      }
    }
    block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
    env_.bufmgr->Unpin(handle, false);
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> PaseIvfPqIndex::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "PaseIvfPq::PreFilterSearch"));
  if (!pq_) return Status::InvalidArgument("PaseIvfPq: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);

  std::vector<float> table(pq_->table_size());
  {
    ProfScope scope(ctx.profiler, "PrecomputedTable");
    pq_->ComputeDistanceTableNaive(query, table.data());
  }

  NHeap collector;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    VECDB_RETURN_NOT_OK(ScanBucketFiltered(b, table.data(), selection,
                                           &collector, ctx.profiler, sc,
                                           &bitmap_probes));
  }
  if (metrics != nullptr) {
    // Exhaustive pass: every chain is touched, so nothing was "probed".
    counters.buckets_probed = 0;
    FlushSearchCounters(metrics, counters);
  }
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseIvfPqIndex::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kIvf,
                                           "PaseIvfPq::InFilterSearch"));
  if (!pq_) return Status::InvalidArgument("PaseIvfPq: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  VECDB_ASSIGN_OR_RETURN(std::vector<uint32_t> probes,
                         SelectBuckets(query, nprobe, ctx.profiler));

  std::vector<float> table(pq_->table_size());
  {
    ProfScope scope(ctx.profiler, "PrecomputedTable");
    pq_->ComputeDistanceTableNaive(query, table.data());
  }

  NHeap collector;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0;
  for (uint32_t b : probes) {
    VECDB_RETURN_NOT_OK(ScanBucketFiltered(b, table.data(), selection,
                                           &collector, ctx.profiler, sc,
                                           &bitmap_probes));
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseIvfPqIndex::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) return Status::InvalidArgument("PaseIvfPq: null query");
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "PaseIvfPq::Search"));
  if (!pq_) return Status::InvalidArgument("PaseIvfPq: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);
  VECDB_ASSIGN_OR_RETURN(std::vector<uint32_t> probes,
                         SelectBuckets(query, nprobe, ctx.profiler));

  // RC#7: the naive per-query precomputed table — one L2 kernel call per
  // (subspace, codeword) pair, recomputed from scratch for every query.
  std::vector<float> table(pq_->table_size());
  {
    ProfScope scope(ctx.profiler, "PrecomputedTable");
    pq_->ComputeDistanceTableNaive(query, table.data());
  }

  NHeap collector;
  if (params.num_threads <= 1) {
    CpuTimer timer;
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (uint32_t b : probes) {
      VECDB_RETURN_NOT_OK(ScanBucket(b, table.data(), &collector, nullptr,
                                     nullptr, ctx.profiler, sc));
    }
    if (ctx.accounting != nullptr) {
      if (ctx.accounting->worker_busy_nanos.empty()) {
        ctx.accounting->Reset(1);
      }
      ctx.accounting->worker_busy_nanos[0] += timer.ElapsedNanos();
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    ProfScope scope(ctx.profiler, "MinHeap");
    return collector.PopK(params.k);
  }

  ThreadPool pool(params.num_threads);
  Mutex mu;
  int64_t serial_nanos = 0;
  ParallelAccounting* acct = ctx.accounting;
  if (acct != nullptr &&
      acct->worker_busy_nanos.size() != static_cast<size_t>(params.num_threads)) {
    acct->Reset(params.num_threads);
  }
  Status worker_status = Status::OK();
  Mutex status_mu;
  pool.ParallelFor(probes.size(), [&](int worker, size_t begin, size_t end) {
    CpuTimer timer;
    // Per-worker scratch counters, flushed once at worker exit.
    obs::SearchCounters counters;
    obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
    for (size_t i = begin; i < end; ++i) {
      Status s = ScanBucket(probes[i], table.data(), &collector, &mu,
                            &serial_nanos, nullptr, sc);
      if (!s.ok()) {
        MutexLock guard(status_mu);
        if (worker_status.ok()) worker_status = s;
      }
    }
    if (metrics != nullptr) FlushSearchCounters(metrics, counters);
    if (acct != nullptr) acct->worker_busy_nanos[worker] += timer.ElapsedNanos();
  });
  VECDB_RETURN_NOT_OK(worker_status);
  CpuTimer pop_timer;
  auto results = collector.PopK(params.k);
  if (acct != nullptr) {
    acct->serial_nanos += serial_nanos + pop_timer.ElapsedNanos();
    for (auto& busy : acct->worker_busy_nanos) {
      busy = std::max<int64_t>(
          0, busy - serial_nanos / static_cast<int64_t>(
                        acct->worker_busy_nanos.size()));
    }
  }
  return results;
}

size_t PaseIvfPqIndex::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(centroid_rel_); r.ok()) blocks += *r;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  size_t bytes = blocks * static_cast<size_t>(env_.bufmgr->page_size());
  if (pq_) {
    // Codebook pages: PASE stores the PQ codebook alongside the index.
    bytes += static_cast<size_t>(pq_->num_subvectors()) * pq_->num_codes() *
             pq_->sub_dim() * sizeof(float);
  }
  return bytes;
}

std::string PaseIvfPqIndex::Describe() const {
  return "pase::IVF_PQ dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_) +
         " m=" + std::to_string(options_.pq_m);
}

}  // namespace vecdb::pase
