#include "pase/ivf_sq8.h"

#include <cstring>

#include "clustering/kmeans.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::pase {

namespace {
struct DataPageSpecial {
  pgstub::BlockId next;
};

struct CodeTupleHeader {
  int64_t row_id;
};
}  // namespace

Status PaseIvfSq8Index::AppendToBucket(uint32_t bucket, int64_t row_id,
                                       const uint8_t* code) {
  const uint32_t tuple_bytes = sizeof(CodeTupleHeader) + dim_;
  std::vector<char> tuple(tuple_bytes);
  reinterpret_cast<CodeTupleHeader*>(tuple.data())->row_id = row_id;
  std::memcpy(tuple.data() + sizeof(CodeTupleHeader), code, dim_);

  BucketChain& chain = chains_[bucket];
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::OK();
    }
    env_.bufmgr->Unpin(handle, false);
  }
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(data_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(sizeof(DataPageSpecial));
  reinterpret_cast<DataPageSpecial*>(page.Special())->next =
      pgstub::kInvalidBlock;
  if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
      pgstub::kInvalidOffset) {
    env_.bufmgr->Unpin(fresh.second, true);
    return Status::Internal("PaseIvfSq8: tuple larger than a page");
  }
  env_.bufmgr->Unpin(fresh.second, true);
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle prev,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView prev_page(prev.data, env_.bufmgr->page_size());
    reinterpret_cast<DataPageSpecial*>(prev_page.Special())->next =
        fresh.first;
    env_.bufmgr->Unpin(prev, true);
  } else {
    chain.head = fresh.first;
  }
  chain.tail = fresh.first;
  return Status::OK();
}

Status PaseIvfSq8Index::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("PaseIvfSq8: bad env");
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("PaseIvfSq8: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("PaseIvfSq8: c > n");
  }
  build_stats_ = {};
  Timer timer;

  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kPaseStyle;
  km.use_sgemm = false;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  VECDB_ASSIGN_OR_RETURN(ScalarQuantizer8 sq,
                         ScalarQuantizer8::Train(data, n, dim_));
  sq_.emplace(std::move(sq));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();

  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  chains_.assign(num_clusters_, {});
  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, assign.data(), nullptr, nullptr,
                  options_.profiler);
  std::vector<uint8_t> code(sq_->code_size());
  for (size_t i = 0; i < n; ++i) {
    sq_->Encode(data + i * dim_, code.data());
    VECDB_RETURN_NOT_OK(
        AppendToBucket(assign[i], static_cast<int64_t>(i), code.data()));
  }
  num_vectors_ = n;
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kPaseBuilds);
  registry.Record(obs::Hist::kPaseBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

Status PaseIvfSq8Index::Insert(const float* vec) {
  if (!sq_) return Status::InvalidArgument("PaseIvfSq8: index not built");
  if (vec == nullptr) return Status::InvalidArgument("PaseIvfSq8: null vec");
  uint32_t bucket = 0;
  AssignToNearest(vec, 1, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, &bucket, nullptr);
  std::vector<uint8_t> code(sq_->code_size());
  sq_->Encode(vec, code.data());
  VECDB_RETURN_NOT_OK(AppendToBucket(
      bucket, static_cast<int64_t>(num_vectors_), code.data()));
  ++num_vectors_;
  return Status::OK();
}

Result<std::vector<Neighbor>> PaseIvfSq8Index::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("PaseIvfSq8: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "PaseIvfSq8::Search"));
  if (!sq_) return Status::InvalidArgument("PaseIvfSq8: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);

  KMaxHeap centroid_heap(nprobe);
  {
    ProfScope scope(ctx.profiler, "SelectBuckets");
    for (uint32_t c = 0; c < num_clusters_; ++c) {
      centroid_heap.Push(
          L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                dim_),
          c);
    }
  }

  obs::SearchCounters counters;
  NHeap collector;  // RC#6 applies to every PASE IVF index
  for (const auto& probe : centroid_heap.TakeSorted()) {
    ++counters.buckets_probed;
    pgstub::BlockId block = chains_[static_cast<uint32_t>(probe.id)].head;
    while (block != pgstub::kInvalidBlock) {
      pgstub::BufferHandle handle;
      {
        ProfScope scope(ctx.profiler, "TupleAccess");
        VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
      }
      pgstub::PageView page(handle.data, env_.bufmgr->page_size());
      const uint16_t count = page.ItemCount();
      {
        ProfScope scope(ctx.profiler, "sq8_scan");
        size_t skipped = 0;
        for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
          const char* item = page.GetItem(slot);
          const auto* header =
              reinterpret_cast<const CodeTupleHeader*>(item);
          if (tombstones_.Contains(header->row_id)) {
            ++skipped;
            continue;
          }
          const uint8_t* code = reinterpret_cast<const uint8_t*>(
              item + sizeof(CodeTupleHeader));
          collector.Push(sq_->DistanceToCode(query, code), header->row_id);
        }
        counters.tuples_visited += count;
        counters.heap_pushes += count - skipped;
        counters.tombstones_skipped += skipped;
      }
      block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
      env_.bufmgr->Unpin(handle, false);
    }
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kPaseQueries);
    counters.FlushTo(metrics, obs::Counter::kPaseBucketsProbed,
                     obs::Counter::kPaseTuplesVisited,
                     obs::Counter::kPaseHeapPushes,
                     obs::Counter::kPaseTombstonesSkipped);
  }
  ProfScope scope(ctx.profiler, "MinHeap");
  return collector.PopK(params.k);
}

size_t PaseIvfSq8Index::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  return blocks * static_cast<size_t>(env_.bufmgr->page_size()) +
         centroids_.size() * sizeof(float);
}

std::string PaseIvfSq8Index::Describe() const {
  return "pase::IVF_SQ8 dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_);
}

}  // namespace vecdb::pase
