#include "pase/ivf_sq8.h"

#include <cstring>

#include "clustering/kmeans.h"
#include "common/timer.h"
#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb::pase {

namespace {
struct DataPageSpecial {
  pgstub::BlockId next;
};

struct CodeTupleHeader {
  int64_t row_id;
};

void FlushSearchCounters(obs::MetricsRegistry* m,
                         const obs::SearchCounters& sc) {
  sc.FlushTo(m, obs::Counter::kPaseBucketsProbed,
             obs::Counter::kPaseTuplesVisited,
             obs::Counter::kPaseHeapPushes,
             obs::Counter::kPaseTombstonesSkipped);
}

void FlushFastScan(obs::MetricsRegistry* m, uint64_t blocks, uint64_t codes) {
  if (m == nullptr) return;
  m->AddUnchecked(obs::Counter::kKernelSq8Blocks, blocks);
  m->AddUnchecked(obs::Counter::kKernelSq8Codes, codes);
}
}  // namespace

Status PaseIvfSq8Index::AppendToBucket(uint32_t bucket, int64_t row_id,
                                       const uint8_t* code) {
  const uint32_t tuple_bytes = sizeof(CodeTupleHeader) + dim_;
  std::vector<char> tuple(tuple_bytes);
  reinterpret_cast<CodeTupleHeader*>(tuple.data())->row_id = row_id;
  std::memcpy(tuple.data() + sizeof(CodeTupleHeader), code, dim_);

  BucketChain& chain = chains_[bucket];
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle handle,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) !=
        pgstub::kInvalidOffset) {
      env_.bufmgr->Unpin(handle, true);
      return Status::OK();
    }
    env_.bufmgr->Unpin(handle, false);
  }
  VECDB_ASSIGN_OR_RETURN(auto fresh, env_.bufmgr->NewPage(data_rel_));
  pgstub::PageView page(fresh.second.data, env_.bufmgr->page_size());
  page.Init(sizeof(DataPageSpecial));
  reinterpret_cast<DataPageSpecial*>(page.Special())->next =
      pgstub::kInvalidBlock;
  if (page.AddItem(tuple.data(), static_cast<uint16_t>(tuple_bytes)) ==
      pgstub::kInvalidOffset) {
    env_.bufmgr->Unpin(fresh.second, true);
    return Status::Internal("PaseIvfSq8: tuple larger than a page");
  }
  env_.bufmgr->Unpin(fresh.second, true);
  if (chain.tail != pgstub::kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(pgstub::BufferHandle prev,
                           env_.bufmgr->Pin(data_rel_, chain.tail));
    pgstub::PageView prev_page(prev.data, env_.bufmgr->page_size());
    reinterpret_cast<DataPageSpecial*>(prev_page.Special())->next =
        fresh.first;
    env_.bufmgr->Unpin(prev, true);
  } else {
    chain.head = fresh.first;
  }
  chain.tail = fresh.first;
  return Status::OK();
}

Status PaseIvfSq8Index::Build(const float* data, size_t n) {
  if (!env_.valid()) return Status::InvalidArgument("PaseIvfSq8: bad env");
  if (data == nullptr || n == 0) {
    return Status::InvalidArgument("PaseIvfSq8: empty input");
  }
  if (options_.num_clusters > n) {
    return Status::InvalidArgument("PaseIvfSq8: c > n");
  }
  build_stats_ = {};
  Timer timer;

  KMeansOptions km;
  km.num_clusters = options_.num_clusters;
  km.max_iterations = options_.train_iterations;
  km.sample_ratio = options_.sample_ratio;
  km.style = KMeansStyle::kPaseStyle;
  km.use_sgemm = false;
  km.seed = options_.seed;
  km.profiler = options_.profiler;
  VECDB_ASSIGN_OR_RETURN(KMeansModel model, TrainKMeans(data, n, dim_, km));
  num_clusters_ = model.num_clusters;
  centroids_.Resize(0);
  centroids_.Append(model.centroids.data(),
                    static_cast<size_t>(num_clusters_) * dim_);
  VECDB_ASSIGN_OR_RETURN(ScalarQuantizer8 sq,
                         ScalarQuantizer8::Train(data, n, dim_));
  sq_.emplace(std::move(sq));
  build_stats_.train_seconds = timer.ElapsedSeconds();
  timer.Reset();

  VECDB_ASSIGN_OR_RETURN(
      data_rel_, env_.smgr->CreateRelation(options_.rel_prefix + "_data"));
  chains_.assign(num_clusters_, {});
  std::vector<uint32_t> assign(n);
  AssignToNearest(data, n, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, assign.data(), nullptr, nullptr,
                  options_.profiler);
  std::vector<uint8_t> code(sq_->code_size());
  for (size_t i = 0; i < n; ++i) {
    sq_->Encode(data + i * dim_, code.data());
    VECDB_RETURN_NOT_OK(
        AppendToBucket(assign[i], static_cast<int64_t>(i), code.data()));
  }
  num_vectors_ = n;
  build_stats_.add_seconds = timer.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.Add(obs::Counter::kPaseBuilds);
  registry.Record(obs::Hist::kPaseBuildNanos,
                  static_cast<uint64_t>(build_stats_.total_seconds() * 1e9));
  return Status::OK();
}

Status PaseIvfSq8Index::Insert(const float* vec) {
  if (!sq_) return Status::InvalidArgument("PaseIvfSq8: index not built");
  if (vec == nullptr) return Status::InvalidArgument("PaseIvfSq8: null vec");
  uint32_t bucket = 0;
  AssignToNearest(vec, 1, dim_, centroids_.data(), num_clusters_,
                  /*use_sgemm=*/false, &bucket, nullptr);
  std::vector<uint8_t> code(sq_->code_size());
  sq_->Encode(vec, code.data());
  VECDB_RETURN_NOT_OK(AppendToBucket(
      bucket, static_cast<int64_t>(num_vectors_), code.data()));
  ++num_vectors_;
  return Status::OK();
}

Status PaseIvfSq8Index::ScanChain(uint32_t bucket, const Sq8Query& prep,
                                  const filter::SelectionVector* selection,
                                  NHeap* collector, Profiler* profiler,
                                  obs::SearchCounters* counters,
                                  uint64_t* bitmap_probes,
                                  uint64_t* scan_blocks,
                                  uint64_t* scan_codes) const {
  // Per-page scratch: code tuples are interleaved with their headers, so
  // each page's live codes are gathered by pointer and handed to one
  // gather-kernel call while the page is pinned.
  thread_local std::vector<const uint8_t*> codes;
  thread_local std::vector<int64_t> row_ids;
  thread_local std::vector<float> dists;
  pgstub::BlockId block = chains_[bucket].head;
  while (block != pgstub::kInvalidBlock) {
    pgstub::BufferHandle handle;
    {
      ProfScope scope(profiler, "TupleAccess");
      VECDB_ASSIGN_OR_RETURN(handle, env_.bufmgr->Pin(data_rel_, block));
    }
    pgstub::PageView page(handle.data, env_.bufmgr->page_size());
    const uint16_t count = page.ItemCount();
    {
      ProfScope scope(profiler, "sq8_scan");
      codes.clear();
      row_ids.clear();
      size_t skipped = 0;
      for (pgstub::OffsetNumber slot = 1; slot <= count; ++slot) {
        const char* item = page.GetItem(slot);
        const auto* header = reinterpret_cast<const CodeTupleHeader*>(item);
        if (selection != nullptr) {
          ++*bitmap_probes;
          if (header->row_id < 0 ||
              !selection->Test(static_cast<size_t>(header->row_id))) {
            continue;
          }
        }
        if (tombstones_.Contains(header->row_id)) {
          ++skipped;
          continue;
        }
        codes.push_back(reinterpret_cast<const uint8_t*>(
            item + sizeof(CodeTupleHeader)));
        row_ids.push_back(header->row_id);
      }
      if (!codes.empty()) {
        dists.resize(codes.size());
        sq_->DistanceToCodesGather(prep, codes.data(), codes.size(),
                                   dists.data());
        *scan_blocks += (codes.size() + Sq8CodeStore::kBlockCodes - 1) /
                        Sq8CodeStore::kBlockCodes;
        *scan_codes += codes.size();
        for (size_t i = 0; i < row_ids.size(); ++i) {
          collector->Push(dists[i], row_ids[i]);
        }
      }
      if (counters != nullptr) {
        counters->tuples_visited +=
            selection != nullptr ? codes.size() : count;
        counters->heap_pushes += codes.size();
        counters->tombstones_skipped += skipped;
      }
    }
    block = reinterpret_cast<const DataPageSpecial*>(page.Special())->next;
    env_.bufmgr->Unpin(handle, false);
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> PaseIvfSq8Index::Search(
    const float* query, const SearchParams& params) const {
  if (query == nullptr) {
    return Status::InvalidArgument("PaseIvfSq8: null query");
  }
  VECDB_RETURN_NOT_OK(
      ValidateSearchParams(params, IndexKind::kIvf, "PaseIvfSq8::Search"));
  if (!sq_) return Status::InvalidArgument("PaseIvfSq8: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);

  KMaxHeap centroid_heap(nprobe);
  {
    ProfScope scope(ctx.profiler, "SelectBuckets");
    for (uint32_t c = 0; c < num_clusters_; ++c) {
      centroid_heap.Push(
          L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_,
                dim_),
          c);
    }
  }

  const Sq8Query prep = sq_->PrepareQuery(query);
  obs::SearchCounters counters;
  uint64_t scan_blocks = 0, scan_codes = 0;
  NHeap collector;  // RC#6 applies to every PASE IVF index
  for (const auto& probe : centroid_heap.TakeSorted()) {
    ++counters.buckets_probed;
    VECDB_RETURN_NOT_OK(ScanChain(static_cast<uint32_t>(probe.id), prep,
                                  /*selection=*/nullptr, &collector,
                                  ctx.profiler, &counters,
                                  /*bitmap_probes=*/nullptr, &scan_blocks,
                                  &scan_codes));
  }
  if (metrics != nullptr) {
    metrics->AddUnchecked(obs::Counter::kPaseQueries);
    FlushSearchCounters(metrics, counters);
    FlushFastScan(metrics, scan_blocks, scan_codes);
  }
  ProfScope scope(ctx.profiler, "MinHeap");
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseIvfSq8Index::PreFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kFlat,
                                           "PaseIvfSq8::PreFilterSearch"));
  if (!sq_) return Status::InvalidArgument("PaseIvfSq8: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);

  const Sq8Query prep = sq_->PrepareQuery(query);
  NHeap collector;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0, scan_blocks = 0, scan_codes = 0;
  for (uint32_t b = 0; b < num_clusters_; ++b) {
    VECDB_RETURN_NOT_OK(ScanChain(b, prep, &selection, &collector,
                                  ctx.profiler, sc, &bitmap_probes,
                                  &scan_blocks, &scan_codes));
  }
  if (metrics != nullptr) {
    // The exhaustive pass touches every chain; that is not "probing", so
    // the bucket counter stays out of the flush.
    counters.buckets_probed = 0;
    FlushSearchCounters(metrics, counters);
    FlushFastScan(metrics, scan_blocks, scan_codes);
  }
  return collector.PopK(params.k);
}

Result<std::vector<Neighbor>> PaseIvfSq8Index::InFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    const SearchParams& params) const {
  VECDB_RETURN_NOT_OK(ValidateSearchParams(params, IndexKind::kIvf,
                                           "PaseIvfSq8::InFilterSearch"));
  if (!sq_) return Status::InvalidArgument("PaseIvfSq8: index not built");
  const QueryContext ctx = params.Context();
  obs::MetricsRegistry* metrics = ctx.live_metrics();
  obs::LatencyScope latency(metrics, obs::Hist::kPaseSearchNanos);
  if (metrics != nullptr) metrics->AddUnchecked(obs::Counter::kPaseQueries);
  const uint32_t nprobe = std::min(params.nprobe, num_clusters_);

  KMaxHeap centroid_heap(nprobe);
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    centroid_heap.Push(
        L2Sqr(query, centroids_.data() + static_cast<size_t>(c) * dim_, dim_),
        c);
  }

  const Sq8Query prep = sq_->PrepareQuery(query);
  NHeap collector;
  obs::SearchCounters counters;
  obs::SearchCounters* sc = metrics != nullptr ? &counters : nullptr;
  uint64_t bitmap_probes = 0, scan_blocks = 0, scan_codes = 0;
  for (const auto& probe : centroid_heap.TakeSorted()) {
    ++counters.buckets_probed;
    VECDB_RETURN_NOT_OK(ScanChain(static_cast<uint32_t>(probe.id), prep,
                                  &selection, &collector, ctx.profiler, sc,
                                  &bitmap_probes, &scan_blocks, &scan_codes));
  }
  if (metrics != nullptr) {
    FlushSearchCounters(metrics, counters);
    FlushFastScan(metrics, scan_blocks, scan_codes);
    metrics->AddUnchecked(obs::Counter::kFilterBitmapProbes, bitmap_probes);
  }
  return collector.PopK(params.k);
}

size_t PaseIvfSq8Index::SizeBytes() const {
  size_t blocks = 0;
  if (auto r = env_.smgr->NumBlocks(data_rel_); r.ok()) blocks += *r;
  return blocks * static_cast<size_t>(env_.bufmgr->page_size()) +
         centroids_.size() * sizeof(float);
}

std::string PaseIvfSq8Index::Describe() const {
  return "pase::IVF_SQ8 dim=" + std::to_string(dim_) +
         " c=" + std::to_string(num_clusters_);
}

}  // namespace vecdb::pase
