// Work accounting for the parallel-scaling experiments (paper Fig 9 and
// Fig 18). The reproduction container has a single core, so wall-clock time
// cannot demonstrate multi-thread scaling; instead, engines record how much
// busy time each worker accumulated and how much time was inherently
// serialized (global-lock critical sections, result merging, or
// BLAS-delegated kernels). The modeled makespan
//     max(worker busy) + serialized
// is what a machine with one core per worker would observe, and it exposes
// exactly the contrast the paper measures: Faiss's local-heap reduction has
// a negligible serial term, while PASE's locked global heap serializes
// every insertion.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace vecdb {

/// Per-worker busy time plus serialized time for one parallel operation.
struct ParallelAccounting {
  std::vector<int64_t> worker_busy_nanos;
  int64_t serial_nanos = 0;

  /// Clears counters and sizes the per-worker slots.
  void Reset(int num_workers) {
    worker_busy_nanos.assign(static_cast<size_t>(num_workers), 0);
    serial_nanos = 0;
  }

  /// Modeled wall seconds on one core per worker: critical path of the
  /// static-partitioned phase plus everything serialized.
  double ModeledSeconds() const {
    int64_t busy = 0;
    for (int64_t b : worker_busy_nanos) busy = std::max(busy, b);
    return (busy + serial_nanos) * 1e-9;
  }

  /// Total CPU work in seconds (busy + serial), independent of thread count.
  double TotalWorkSeconds() const {
    int64_t total = serial_nanos;
    for (int64_t b : worker_busy_nanos) total += b;
    return total * 1e-9;
  }
};

}  // namespace vecdb
