// The engine-neutral index interface. Every index in the three engines
// (faisslike, pase, bridge) implements this, so benchmarks, examples, and
// the SQL executor can drive any of them interchangeably.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/profiler.h"
#include "common/status.h"
#include "core/parallel.h"
#include "core/query_context.h"
#include "topk/neighbor.h"

namespace vecdb {

/// Per-query knobs. Field names follow the paper's Table II.
struct SearchParams {
  size_t k = 100;        ///< top-k result size
  uint32_t nprobe = 20;  ///< IVF buckets probed (IVF_* indexes only)
  uint32_t efs = 200;    ///< HNSW search queue length (HNSW only)
  int num_threads = 1;   ///< intra-query parallelism (RC#3)
  /// Observability handle: profiler + parallel accounting + metrics sink.
  QueryContext ctx;

  /// Deprecated (kept one PR): pre-QueryContext observability pointers.
  /// New code sets `ctx.profiler` / `ctx.accounting`; engines read both
  /// through Context(), where `ctx` wins if set.
  Profiler* profiler = nullptr;
  ParallelAccounting* accounting = nullptr;

  /// The effective context: `ctx` with the deprecated aliases folded in.
  /// Engines resolve this once at the top of Search/SearchBatch.
  QueryContext Context() const {
    QueryContext out = ctx;
    if (out.profiler == nullptr) out.profiler = profiler;
    if (out.accounting == nullptr) out.accounting = accounting;
    return out;
  }
};

/// What a Search() implementation consumes of SearchParams, for uniform
/// boundary validation across all three engines.
enum class IndexKind {
  kFlat,   ///< exhaustive scan: only k applies
  kIvf,    ///< inverted lists: k and nprobe
  kGraph,  ///< HNSW: k and efs
};

/// Validates query knobs at the API boundary. Out-of-range knobs return
/// InvalidArgument instead of silently clamping (a k=0 query returned
/// nothing, nprobe=0 probed one bucket anyway, efs<k truncated results);
/// every engine calls this first so the three engines reject uniformly.
inline Status ValidateSearchParams(const SearchParams& params, IndexKind kind,
                                   std::string_view who) {
  if (params.k == 0) {
    return Status::InvalidArgument(std::string(who) + ": k == 0");
  }
  if (kind == IndexKind::kIvf && params.nprobe == 0) {
    return Status::InvalidArgument(std::string(who) +
                                   ": nprobe == 0 (must probe >= 1 bucket)");
  }
  if (kind == IndexKind::kGraph && params.efs < params.k) {
    return Status::InvalidArgument(
        std::string(who) + ": efs (" + std::to_string(params.efs) +
        ") < k (" + std::to_string(params.k) +
        "); the search queue must cover the result size");
  }
  return Status::OK();
}

/// Wall-clock split of index construction, matching the paper's
/// training/adding decomposition (Fig 3).
struct BuildStats {
  double train_seconds = 0.0;
  double add_seconds = 0.0;
  double total_seconds() const { return train_seconds + add_seconds; }
  /// Worker accounting for parallel builds (Fig 9 scaling model).
  ParallelAccounting accounting;
};

/// Abstract approximate-nearest-neighbor index over row-major float data.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Trains internal structures (if any) and adds vectors 0..n-1.
  /// Populates build_stats().
  virtual Status Build(const float* data, size_t n) = 0;

  /// Inserts one vector after Build; its id is the current NumVectors().
  /// Indexes without incremental maintenance return NotSupported.
  virtual Status Insert(const float* vec) {
    (void)vec;
    return Status::NotSupported(Describe() +
                                ": incremental insert not supported");
  }

  /// Tombstones a row id: it stops appearing in results (amdelete; the
  /// space is reclaimed on rebuild, like PostgreSQL's VACUUM). Fails with
  /// NotFound if the id was never indexed or is already deleted.
  virtual Status Delete(int64_t id) {
    (void)id;
    return Status::NotSupported(Describe() + ": delete not supported");
  }

  /// Top-k search; results ascending by distance.
  virtual Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const = 0;

  /// Batched top-k search over `nq` queries stored row-major (nq x Dim()),
  /// returning one ascending result list per query, in query order.
  ///
  /// The default runs the single-query Search once per query, so every
  /// index supports the API with unchanged semantics (this is the
  /// generalized-engine behavior: PostgreSQL executes multi-query workloads
  /// one statement at a time). Specialized engines override it to batch
  /// cross-query work — the faisslike IVF indexes select buckets for the
  /// whole batch with one SGEMM call (RC#1) and scan buckets with
  /// inter-query thread-pool parallelism over per-worker k-heaps (RC#3).
  /// `params.num_threads` is the batch-level worker count for overrides;
  /// the fallback forwards it to each single-query Search unchanged.
  virtual Result<std::vector<std::vector<Neighbor>>> SearchBatch(
      const float* queries, size_t nq, const SearchParams& params) const {
    if (queries == nullptr && nq > 0) {
      return Status::InvalidArgument(Describe() +
                                     ": SearchBatch null queries");
    }
    std::vector<std::vector<Neighbor>> out;
    out.reserve(nq);
    for (size_t q = 0; q < nq; ++q) {
      VECDB_ASSIGN_OR_RETURN(
          std::vector<Neighbor> one,
          Search(queries + q * static_cast<size_t>(Dim()), params));
      out.push_back(std::move(one));
    }
    return out;
  }

  /// Total bytes the index occupies (paper's "index size" metric).
  virtual size_t SizeBytes() const = 0;

  /// Number of indexed vectors.
  virtual size_t NumVectors() const = 0;

  /// Dimensionality of the indexed vectors (the row stride of the query
  /// block passed to SearchBatch).
  virtual uint32_t Dim() const = 0;

  /// Human-readable one-line description ("faisslike::IVF_FLAT c=1000").
  virtual std::string Describe() const = 0;

  /// Construction timing recorded by the last Build().
  const BuildStats& build_stats() const { return build_stats_; }

 protected:
  BuildStats build_stats_;
};

}  // namespace vecdb
