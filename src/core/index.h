// The engine-neutral index interface. Every index in the three engines
// (faisslike, pase, bridge) implements this, so benchmarks, examples, and
// the SQL executor can drive any of them interchangeably.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/profiler.h"
#include "common/status.h"
#include "core/parallel.h"
#include "core/query_context.h"
#include "filter/selection.h"
#include "filter/strategy.h"
#include "topk/neighbor.h"

namespace vecdb {

/// Per-query knobs. Field names follow the paper's Table II.
struct SearchParams {
  size_t k = 100;        ///< top-k result size
  uint32_t nprobe = 20;  ///< IVF buckets probed (IVF_* indexes only)
  uint32_t efs = 200;    ///< HNSW search queue length (HNSW only)
  int num_threads = 1;   ///< intra-query parallelism (RC#3)
  /// Observability handle: profiler + parallel accounting + metrics sink.
  QueryContext ctx;

  /// The effective context. (The pre-QueryContext `profiler`/`accounting`
  /// alias fields are gone; set the `ctx` fields directly.)
  QueryContext Context() const { return ctx; }
};

/// A filtered query's predicate side: the selection bitmap (indexed by
/// index position), the strategy to run (kAuto lets the planner pick), an
/// optional sampled selectivity estimate, and the planner's thresholds.
struct FilterRequest {
  /// Required. Position `i` selected means vector `i` may appear in
  /// results. Built by the SQL layer from the WHERE predicate.
  const filter::SelectionVector* selection = nullptr;

  filter::FilterStrategy strategy = filter::FilterStrategy::kAuto;

  /// Sampled selectivity estimate in [0, 1]; negative means "unknown",
  /// in which case the exact bitmap fraction is used. The estimate (not
  /// the exact count) feeds the planner, mirroring a real optimizer.
  double est_selectivity = -1.0;

  filter::PlannerConfig planner;
};

/// What a Search() implementation consumes of SearchParams, for uniform
/// boundary validation across all three engines.
enum class IndexKind {
  kFlat,   ///< exhaustive scan: only k applies
  kIvf,    ///< inverted lists: k and nprobe
  kGraph,  ///< HNSW: k and efs
};

/// Validates query knobs at the API boundary. Out-of-range knobs return
/// InvalidArgument instead of silently clamping (a k=0 query returned
/// nothing, nprobe=0 probed one bucket anyway, efs<k truncated results);
/// every engine calls this first so the three engines reject uniformly.
inline Status ValidateSearchParams(const SearchParams& params, IndexKind kind,
                                   std::string_view who) {
  if (params.k == 0) {
    return Status::InvalidArgument(std::string(who) + ": k == 0");
  }
  if (kind == IndexKind::kIvf && params.nprobe == 0) {
    return Status::InvalidArgument(std::string(who) +
                                   ": nprobe == 0 (must probe >= 1 bucket)");
  }
  if (kind == IndexKind::kGraph && params.efs < params.k) {
    return Status::InvalidArgument(
        std::string(who) + ": efs (" + std::to_string(params.efs) +
        ") < k (" + std::to_string(params.k) +
        "); the search queue must cover the result size");
  }
  return Status::OK();
}

/// Wall-clock split of index construction, matching the paper's
/// training/adding decomposition (Fig 3).
struct BuildStats {
  double train_seconds = 0.0;
  double add_seconds = 0.0;
  double total_seconds() const { return train_seconds + add_seconds; }
  /// Worker accounting for parallel builds (Fig 9 scaling model).
  ParallelAccounting accounting;
};

/// Abstract approximate-nearest-neighbor index over row-major float data.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Trains internal structures (if any) and adds vectors 0..n-1.
  /// Populates build_stats().
  virtual Status Build(const float* data, size_t n) = 0;

  /// Inserts one vector after Build; its id is the current NumVectors().
  /// Indexes without incremental maintenance return NotSupported.
  virtual Status Insert(const float* vec) {
    (void)vec;
    return Status::NotSupported(Describe() +
                                ": incremental insert not supported");
  }

  /// Tombstones a row id: it stops appearing in results (amdelete; the
  /// space is reclaimed on rebuild, like PostgreSQL's VACUUM). Fails with
  /// NotFound if the id was never indexed or is already deleted.
  virtual Status Delete(int64_t id) {
    (void)id;
    return Status::NotSupported(Describe() + ": delete not supported");
  }

  /// Top-k search; results ascending by distance.
  virtual Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const = 0;

  /// Whether concurrent Search() calls on one instance are safe with no
  /// external serialization. The HNSW implementations keep per-instance
  /// mutable scratch (visited tables / visit stamps) and must answer
  /// false; callers (the SQL session layer) then serialize scans on the
  /// table lock instead of sharing it.
  virtual bool SupportsConcurrentSearch() const { return true; }

  /// Batched top-k search over `nq` queries stored row-major (nq x Dim()),
  /// returning one ascending result list per query, in query order.
  ///
  /// The default runs the single-query Search once per query, so every
  /// index supports the API with unchanged semantics (this is the
  /// generalized-engine behavior: PostgreSQL executes multi-query workloads
  /// one statement at a time). Specialized engines override it to batch
  /// cross-query work — the faisslike IVF indexes select buckets for the
  /// whole batch with one SGEMM call (RC#1) and scan buckets with
  /// inter-query thread-pool parallelism over per-worker k-heaps (RC#3).
  /// `params.num_threads` is the batch-level worker count for overrides;
  /// the fallback forwards it to each single-query Search unchanged.
  virtual Result<std::vector<std::vector<Neighbor>>> SearchBatch(
      const float* queries, size_t nq, const SearchParams& params) const {
    if (queries == nullptr && nq > 0) {
      return Status::InvalidArgument(Describe() +
                                     ": SearchBatch null queries");
    }
    std::vector<std::vector<Neighbor>> out;
    out.reserve(nq);
    for (size_t q = 0; q < nq; ++q) {
      VECDB_ASSIGN_OR_RETURN(
          std::vector<Neighbor> one,
          Search(queries + q * static_cast<size_t>(Dim()), params));
      out.push_back(std::move(one));
    }
    return out;
  }

  /// Attribute-filtered top-k search — the paper-motivated workload
  /// `WHERE <pred> ORDER BY vec <-> q LIMIT k`. Runs the requested
  /// strategy (kAuto lets ChooseStrategy pick from the selectivity
  /// estimate), falls back to post-filter when a planner-chosen strategy
  /// is unimplemented for this index, and records the filter.* metrics.
  /// Results are ascending by distance and contain only selected,
  /// non-tombstoned ids; at most k, fewer when the bitmap has fewer
  /// matches in reach.
  Result<std::vector<Neighbor>> FilteredSearch(const float* query,
                                               const FilterRequest& filter,
                                               const SearchParams& params) const;

  /// Total bytes the index occupies (paper's "index size" metric).
  virtual size_t SizeBytes() const = 0;

  /// Number of indexed vectors.
  virtual size_t NumVectors() const = 0;

  /// Dimensionality of the indexed vectors (the row stride of the query
  /// block passed to SearchBatch).
  virtual uint32_t Dim() const = 0;

  /// Human-readable one-line description ("faisslike::IVF_FLAT c=1000").
  virtual std::string Describe() const = 0;

  /// Construction timing recorded by the last Build().
  const BuildStats& build_stats() const { return build_stats_; }

 protected:
  /// Strategy hooks behind FilteredSearch. Engines override PreFilter /
  /// InFilter with index-native implementations; the base class answers
  /// NotSupported so kAuto can fall back to the universal post-filter.
  virtual Result<std::vector<Neighbor>> PreFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const {
    (void)query;
    (void)selection;
    (void)params;
    return Status::NotSupported(Describe() + ": pre-filter not implemented");
  }
  virtual Result<std::vector<Neighbor>> InFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      const SearchParams& params) const {
    (void)query;
    (void)selection;
    (void)params;
    return Status::NotSupported(Describe() + ": in-filter not implemented");
  }
  /// Universal post-filter: search with k' = k / est_selectivity, drop
  /// unselected results, retry with doubled k' until k survivors or the
  /// index is exhausted. Works unchanged for every index because it only
  /// consumes the public Search(); engines may still override it.
  virtual Result<std::vector<Neighbor>> PostFilterSearch(
      const float* query, const filter::SelectionVector& selection,
      double est_selectivity, const SearchParams& params) const;

  BuildStats build_stats_;
};

inline Result<std::vector<Neighbor>> VectorIndex::PostFilterSearch(
    const float* query, const filter::SelectionVector& selection,
    double est_selectivity, const SearchParams& params) const {
  const size_t n = NumVectors();
  if (n == 0) return std::vector<Neighbor>{};
  // First amplification from the estimate; the 1e-3 floor keeps a
  // near-zero estimate from demanding the whole index up front (the
  // retry loop gets there anyway if the estimate was wrong).
  const double sel = std::max(est_selectivity, 1e-3);
  size_t kamp = static_cast<size_t>(
      std::ceil(static_cast<double>(params.k) / sel));
  kamp = std::clamp(kamp, params.k, n);
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  std::vector<Neighbor> kept;
  for (;;) {
    SearchParams amplified = params;
    amplified.k = kamp;
    // Graph indexes reject efs < k at the boundary; the amplified query
    // must widen its beam along with its result size.
    if (kamp > amplified.efs) amplified.efs = static_cast<uint32_t>(kamp);
    VECDB_ASSIGN_OR_RETURN(std::vector<Neighbor> raw,
                           Search(query, amplified));
    kept.clear();
    for (const Neighbor& nb : raw) {
      if (nb.id >= 0 && selection.Test(static_cast<size_t>(nb.id))) {
        kept.push_back(nb);
        if (kept.size() == params.k) break;
      }
    }
    // raw.size() < kamp means the search already returned everything it
    // can reach (all probed buckets / the whole connected graph): more
    // amplification cannot surface new survivors.
    const bool exhausted = raw.size() < kamp || kamp >= n;
    if (kept.size() >= params.k || exhausted) break;
    kamp = std::min(kamp * 2, n);
    if (metrics != nullptr) {
      metrics->AddUnchecked(obs::Counter::kFilterKampRetries);
    }
  }
  return kept;
}

inline Result<std::vector<Neighbor>> VectorIndex::FilteredSearch(
    const float* query, const FilterRequest& filter,
    const SearchParams& params) const {
  if (filter.selection == nullptr) {
    return Status::InvalidArgument(
        Describe() + ": FilteredSearch requires a selection vector");
  }
  if (query == nullptr) {
    return Status::InvalidArgument(Describe() +
                                   ": FilteredSearch null query");
  }
  const size_t n = NumVectors();
  double est = filter.est_selectivity;
  if (est < 0.0) {
    est = n == 0 ? 0.0
                 : static_cast<double>(filter.selection->CountSet()) /
                       static_cast<double>(n);
  }
  est = std::min(est, 1.0);
  filter::FilterStrategy strategy = filter.strategy;
  const bool planned = strategy == filter::FilterStrategy::kAuto;
  if (planned) {
    strategy = filter::ChooseStrategy(est, params.k, n, filter.planner);
  }
  obs::MetricsRegistry* metrics = params.Context().live_metrics();
  if (metrics != nullptr) {
    metrics->RecordUnchecked(obs::Hist::kFilterSelectivityBp,
                             static_cast<uint64_t>(est * 10000.0));
  }
  Result<std::vector<Neighbor>> out =
      Status::Internal("FilteredSearch: no strategy ran");
  switch (strategy) {
    case filter::FilterStrategy::kPreFilter:
      out = PreFilterSearch(query, *filter.selection, params);
      break;
    case filter::FilterStrategy::kInFilter:
      out = InFilterSearch(query, *filter.selection, params);
      break;
    case filter::FilterStrategy::kPostFilter:
      out = PostFilterSearch(query, *filter.selection, est, params);
      break;
    case filter::FilterStrategy::kAuto:
      break;  // unreachable: resolved above
  }
  // A planner choice the index cannot run degrades to post-filter (always
  // available); an explicit user choice surfaces the NotSupported error.
  if (!out.ok() && out.status().IsNotSupported() && planned &&
      strategy != filter::FilterStrategy::kPostFilter) {
    strategy = filter::FilterStrategy::kPostFilter;
    out = PostFilterSearch(query, *filter.selection, est, params);
  }
  if (out.ok() && metrics != nullptr) {
    switch (strategy) {
      case filter::FilterStrategy::kPreFilter:
        metrics->AddUnchecked(obs::Counter::kFilterPrefilterQueries);
        break;
      case filter::FilterStrategy::kInFilter:
        metrics->AddUnchecked(obs::Counter::kFilterInfilterQueries);
        break;
      case filter::FilterStrategy::kPostFilter:
        metrics->AddUnchecked(obs::Counter::kFilterPostfilterQueries);
        break;
      case filter::FilterStrategy::kAuto:
        break;
    }
  }
  return out;
}

}  // namespace vecdb
