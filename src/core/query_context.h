// QueryContext: the single observability handle a query carries through an
// engine. It bundles the three channels the layers used to smuggle as
// separate nullable pointers — the phase-breakdown Profiler (Table III/V,
// Fig 8), the parallel-scaling accounting (Fig 9/18), and the always-on
// metrics sink — so SearchParams stays a plain knob struct and future
// channels (tracing, quotas) have one place to live.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/profiler.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/parallel.h"
#include "obs/metrics.h"

namespace vecdb {

struct QueryContext {
  /// Optional per-phase time breakdown (merged by the caller; not
  /// thread-safe, same contract as before).
  Profiler* profiler = nullptr;

  /// Optional per-worker busy/serial accounting for the scaling model.
  ParallelAccounting* accounting = nullptr;

  /// Metrics sink; null means the process-wide registry
  /// (obs::MetricsRegistry::Global()). Tests point this at a local
  /// registry to read per-query counters in isolation.
  obs::MetricsRegistry* metrics = nullptr;

  /// The registry this query reports into, or null when metrics are
  /// disabled. Engines resolve this once per query and branch on the
  /// pointer, so the disabled path costs one branch per scope — the same
  /// contract as the nullable Profiler.
  /// Cooperative cancellation flag (docs/SERVER.md). Owned by the caller
  /// (typically the statement's Session); null means "not cancellable".
  /// Engines poll it at loop checkpoints — per IVF bucket, every few dozen
  /// HNSW beam pops, every few hundred seq-scan rows — so a set flag stops
  /// the statement within one checkpoint interval.
  const std::atomic<bool>* cancel = nullptr;

  /// Absolute statement deadline on the NowNanos() (steady) clock; 0 means
  /// no deadline. Resolved by the SQL layer from statement_timeout_ms
  /// (statement OPTIONS > session default > DatabaseOptions).
  int64_t deadline_nanos = 0;

  /// True once the statement should stop: its cancel flag is set or its
  /// deadline has passed. Cheap enough for checkpoint-granularity polling
  /// (one relaxed load plus, when a deadline exists, one clock read).
  bool StopRequested() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_nanos != 0 && NowNanos() >= deadline_nanos;
  }

  /// Checkpoint helper: OK while the statement may keep running, else a
  /// Cancelled status whose message distinguishes an explicit cancel from
  /// a deadline expiry (the SQL layer keys timeout metrics off it).
  Status CheckStop(const char* who) const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled(std::string(who) + ": statement cancelled");
    }
    if (deadline_nanos != 0 && NowNanos() >= deadline_nanos) {
      return Status::Cancelled(std::string(who) + ": statement timeout");
    }
    return Status::OK();
  }

  obs::MetricsRegistry* live_metrics() const {
    obs::MetricsRegistry* m =
        metrics != nullptr ? metrics : &obs::MetricsRegistry::Global();
    return m->enabled() ? m : nullptr;
  }
};

}  // namespace vecdb
