// QueryContext: the single observability handle a query carries through an
// engine. It bundles the three channels the layers used to smuggle as
// separate nullable pointers — the phase-breakdown Profiler (Table III/V,
// Fig 8), the parallel-scaling accounting (Fig 9/18), and the always-on
// metrics sink — so SearchParams stays a plain knob struct and future
// channels (tracing, quotas) have one place to live.
#pragma once

#include "common/profiler.h"
#include "core/parallel.h"
#include "obs/metrics.h"

namespace vecdb {

struct QueryContext {
  /// Optional per-phase time breakdown (merged by the caller; not
  /// thread-safe, same contract as before).
  Profiler* profiler = nullptr;

  /// Optional per-worker busy/serial accounting for the scaling model.
  ParallelAccounting* accounting = nullptr;

  /// Metrics sink; null means the process-wide registry
  /// (obs::MetricsRegistry::Global()). Tests point this at a local
  /// registry to read per-query counters in isolation.
  obs::MetricsRegistry* metrics = nullptr;

  /// The registry this query reports into, or null when metrics are
  /// disabled. Engines resolve this once per query and branch on the
  /// pointer, so the disabled path costs one branch per scope — the same
  /// contract as the nullable Profiler.
  obs::MetricsRegistry* live_metrics() const {
    obs::MetricsRegistry* m =
        metrics != nullptr ? metrics : &obs::MetricsRegistry::Global();
    return m->enabled() ? m : nullptr;
  }
};

}  // namespace vecdb
