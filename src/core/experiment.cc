#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"
#include "datasets/ground_truth.h"

namespace vecdb {

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  Row(headers_);
  Separator();
}

void TablePrinter::Row(const std::vector<std::string>& cells) const {
  std::string line;
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::string cell = cells[i];
    const size_t w = static_cast<size_t>(widths_[i]);
    if (cell.size() < w) cell.append(w - cell.size(), ' ');
    line += cell;
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

void TablePrinter::Separator() const {
  size_t total = 0;
  for (int w : widths_) total += static_cast<size_t>(w) + 2;
  std::string line(total, '-');
  std::printf("%s\n", line.c_str());
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Ratio(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", digits, v);
  return buf;
}

std::string TablePrinter::Megabytes(size_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

Result<SearchRun> RunSearchBatch(const VectorIndex& index, const Dataset& ds,
                                 const SearchParams& params,
                                 size_t max_queries) {
  const size_t nq = max_queries == 0
                        ? ds.num_queries
                        : std::min(max_queries, ds.num_queries);
  if (nq == 0) return Status::InvalidArgument("no queries");

  // Warm-up pass (paper §IV-A) so buffers and caches are hot.
  for (size_t q = 0; q < nq; ++q) {
    VECDB_RETURN_NOT_OK(index.Search(ds.query_vector(q), params).status());
  }

  SearchRun run;
  run.queries = nq;
  std::vector<std::vector<Neighbor>> results(nq);
  Timer timer;
  for (size_t q = 0; q < nq; ++q) {
    VECDB_ASSIGN_OR_RETURN(results[q],
                           index.Search(ds.query_vector(q), params));
  }
  run.avg_millis = timer.ElapsedMillis() / static_cast<double>(nq);
  if (!ds.ground_truth.empty()) {
    std::vector<std::vector<int64_t>> gt(ds.ground_truth.begin(),
                                         ds.ground_truth.begin() + nq);
    run.recall_at_k = MeanRecallAtK(results, gt, params.k);
  }
  return run;
}

Result<SearchRun> RunSearchBatched(const VectorIndex& index, const Dataset& ds,
                                   const SearchParams& params,
                                   size_t max_queries) {
  const size_t nq = max_queries == 0
                        ? ds.num_queries
                        : std::min(max_queries, ds.num_queries);
  if (nq == 0) return Status::InvalidArgument("no queries");

  // Warm-up pass (paper §IV-A) so buffers and caches are hot. Queries are
  // stored row-major and contiguous, so the prefix is the batch.
  VECDB_RETURN_NOT_OK(
      index.SearchBatch(ds.queries.data(), nq, params).status());

  SearchRun run;
  run.queries = nq;
  Timer timer;
  VECDB_ASSIGN_OR_RETURN(std::vector<std::vector<Neighbor>> results,
                         index.SearchBatch(ds.queries.data(), nq, params));
  run.avg_millis = timer.ElapsedMillis() / static_cast<double>(nq);
  if (!ds.ground_truth.empty()) {
    std::vector<std::vector<int64_t>> gt(ds.ground_truth.begin(),
                                         ds.ground_truth.begin() + nq);
    run.recall_at_k = MeanRecallAtK(results, gt, params.k);
  }
  return run;
}

void PrintBreakdown(const std::string& title, const Profiler& profiler,
                    const std::vector<std::string>& labels,
                    int64_t total_nanos) {
  std::printf("%s (total %.2f ms)\n", title.c_str(), total_nanos * 1e-6);
  if (total_nanos <= 0) return;
  int64_t accounted = 0;
  for (const auto& label : labels) {
    const int64_t nanos = profiler.Nanos(label);
    accounted += nanos;
    std::printf("  %-18s %6.2f%%  %10.3f ms\n", label.c_str(),
                100.0 * static_cast<double>(nanos) /
                    static_cast<double>(total_nanos),
                nanos * 1e-6);
  }
  const int64_t others = total_nanos - accounted;
  std::printf("  %-18s %6.2f%%  %10.3f ms\n", "Others",
              100.0 * static_cast<double>(others > 0 ? others : 0) /
                  static_cast<double>(total_nanos),
              (others > 0 ? others : 0) * 1e-6);
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--max-queries=", 14) == 0) {
      args.max_queries = static_cast<size_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--max-base=", 11) == 0) {
      args.max_base = static_cast<size_t>(std::atoll(arg + 11));
    } else if (std::strncmp(arg, "--datasets=", 11) == 0) {
      // comma-separated list of dataset names
      std::string list(arg + 11);
      size_t start = 0;
      while (start < list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        args.datasets.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (std::strncmp(arg, "--data-dir=", 11) == 0) {
      args.data_dir = arg + 11;
    } else if (std::strcmp(arg, "--batch") == 0) {
      args.batch = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --scale= --max-queries= "
                   "--max-base= --datasets= --data-dir= --batch)\n",
                   arg);
    }
  }
  return args;
}

}  // namespace vecdb
