#include "core/factory.h"

#include <set>

#include "bridge/bridged_hnsw.h"
#include "bridge/bridged_ivf_flat.h"
#include "faisslike/flat_index.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "faisslike/ivf_sq8.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "pase/ivf_pq.h"
#include "pase/ivf_sq8.h"

namespace vecdb {

namespace {
double OptionOr(const std::map<std::string, double>& options,
                const std::string& key, double fallback) {
  auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

Status ValidateOptionKeys(const std::map<std::string, double>& options) {
  static const std::set<std::string> kKnown = {
      "clusters", "sample_ratio", "iterations",    "m",   "pq_codes",
      "bnn",      "efb",          "refine_factor", "seed"};
  for (const auto& [key, _] : options) {
    if (kKnown.count(key) == 0) {
      return Status::InvalidArgument("unknown index option '" + key + "'");
    }
  }
  return Status::OK();
}
}  // namespace

Result<std::unique_ptr<VectorIndex>> CreateIndex(const IndexSpec& spec,
                                                 pase::PaseEnv env) {
  if (spec.dim == 0) {
    return Status::InvalidArgument("IndexSpec.dim must be set");
  }
  VECDB_RETURN_NOT_OK(ValidateOptionKeys(spec.options));
  const auto& opt = spec.options;
  const uint32_t clusters =
      static_cast<uint32_t>(OptionOr(opt, "clusters", 256));
  const double sr = OptionOr(opt, "sample_ratio", 0.01);
  const int iters = static_cast<int>(OptionOr(opt, "iterations", 10));
  const uint32_t m = static_cast<uint32_t>(OptionOr(opt, "m", 16));
  const uint32_t cpq = static_cast<uint32_t>(OptionOr(opt, "pq_codes", 256));
  const uint32_t bnn = static_cast<uint32_t>(OptionOr(opt, "bnn", 16));
  const uint32_t efb = static_cast<uint32_t>(OptionOr(opt, "efb", 40));
  const uint32_t refine =
      static_cast<uint32_t>(OptionOr(opt, "refine_factor", 0));
  const uint64_t seed = static_cast<uint64_t>(OptionOr(opt, "seed", 42));

  const bool needs_env = spec.engine == "pase" || spec.engine == "bridge";
  if (needs_env && !env.valid()) {
    return Status::InvalidArgument("engine '" + spec.engine +
                                   "' requires a PaseEnv (smgr + bufmgr)");
  }

  if (spec.engine == "faiss") {
    if (spec.method == "flat") {
      return std::unique_ptr<VectorIndex>(new faisslike::FlatIndex(spec.dim));
    }
    if (spec.method == "ivfflat") {
      faisslike::IvfFlatOptions o;
      o.num_clusters = clusters;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.seed = seed;
      return std::unique_ptr<VectorIndex>(
          new faisslike::IvfFlatIndex(spec.dim, o));
    }
    if (spec.method == "ivfpq") {
      faisslike::IvfPqOptions o;
      o.num_clusters = clusters;
      o.pq_m = m;
      o.pq_codes = cpq;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.refine_factor = refine;
      o.seed = seed;
      return std::unique_ptr<VectorIndex>(
          new faisslike::IvfPqIndex(spec.dim, o));
    }
    if (spec.method == "ivfsq8") {
      faisslike::IvfSq8Options o;
      o.num_clusters = clusters;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.seed = seed;
      return std::unique_ptr<VectorIndex>(
          new faisslike::IvfSq8Index(spec.dim, o));
    }
    if (spec.method == "hnsw") {
      faisslike::HnswOptions o;
      o.bnn = bnn;
      o.efb = efb;
      o.seed = seed;
      return std::unique_ptr<VectorIndex>(
          new faisslike::HnswIndex(spec.dim, o));
    }
  } else if (spec.engine == "pase") {
    if (spec.method == "ivfflat") {
      pase::PaseIvfFlatOptions o;
      o.num_clusters = clusters;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.seed = seed;
      o.rel_prefix = spec.rel_prefix;
      return std::unique_ptr<VectorIndex>(
          new pase::PaseIvfFlatIndex(env, spec.dim, o));
    }
    if (spec.method == "ivfpq") {
      pase::PaseIvfPqOptions o;
      o.num_clusters = clusters;
      o.pq_m = m;
      o.pq_codes = cpq;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.seed = seed;
      o.rel_prefix = spec.rel_prefix;
      return std::unique_ptr<VectorIndex>(
          new pase::PaseIvfPqIndex(env, spec.dim, o));
    }
    if (spec.method == "ivfsq8") {
      pase::PaseIvfSq8Options o;
      o.num_clusters = clusters;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.seed = seed;
      o.rel_prefix = spec.rel_prefix;
      return std::unique_ptr<VectorIndex>(
          new pase::PaseIvfSq8Index(env, spec.dim, o));
    }
    if (spec.method == "hnsw") {
      pase::PaseHnswOptions o;
      o.bnn = bnn;
      o.efb = efb;
      o.seed = seed;
      o.rel_prefix = spec.rel_prefix;
      return std::unique_ptr<VectorIndex>(
          new pase::PaseHnswIndex(env, spec.dim, o));
    }
  } else if (spec.engine == "bridge") {
    if (spec.method == "ivfflat") {
      bridge::BridgedIvfFlatOptions o;
      o.num_clusters = clusters;
      o.sample_ratio = sr;
      o.train_iterations = iters;
      o.seed = seed;
      o.rel_prefix = spec.rel_prefix;
      return std::unique_ptr<VectorIndex>(
          new bridge::BridgedIvfFlatIndex(env, spec.dim, o));
    }
    if (spec.method == "hnsw") {
      bridge::BridgedHnswOptions o;
      o.bnn = bnn;
      o.efb = efb;
      o.seed = seed;
      o.rel_prefix = spec.rel_prefix;
      return std::unique_ptr<VectorIndex>(
          new bridge::BridgedHnswIndex(env, spec.dim, o));
    }
    return Status::NotSupported("bridge engine supports ivfflat and hnsw");
  } else {
    return Status::InvalidArgument("unknown engine '" + spec.engine +
                                   "' (use faiss, pase, or bridge)");
  }
  return Status::InvalidArgument("unknown index method '" + spec.method +
                                 "' for engine '" + spec.engine + "'");
}

}  // namespace vecdb
