// Shared machinery for the benchmark harness: aligned table printing in the
// paper's row format, batch query timing, recall measurement, and the
// breakdown-table renderer used for Table III, Table V, and Fig 8.
#pragma once

#include <string>
#include <vector>

#include "common/profiler.h"
#include "core/index.h"
#include "datasets/dataset.h"

namespace vecdb {

/// Fixed-width console table writer.
class TablePrinter {
 public:
  /// `widths[i]` is the column width; text is left-aligned, numbers as
  /// given. Prints the header immediately.
  TablePrinter(std::vector<std::string> headers, std::vector<int> widths);

  void Row(const std::vector<std::string>& cells) const;
  void Separator() const;

  /// Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 2);
  /// Formats "12.3x" speedup strings.
  static std::string Ratio(double v, int digits = 1);
  /// Formats bytes as MB with one decimal.
  static std::string Megabytes(size_t bytes);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// Timing/recall summary of a query batch.
struct SearchRun {
  double avg_millis = 0.0;
  double recall_at_k = 0.0;  ///< filled only if ground truth present
  size_t queries = 0;
};

/// Runs every query of `ds` through `index` and averages wall time.
/// One warm-up pass precedes timing, matching the paper's methodology.
Result<SearchRun> RunSearchBatch(const VectorIndex& index, const Dataset& ds,
                                 const SearchParams& params,
                                 size_t max_queries = 0);

/// Like RunSearchBatch, but submits the whole query block through one
/// VectorIndex::SearchBatch call — the specialized engines' multi-query
/// execution path (one SGEMM bucket selection per batch, inter-query
/// parallelism). Indexes without an override fall back to per-query Search
/// with identical results, so the two runners are directly comparable.
Result<SearchRun> RunSearchBatched(const VectorIndex& index, const Dataset& ds,
                                   const SearchParams& params,
                                   size_t max_queries = 0);

/// Renders a profiler's counters as the paper's breakdown rows: for each
/// label in `labels` (plus a synthesized "Others" = total - sum), prints
/// percentage and absolute time against `total_nanos`.
void PrintBreakdown(const std::string& title, const Profiler& profiler,
                    const std::vector<std::string>& labels,
                    int64_t total_nanos);

/// Parses "--key=value" style flags shared by the bench binaries.
struct BenchArgs {
  double scale = 0.02;   ///< fraction of the paper's dataset sizes
  size_t max_queries = 50;
  /// Cap on base vectors per dataset after scaling (0 = unlimited).
  /// Graph-build benches default this to a few tens of thousands so the
  /// whole suite completes on a small machine.
  size_t max_base = 0;
  std::vector<std::string> datasets;  ///< empty = all six
  std::string data_dir = "/tmp/vecdb_bench";
  /// Drive searches through SearchBatch (one call per query block) instead
  /// of one Search call per query.
  bool batch = false;

  static BenchArgs Parse(int argc, char** argv);
};

}  // namespace vecdb
