// Public index factory: creates any index of any engine from a declarative
// spec — the programmatic twin of SQL's CREATE INDEX ... USING ... WITH.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/index.h"
#include "pase/pase_common.h"

namespace vecdb {

/// Declarative index description.
struct IndexSpec {
  std::string method;  ///< "ivfflat" | "ivfpq" | "ivfsq8" | "hnsw" | "flat"
  std::string engine = "faiss";  ///< "faiss" | "pase" | "bridge"
  uint32_t dim = 0;

  /// Numeric options; recognized keys: clusters, sample_ratio, iterations,
  /// m, pq_codes, bnn, efb, seed, refine_factor. Unknown keys are an
  /// InvalidArgument error (catching typos beats silently ignoring them).
  std::map<std::string, double> options;

  /// Relation-name prefix for page-resident engines ("pase", "bridge").
  std::string rel_prefix = "idx";
};

/// Instantiates an index. `env` is required for the "pase" and "bridge"
/// engines (their indexes live in pgstub relations) and ignored for
/// "faiss". The returned index is untrained; call Build().
Result<std::unique_ptr<VectorIndex>> CreateIndex(const IndexSpec& spec,
                                                 pase::PaseEnv env = {});

}  // namespace vecdb
