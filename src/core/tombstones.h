// Shared tombstone set used by every index's Delete() implementation:
// deleted ids are filtered at search time and reclaimed on rebuild.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/status.h"

namespace vecdb {

/// Set of deleted row ids with cheap emptiness fast-path.
class TombstoneSet {
 public:
  /// Marks `id` deleted; NotFound if it already is.
  Status Mark(int64_t id) {
    if (!set_.insert(id).second) {
      return Status::NotFound("id " + std::to_string(id) +
                              " already deleted");
    }
    return Status::OK();
  }

  /// True if `id` is deleted. One branch when nothing was ever deleted.
  bool Contains(int64_t id) const {
    return !set_.empty() && set_.count(id) != 0;
  }

  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }
  void Clear() { set_.clear(); }

 private:
  std::unordered_set<int64_t> set_;
};

}  // namespace vecdb
