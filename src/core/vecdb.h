// Umbrella header: the public API of the vecdb library.
//
// Three engines implement the same VectorIndex interface:
//   vecdb::faisslike — specialized in-memory engine (Faiss analog)
//   vecdb::pase      — generalized page-resident engine (PASE/PostgreSQL
//                      analog, over the pgstub substrate)
//   vecdb::bridge    — the paper's §IX-C guidelines applied
// plus vecdb::sql::MiniDatabase, the SQL front end over the substrate.
#pragma once

#include "common/profiler.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

#include "distance/kernels.h"
#include "distance/metric.h"
#include "distance/sgemm.h"

#include "topk/heaps.h"
#include "topk/neighbor.h"

#include "clustering/kmeans.h"
#include "quantizer/pq.h"
#include "quantizer/sq8.h"

#include "datasets/dataset.h"
#include "datasets/ground_truth.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "datasets/synthetic.h"

#include "core/experiment.h"
#include "core/factory.h"
#include "core/index.h"
#include "core/parallel.h"

#include "faisslike/flat_index.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "faisslike/ivf_sq8.h"

#include "pgstub/bufmgr.h"
#include "pgstub/heap_table.h"
#include "pgstub/index_am.h"
#include "pgstub/page.h"
#include "pgstub/smgr.h"
#include "pgstub/wal.h"

#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "pase/ivf_pq.h"
#include "pase/ivf_sq8.h"
#include "pase/pase_common.h"

#include "bridge/bridged_hnsw.h"
#include "bridge/bridged_ivf_flat.h"

#include "sql/database.h"
#include "sql/parser.h"
#include "sql/session.h"
