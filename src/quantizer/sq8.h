// Scalar quantization to 8 bits per dimension (the IVF_SQ8 building block
// the paper mentions in §II-B). Provided as an extension index component.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vecdb {

/// Per-dimension min/max affine quantizer: f -> round(255 * (f-min)/(max-min)).
class ScalarQuantizer8 {
 public:
  /// Learns per-dimension ranges from `n` row-major d-dim vectors.
  static Result<ScalarQuantizer8> Train(const float* data, size_t n, size_t d);

  uint32_t dim() const { return dim_; }
  size_t code_size() const { return dim_; }

  /// Quantizes one vector into `code` (dim bytes). Values outside the
  /// trained range clamp to the boundary codes.
  void Encode(const float* vec, uint8_t* code) const;

  /// Reconstructs the midpoint value of each code bucket.
  void Decode(const uint8_t* code, float* vec) const;

  /// Squared L2 distance between a float query and an encoded vector,
  /// decoding on the fly.
  float DistanceToCode(const float* query, const uint8_t* code) const;

 private:
  ScalarQuantizer8() = default;

  uint32_t dim_ = 0;
  std::vector<float> vmin_;   // per-dimension minimum
  std::vector<float> vscale_; // per-dimension (max-min)/255, 0 if constant
};

}  // namespace vecdb
