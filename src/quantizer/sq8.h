// Scalar quantization to 8 bits per dimension (the IVF_SQ8 building block
// the paper mentions in §II-B). Provided as an extension index component.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/status.h"

namespace vecdb {

/// A query pre-expanded for the asymmetric SQ8 fast-scan kernels:
/// qadj[t] = query[t] - vmin[t] - 0.5*vscale[t], so the per-code distance
/// collapses to sum_t (qadj[t] - code[t]*vscale[t])² — two FMA-shaped ops
/// per dimension instead of decode-then-subtract. Build once per query
/// with ScalarQuantizer8::PrepareQuery, reuse across every probed bucket.
struct Sq8Query {
  std::vector<float> qadj;
};

/// Per-dimension min/max affine quantizer: f -> round(255 * (f-min)/(max-min)).
class ScalarQuantizer8 {
 public:
  /// Learns per-dimension ranges from `n` row-major d-dim vectors.
  static Result<ScalarQuantizer8> Train(const float* data, size_t n, size_t d);

  uint32_t dim() const { return dim_; }
  size_t code_size() const { return dim_; }

  /// Per-dimension scale factors ((max-min)/255), dim() floats.
  const float* scales() const { return vscale_.data(); }

  /// Quantizes one vector into `code` (dim bytes). Values outside the
  /// trained range clamp to the boundary codes.
  void Encode(const float* vec, uint8_t* code) const;

  /// Reconstructs the midpoint value of each code bucket.
  void Decode(const uint8_t* code, float* vec) const;

  /// Squared L2 distance between a float query and an encoded vector,
  /// decoding on the fly. Kept as the scalar reference shape (one decode
  /// + subtract + square per dimension); the prepared-query overloads
  /// below are the fast path.
  float DistanceToCode(const float* query, const uint8_t* code) const;

  /// Expands `query` (dim floats) into the fast-scan form.
  Sq8Query PrepareQuery(const float* query) const;

  /// Prepared-query distance to one code, via the active ISA tier.
  /// Bit-identical to a 1-element DistanceToCodesBatch (same kernel).
  float DistanceToCode(const Sq8Query& q, const uint8_t* code) const;

  /// Distances from a prepared query to `n` contiguous dim-byte codes
  /// (the blocked Sq8CodeStore layout), one output per code. Within an
  /// ISA tier, out[j] is bit-identical to DistanceToCode(q, codes + j*dim)
  /// — SIMD lanes run along the dimension, never across codes.
  void DistanceToCodesBatch(const Sq8Query& q, const uint8_t* codes, size_t n,
                            float* out) const;

  /// Same scan over `n` non-contiguous codes addressed by pointer — the
  /// page-resident shape where codes sit behind tuple headers.
  void DistanceToCodesGather(const Sq8Query& q, const uint8_t* const* codes,
                             size_t n, float* out) const;

 private:
  ScalarQuantizer8() = default;

  uint32_t dim_ = 0;
  std::vector<float> vmin_;   // per-dimension minimum
  std::vector<float> vscale_; // per-dimension (max-min)/255, 0 if constant
};

/// Append-only code storage for one IVF bucket: all codes packed row-major
/// at code_size stride in a single 64-byte-aligned allocation (hnswlib's
/// contiguous level-0 layout), with row ids in a parallel array. This is
/// what DistanceToCodesBatch scans; kBlockCodes is the scan-block grain
/// the kernel.sq8_blocks metric counts in.
class Sq8CodeStore {
 public:
  /// Fast-scan accounting grain: one "block" is up to this many codes.
  static constexpr size_t kBlockCodes = 32;

  Sq8CodeStore() = default;
  ~Sq8CodeStore() { std::free(codes_); }

  Sq8CodeStore(Sq8CodeStore&& other) noexcept
      : code_size_(std::exchange(other.code_size_, 0)),
        codes_(std::exchange(other.codes_, nullptr)),
        capacity_codes_(std::exchange(other.capacity_codes_, 0)),
        ids_(std::move(other.ids_)) {}

  Sq8CodeStore& operator=(Sq8CodeStore&& other) noexcept {
    if (this != &other) {
      std::free(codes_);
      code_size_ = std::exchange(other.code_size_, 0);
      codes_ = std::exchange(other.codes_, nullptr);
      capacity_codes_ = std::exchange(other.capacity_codes_, 0);
      ids_ = std::move(other.ids_);
    }
    return *this;
  }

  Sq8CodeStore(const Sq8CodeStore&) = delete;
  Sq8CodeStore& operator=(const Sq8CodeStore&) = delete;

  /// Drops all codes and fixes the per-code byte width.
  void Reset(size_t code_size);

  /// Appends one code (code_size bytes) and its row id.
  void Append(const uint8_t* code, int64_t id);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  size_t code_size() const { return code_size_; }

  const uint8_t* codes() const { return codes_; }
  const uint8_t* code_at(size_t i) const { return codes_ + i * code_size_; }
  const std::vector<int64_t>& ids() const { return ids_; }

  /// kBlockCodes-grain block count covering the store (ceil division).
  size_t num_blocks() const {
    return (ids_.size() + kBlockCodes - 1) / kBlockCodes;
  }

  /// Heap footprint: allocated code bytes plus the id array.
  size_t MemoryBytes() const {
    return capacity_codes_ * code_size_ + ids_.capacity() * sizeof(int64_t);
  }

 private:
  size_t code_size_ = 0;
  uint8_t* codes_ = nullptr;
  size_t capacity_codes_ = 0;
  std::vector<int64_t> ids_;
};

}  // namespace vecdb
