#include "quantizer/sq8.h"

#include <algorithm>
#include <cmath>

namespace vecdb {

Result<ScalarQuantizer8> ScalarQuantizer8::Train(const float* data, size_t n,
                                                 size_t d) {
  if (data == nullptr || n == 0 || d == 0) {
    return Status::InvalidArgument("SQ8::Train: empty input");
  }
  ScalarQuantizer8 sq;
  sq.dim_ = static_cast<uint32_t>(d);
  sq.vmin_.assign(d, data[0]);
  std::vector<float> vmax(d, data[0]);
  for (size_t t = 0; t < d; ++t) {
    sq.vmin_[t] = vmax[t] = data[t];
  }
  for (size_t i = 1; i < n; ++i) {
    const float* x = data + i * d;
    for (size_t t = 0; t < d; ++t) {
      sq.vmin_[t] = std::min(sq.vmin_[t], x[t]);
      vmax[t] = std::max(vmax[t], x[t]);
    }
  }
  sq.vscale_.resize(d);
  for (size_t t = 0; t < d; ++t) {
    sq.vscale_[t] = (vmax[t] - sq.vmin_[t]) / 255.f;
  }
  return sq;
}

void ScalarQuantizer8::Encode(const float* vec, uint8_t* code) const {
  for (uint32_t t = 0; t < dim_; ++t) {
    if (vscale_[t] == 0.f) {
      code[t] = 0;
      continue;
    }
    float q = std::round((vec[t] - vmin_[t]) / vscale_[t]);
    q = std::clamp(q, 0.f, 255.f);
    code[t] = static_cast<uint8_t>(q);
  }
}

void ScalarQuantizer8::Decode(const uint8_t* code, float* vec) const {
  for (uint32_t t = 0; t < dim_; ++t) {
    vec[t] = vmin_[t] + (static_cast<float>(code[t]) + 0.5f) * vscale_[t];
  }
}

float ScalarQuantizer8::DistanceToCode(const float* query,
                                       const uint8_t* code) const {
  float s = 0.f;
  for (uint32_t t = 0; t < dim_; ++t) {
    const float rec = vmin_[t] + (static_cast<float>(code[t]) + 0.5f) * vscale_[t];
    const float diff = query[t] - rec;
    s += diff * diff;
  }
  return s;
}

}  // namespace vecdb
