#include "quantizer/sq8.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "distance/dispatch.h"

namespace vecdb {

Result<ScalarQuantizer8> ScalarQuantizer8::Train(const float* data, size_t n,
                                                 size_t d) {
  if (data == nullptr || n == 0 || d == 0) {
    return Status::InvalidArgument("SQ8::Train: empty input");
  }
  ScalarQuantizer8 sq;
  sq.dim_ = static_cast<uint32_t>(d);
  sq.vmin_.assign(d, data[0]);
  std::vector<float> vmax(d, data[0]);
  for (size_t t = 0; t < d; ++t) {
    sq.vmin_[t] = vmax[t] = data[t];
  }
  for (size_t i = 1; i < n; ++i) {
    const float* x = data + i * d;
    for (size_t t = 0; t < d; ++t) {
      sq.vmin_[t] = std::min(sq.vmin_[t], x[t]);
      vmax[t] = std::max(vmax[t], x[t]);
    }
  }
  sq.vscale_.resize(d);
  for (size_t t = 0; t < d; ++t) {
    sq.vscale_[t] = (vmax[t] - sq.vmin_[t]) / 255.f;
  }
  return sq;
}

void ScalarQuantizer8::Encode(const float* vec, uint8_t* code) const {
  for (uint32_t t = 0; t < dim_; ++t) {
    if (vscale_[t] == 0.f) {
      code[t] = 0;
      continue;
    }
    float q = std::round((vec[t] - vmin_[t]) / vscale_[t]);
    q = std::clamp(q, 0.f, 255.f);
    code[t] = static_cast<uint8_t>(q);
  }
}

void ScalarQuantizer8::Decode(const uint8_t* code, float* vec) const {
  for (uint32_t t = 0; t < dim_; ++t) {
    vec[t] = vmin_[t] + (static_cast<float>(code[t]) + 0.5f) * vscale_[t];
  }
}

float ScalarQuantizer8::DistanceToCode(const float* query,
                                       const uint8_t* code) const {
  float s = 0.f;
  for (uint32_t t = 0; t < dim_; ++t) {
    const float rec = vmin_[t] + (static_cast<float>(code[t]) + 0.5f) * vscale_[t];
    const float diff = query[t] - rec;
    s += diff * diff;
  }
  return s;
}

Sq8Query ScalarQuantizer8::PrepareQuery(const float* query) const {
  Sq8Query q;
  q.qadj.resize(dim_);
  for (uint32_t t = 0; t < dim_; ++t) {
    q.qadj[t] = query[t] - vmin_[t] - 0.5f * vscale_[t];
  }
  return q;
}

float ScalarQuantizer8::DistanceToCode(const Sq8Query& q,
                                       const uint8_t* code) const {
  float out;
  ActiveKernels().sq8_l2_batch(q.qadj.data(), vscale_.data(), dim_, code, 1,
                               &out);
  return out;
}

void ScalarQuantizer8::DistanceToCodesBatch(const Sq8Query& q,
                                            const uint8_t* codes, size_t n,
                                            float* out) const {
  ActiveKernels().sq8_l2_batch(q.qadj.data(), vscale_.data(), dim_, codes, n,
                               out);
}

void ScalarQuantizer8::DistanceToCodesGather(const Sq8Query& q,
                                             const uint8_t* const* codes,
                                             size_t n, float* out) const {
  ActiveKernels().sq8_l2_gather(q.qadj.data(), vscale_.data(), dim_, codes, n,
                                out);
}

void Sq8CodeStore::Reset(size_t code_size) {
  code_size_ = code_size;
  ids_.clear();
}

void Sq8CodeStore::Append(const uint8_t* code, int64_t id) {
  const size_t n = ids_.size();
  if (n == capacity_codes_) {
    size_t cap = capacity_codes_ == 0 ? kBlockCodes : capacity_codes_ * 2;
    const size_t bytes = (cap * code_size_ + 63) / 64 * 64;
    uint8_t* fresh = static_cast<uint8_t*>(std::aligned_alloc(64, bytes));
    if (codes_ != nullptr) {
      std::memcpy(fresh, codes_, n * code_size_);
      std::free(codes_);
    }
    codes_ = fresh;
    capacity_codes_ = cap;
  }
  std::memcpy(codes_ + n * code_size_, code, code_size_);
  ids_.push_back(id);
}

}  // namespace vecdb
