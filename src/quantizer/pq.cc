#include "quantizer/pq.h"

#include <cstring>
#include <limits>

#include "common/serialize.h"
#include "distance/kernels.h"
#include "distance/sgemm.h"

namespace vecdb {

Result<ProductQuantizer> ProductQuantizer::Train(const float* data, size_t n,
                                                 size_t d,
                                                 const PqOptions& options) {
  if (data == nullptr || n == 0 || d == 0) {
    return Status::InvalidArgument("PQ::Train: empty input");
  }
  if (options.num_subvectors == 0 || d % options.num_subvectors != 0) {
    return Status::InvalidArgument(
        "PQ::Train: num_subvectors must divide dim (m=" +
        std::to_string(options.num_subvectors) + ", d=" + std::to_string(d) +
        ")");
  }
  if (options.num_codes == 0 || options.num_codes > 256) {
    return Status::InvalidArgument("PQ::Train: num_codes must be in [1, 256]");
  }
  if (n < options.num_codes) {
    return Status::InvalidArgument(
        "PQ::Train: need at least c_pq training vectors");
  }

  ProductQuantizer pq;
  pq.dim_ = static_cast<uint32_t>(d);
  pq.use_ref_kernel_ = !options.use_sgemm;
  pq.m_ = options.num_subvectors;
  pq.c_pq_ = options.num_codes;
  pq.sub_dim_ = pq.dim_ / pq.m_;
  pq.codebooks_.Resize(static_cast<size_t>(pq.m_) * pq.c_pq_ * pq.sub_dim_);
  pq.codeword_norms_.resize(static_cast<size_t>(pq.m_) * pq.c_pq_);

  // Train one K-means per subspace on the sliced training set.
  AlignedFloats slice(n * pq.sub_dim_);
  for (uint32_t sub = 0; sub < pq.m_; ++sub) {
    ProfScope scope(options.profiler, "pq_train_subspace");
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(slice.data() + i * pq.sub_dim_,
                  data + i * d + static_cast<size_t>(sub) * pq.sub_dim_,
                  pq.sub_dim_ * sizeof(float));
    }
    KMeansOptions km;
    km.num_clusters = pq.c_pq_;
    km.max_iterations = options.max_iterations;
    km.sample_ratio = 1.0;  // the caller already sampled the training set
    km.style = options.style;
    km.use_sgemm = options.use_sgemm;
    km.seed = options.seed + sub;
    km.pool = options.pool;
    km.profiler = options.profiler;
    VECDB_ASSIGN_OR_RETURN(KMeansModel model,
                           TrainKMeans(slice.data(), n, pq.sub_dim_, km));
    std::memcpy(pq.codebooks_.data() +
                    static_cast<size_t>(sub) * pq.c_pq_ * pq.sub_dim_,
                model.centroids.data(),
                static_cast<size_t>(pq.c_pq_) * pq.sub_dim_ * sizeof(float));
  }

  // Train-time codeword norms power the optimized distance table (RC#7).
  for (uint32_t sub = 0; sub < pq.m_; ++sub) {
    RowNormsSqr(pq.codebook(sub), pq.c_pq_, pq.sub_dim_,
                pq.codeword_norms_.data() + static_cast<size_t>(sub) * pq.c_pq_);
  }
  return pq;
}

void ProductQuantizer::Encode(const float* vec, uint8_t* code) const {
  // PASE encodes with its reference scalar kernel; the Faiss path uses the
  // optimized one (the same contrast as the IVF adding phase, RC#1).
  auto kernel = use_ref_kernel_ ? &L2SqrRef : &L2Sqr;
  for (uint32_t sub = 0; sub < m_; ++sub) {
    const float* x = vec + static_cast<size_t>(sub) * sub_dim_;
    const float* cb = codebook(sub);
    uint32_t best = 0;
    float best_d = std::numeric_limits<float>::infinity();
    for (uint32_t j = 0; j < c_pq_; ++j) {
      const float dist = kernel(x, cb + static_cast<size_t>(j) * sub_dim_,
                                sub_dim_);
      if (dist < best_d) {
        best_d = dist;
        best = j;
      }
    }
    code[sub] = static_cast<uint8_t>(best);
  }
}

void ProductQuantizer::Decode(const uint8_t* code, float* vec) const {
  for (uint32_t sub = 0; sub < m_; ++sub) {
    std::memcpy(vec + static_cast<size_t>(sub) * sub_dim_,
                codebook(sub) + static_cast<size_t>(code[sub]) * sub_dim_,
                sub_dim_ * sizeof(float));
  }
}

void ProductQuantizer::ComputeDistanceTableNaive(const float* query,
                                                 float* table) const {
  // The PASE implementation: one reference scalar kernel call per
  // (subspace, codeword) pair, recomputing everything per query (RC#7).
  for (uint32_t sub = 0; sub < m_; ++sub) {
    const float* q = query + static_cast<size_t>(sub) * sub_dim_;
    const float* cb = codebook(sub);
    float* row = table + static_cast<size_t>(sub) * c_pq_;
    for (uint32_t j = 0; j < c_pq_; ++j) {
      row[j] = L2SqrRef(q, cb + static_cast<size_t>(j) * sub_dim_, sub_dim_);
    }
  }
}

void ProductQuantizer::ComputeDistanceTableOptimized(const float* query,
                                                     float* table) const {
  // The Faiss implementation (RC#7): codeword norms were computed once at
  // training time, so the per-query work reduces to vectorized inner
  // products combined as ‖q‖² + ‖c‖² − 2 q·c.
  for (uint32_t sub = 0; sub < m_; ++sub) {
    const float* q = query + static_cast<size_t>(sub) * sub_dim_;
    const float* cb = codebook(sub);
    const float* norms = codeword_norms_.data() + static_cast<size_t>(sub) * c_pq_;
    float* row = table + static_cast<size_t>(sub) * c_pq_;
    const float qn = L2NormSqr(q, sub_dim_);
    for (uint32_t j = 0; j < c_pq_; ++j) {
      const float ip = InnerProduct(q, cb + static_cast<size_t>(j) * sub_dim_,
                                    sub_dim_);
      const float v = qn + norms[j] - 2.f * ip;
      row[j] = v < 0.f ? 0.f : v;
    }
  }
}

Status ProductQuantizer::Serialize(BinaryWriter* writer) const {
  VECDB_RETURN_NOT_OK(writer->Write(dim_));
  VECDB_RETURN_NOT_OK(writer->Write(m_));
  VECDB_RETURN_NOT_OK(writer->Write(c_pq_));
  VECDB_RETURN_NOT_OK(writer->Write(sub_dim_));
  VECDB_RETURN_NOT_OK(writer->Write(use_ref_kernel_));
  VECDB_RETURN_NOT_OK(writer->WriteFloats(codebooks_));
  VECDB_RETURN_NOT_OK(writer->WriteVector(codeword_norms_));
  return Status::OK();
}

Result<ProductQuantizer> ProductQuantizer::Deserialize(BinaryReader* reader) {
  ProductQuantizer pq;
  VECDB_RETURN_NOT_OK(reader->Read(&pq.dim_));
  VECDB_RETURN_NOT_OK(reader->Read(&pq.m_));
  VECDB_RETURN_NOT_OK(reader->Read(&pq.c_pq_));
  VECDB_RETURN_NOT_OK(reader->Read(&pq.sub_dim_));
  VECDB_RETURN_NOT_OK(reader->Read(&pq.use_ref_kernel_));
  VECDB_RETURN_NOT_OK(reader->ReadFloats(&pq.codebooks_));
  VECDB_RETURN_NOT_OK(reader->ReadVector(&pq.codeword_norms_));
  if (pq.m_ == 0 || pq.sub_dim_ == 0 || pq.dim_ != pq.m_ * pq.sub_dim_ ||
      pq.codebooks_.size() !=
          static_cast<size_t>(pq.m_) * pq.c_pq_ * pq.sub_dim_ ||
      pq.codeword_norms_.size() != static_cast<size_t>(pq.m_) * pq.c_pq_) {
    return Status::Corruption("PQ: inconsistent serialized geometry");
  }
  return pq;
}

double ProductQuantizer::ReconstructionError(const float* data,
                                             size_t n) const {
  std::vector<uint8_t> code(code_size());
  std::vector<float> rec(dim_);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Encode(data + i * dim_, code.data());
    Decode(code.data(), rec.data());
    total += L2Sqr(data + i * dim_, rec.data(), dim_);
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace vecdb
