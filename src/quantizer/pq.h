// Product quantization (Jégou et al.), the compression layer of IVF_PQ.
// Includes both precomputed-distance-table implementations the paper
// contrasts (RC#7): PASE's naive per-pair table and Faiss's optimized
// norm/inner-product decomposition with train-time centroid norms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/profiler.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "clustering/kmeans.h"

namespace vecdb {

/// Training knobs for ProductQuantizer. Names follow the paper's Table II.
struct PqOptions {
  uint32_t num_subvectors = 16;  ///< m — must divide the vector dimension
  uint32_t num_codes = 256;      ///< c_pq — codewords per subspace (≤ 256)
  int max_iterations = 10;       ///< K-means iterations per subspace
  KMeansStyle style = KMeansStyle::kFaissStyle;
  /// When false, encoding and the naive distance table run on the PASE
  /// reference scalar kernel (fvec_L2sqr_ref) — the paper's "use the same
  /// code as in PASE" configuration (Fig 6).
  bool use_sgemm = true;
  uint64_t seed = 42;
  ThreadPool* pool = nullptr;
  Profiler* profiler = nullptr;
};

/// A trained product quantizer: m per-subspace codebooks of c_pq codewords.
///
/// Codes are m bytes per vector (c_pq ≤ 256). Asymmetric distance
/// computation (ADC) evaluates ‖q − decode(code)‖² as a sum of m table
/// lookups after building a per-query distance table.
class ProductQuantizer {
 public:
  /// Trains per-subspace codebooks on `n` row-major d-dim vectors.
  /// Fails if m does not divide d, c_pq > 256, or n < c_pq.
  static Result<ProductQuantizer> Train(const float* data, size_t n, size_t d,
                                        const PqOptions& options);

  uint32_t dim() const { return dim_; }
  uint32_t num_subvectors() const { return m_; }
  uint32_t num_codes() const { return c_pq_; }
  uint32_t sub_dim() const { return sub_dim_; }

  /// Bytes per encoded vector (= m).
  size_t code_size() const { return m_; }

  /// Floats per query distance table (= m * c_pq).
  size_t table_size() const { return static_cast<size_t>(m_) * c_pq_; }

  /// Quantizes `vec` (dim floats) into `code` (code_size() bytes).
  void Encode(const float* vec, uint8_t* code) const;

  /// Reconstructs an approximate vector from a code.
  void Decode(const uint8_t* code, float* vec) const;

  /// Builds the per-query ADC table the PASE way: an L2 kernel call per
  /// (subspace, codeword) pair (paper RC#7 naive variant).
  void ComputeDistanceTableNaive(const float* query, float* table) const;

  /// Builds the ADC table the Faiss way: centroid norms precomputed at
  /// train time, query-codeword inner products via one batched product per
  /// subspace, combined as ‖q‖² + ‖c‖² − 2 q·c (paper RC#7 optimized).
  void ComputeDistanceTableOptimized(const float* query, float* table) const;

  /// ADC distance: sum over subspaces of table[sub * c_pq + code[sub]].
  float AdcDistance(const float* table, const uint8_t* code) const {
    float s = 0.f;
    for (uint32_t sub = 0; sub < m_; ++sub) {
      s += table[sub * c_pq_ + code[sub]];
    }
    return s;
  }

  /// Codebook for one subspace: c_pq rows of sub_dim floats.
  const float* codebook(uint32_t sub) const {
    return codebooks_.data() +
           static_cast<size_t>(sub) * c_pq_ * sub_dim_;
  }

  /// Mean squared reconstruction error over `n` vectors (diagnostic).
  double ReconstructionError(const float* data, size_t n) const;

  /// Appends the quantizer's state to an open writer.
  Status Serialize(class BinaryWriter* writer) const;

  /// Reads a quantizer previously written by Serialize.
  static Result<ProductQuantizer> Deserialize(class BinaryReader* reader);

 private:
  ProductQuantizer() = default;

  uint32_t dim_ = 0;
  uint32_t m_ = 0;
  uint32_t c_pq_ = 0;
  uint32_t sub_dim_ = 0;
  bool use_ref_kernel_ = false;        // PASE-path scalar kernel
  AlignedFloats codebooks_;           // m * c_pq * sub_dim
  std::vector<float> codeword_norms_;  // m * c_pq, ‖c‖² (optimized table)
};

}  // namespace vecdb
