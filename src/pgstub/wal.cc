#include "pgstub/wal.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace vecdb::pgstub {

namespace {
struct RecordHeader {
  Lsn lsn;
  uint32_t payload_len;
  uint32_t rel;
  uint32_t block;
  uint8_t type;
  uint8_t pad[3];
};
}  // namespace

uint32_t Crc32c(const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

Result<WalManager> WalManager::Open(const std::string& path) {
  // Scan any existing log to find the next LSN, then reopen for append.
  Lsn next = 1;
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe != nullptr) {
    std::fclose(probe);
    Status scan = Replay(path, [&next](const WalRecord& record) {
      next = record.lsn + 1;
      return Status::OK();
    });
    if (!scan.ok()) return scan;
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IOError("cannot open WAL " + path);
  return WalManager(f, next);
}

WalManager::~WalManager() {
  // Destructors are exempt from thread-safety analysis (an object being
  // destroyed must not be shared), so file_ is accessed directly.
  if (file_ != nullptr) std::fclose(file_);
}

WalManager::WalManager(WalManager&& other) noexcept {
  // Lock the source: a move may race with a straggling logger holding a
  // pointer to `other`. This object is still construction-private, so its
  // own members need no lock (constructors are exempt from the analysis).
  MutexLock lock(other.mu_);
  file_ = std::exchange(other.file_, nullptr);
  next_lsn_ = other.next_lsn_;
}

Status WalManager::AppendRecord(WalRecordType type, RelId rel, BlockId block,
                                const char* payload, uint32_t payload_len) {
  if (file_ == nullptr) return Status::InvalidArgument("WAL closed");
  RecordHeader header{};
  header.lsn = next_lsn_;
  header.payload_len = payload_len;
  header.rel = rel;
  header.block = block;
  header.type = static_cast<uint8_t>(type);
  uint32_t crc = Crc32c(&header, sizeof(header));
  if (payload_len > 0) {
    // Chain the CRC over header and payload.
    crc ^= Crc32c(payload, payload_len);
  }
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1 ||
      (payload_len > 0 &&
       std::fwrite(payload, 1, payload_len, file_) != payload_len) ||
      std::fwrite(&crc, sizeof(crc), 1, file_) != 1) {
    return Status::IOError("WAL append failed");
  }
  ++next_lsn_;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Add(obs::Counter::kWalRecords);
  metrics.Add(obs::Counter::kWalBytes,
              sizeof(header) + payload_len + sizeof(crc));
  return Status::OK();
}

Result<Lsn> WalManager::LogFullPage(RelId rel, BlockId block,
                                    const char* page, uint32_t page_size) {
  MutexLock lock(mu_);
  const Lsn lsn = next_lsn_;
  VECDB_RETURN_NOT_OK(
      AppendRecord(WalRecordType::kFullPage, rel, block, page, page_size));
  return lsn;
}

Result<Lsn> WalManager::LogCheckpoint() {
  MutexLock lock(mu_);
  const Lsn lsn = next_lsn_;
  VECDB_RETURN_NOT_OK(AppendRecord(WalRecordType::kCheckpoint, kInvalidRel,
                                   kInvalidBlock, nullptr, 0));
  VECDB_RETURN_NOT_OK(FlushLocked());
  return lsn;
}

Status WalManager::Flush() {
  MutexLock lock(mu_);
  return FlushLocked();
}

Status WalManager::FlushLocked() {
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  return Status::OK();
}

Status WalManager::Replay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open WAL " + path);

  // First pass: decode all intact records, remember the last checkpoint.
  std::vector<WalRecord> records;
  size_t last_checkpoint = 0;  // index+1 of last checkpoint record
  for (;;) {
    RecordHeader header;
    if (std::fread(&header, sizeof(header), 1, f) != 1) break;  // clean EOF
    if (header.payload_len > (64u << 20)) break;  // torn/corrupt tail
    WalRecord record;
    record.lsn = header.lsn;
    record.type = static_cast<WalRecordType>(header.type);
    record.rel = header.rel;
    record.block = header.block;
    record.payload.resize(header.payload_len);
    if (header.payload_len > 0 &&
        std::fread(record.payload.data(), 1, header.payload_len, f) !=
            header.payload_len) {
      break;  // torn tail
    }
    uint32_t stored_crc = 0;
    if (std::fread(&stored_crc, sizeof(stored_crc), 1, f) != 1) break;
    uint32_t crc = Crc32c(&header, sizeof(header));
    if (header.payload_len > 0) {
      crc ^= Crc32c(record.payload.data(), header.payload_len);
    }
    if (crc != stored_crc) break;  // torn or corrupt: stop replay here
    if (record.type == WalRecordType::kCheckpoint) {
      last_checkpoint = records.size() + 1;
    }
    records.push_back(std::move(record));
  }
  std::fclose(f);

  for (size_t i = last_checkpoint; i < records.size(); ++i) {
    VECDB_RETURN_NOT_OK(apply(records[i]));
  }
  return Status::OK();
}

Status WalManager::Recover(const std::string& path, StorageManager* smgr) {
  return Replay(path, [smgr](const WalRecord& record) -> Status {
    if (record.type != WalRecordType::kFullPage) return Status::OK();
    if (record.payload.size() != smgr->page_size()) {
      return Status::Corruption("WAL page image size mismatch");
    }
    // Extend the relation up to the logged block, then write the image.
    VECDB_ASSIGN_OR_RETURN(BlockId blocks, smgr->NumBlocks(record.rel));
    while (blocks <= record.block) {
      VECDB_ASSIGN_OR_RETURN(BlockId fresh, smgr->ExtendRelation(record.rel));
      blocks = fresh + 1;
    }
    return smgr->WriteBlock(record.rel, record.block, record.payload.data());
  });
}

}  // namespace vecdb::pgstub
