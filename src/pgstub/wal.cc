#include "pgstub/wal.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace vecdb::pgstub {

namespace {

constexpr char kMagic[4] = {'V', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMaxPayload = 64u << 20;

/// 32-byte log file header. start_lsn preserves LSN monotonicity across
/// rotation: the fresh segment is empty but must not restart at 1. The
/// CRC covers the first 24 bytes so a torn header write is detectable.
struct FileHeader {
  char magic[4];
  uint32_t version;
  uint64_t start_lsn;
  uint64_t reserved;
  uint32_t crc;
  uint32_t pad;
};
static_assert(sizeof(FileHeader) == 32);

struct RecordHeader {
  Lsn lsn;
  uint32_t payload_len;
  uint32_t rel;
  uint32_t block;
  uint8_t type;
  uint8_t pad[3];
};
static_assert(sizeof(RecordHeader) == 24);

FileHeader MakeFileHeader(Lsn start_lsn) {
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.start_lsn = start_lsn;
  h.reserved = 0;
  h.crc = Crc32c(&h, offsetof(FileHeader, crc));
  h.pad = 0;
  return h;
}

/// Everything one sequential scan of a log file yields. A torn tail or
/// torn/absent file header is normal operation after a crash, never an
/// error; `header_valid == false` means the file carries no usable state.
struct DecodedLog {
  bool header_valid = false;
  Lsn start_lsn = 1;
  std::vector<WalRecord> records;
  size_t last_checkpoint = 0;  ///< index+1 of last checkpoint record
  Lsn max_lsn = 0;             ///< max over ALL intact records
  uint64_t end_offset = 0;     ///< end of last intact frame
};

Result<DecodedLog> DecodeAll(VfsFile* file) {
  DecodedLog out;
  FileHeader fh;
  VECDB_ASSIGN_OR_RETURN(size_t got, file->ReadAt(0, &fh, sizeof(fh)));
  if (got != sizeof(fh) || std::memcmp(fh.magic, kMagic, sizeof(kMagic)) != 0 ||
      fh.version != kVersion || fh.crc != Crc32c(&fh, offsetof(FileHeader, crc))) {
    return out;  // torn or foreign header: an empty log
  }
  out.header_valid = true;
  out.start_lsn = fh.start_lsn;
  out.end_offset = sizeof(fh);

  uint64_t off = sizeof(fh);
  for (;;) {
    RecordHeader header;
    VECDB_ASSIGN_OR_RETURN(got, file->ReadAt(off, &header, sizeof(header)));
    if (got != sizeof(header)) break;  // clean EOF or torn tail
    if (header.payload_len > kMaxPayload) break;  // corrupt length
    WalRecord record;
    record.lsn = header.lsn;
    record.type = static_cast<WalRecordType>(header.type);
    record.rel = header.rel;
    record.block = header.block;
    record.payload.resize(header.payload_len);
    if (header.payload_len > 0) {
      VECDB_ASSIGN_OR_RETURN(
          got, file->ReadAt(off + sizeof(header), record.payload.data(),
                            header.payload_len));
      if (got != header.payload_len) break;  // torn tail
    }
    uint32_t stored_crc = 0;
    VECDB_ASSIGN_OR_RETURN(
        got, file->ReadAt(off + sizeof(header) + header.payload_len,
                          &stored_crc, sizeof(stored_crc)));
    if (got != sizeof(stored_crc)) break;
    uint32_t state = Crc32cUpdate(Crc32cInit(), &header, sizeof(header));
    state = Crc32cUpdate(state, record.payload.data(), header.payload_len);
    if (Crc32cFinalize(state) != stored_crc) break;  // torn or corrupt
    if (record.type == WalRecordType::kCheckpoint) {
      out.last_checkpoint = out.records.size() + 1;
    }
    if (record.lsn > out.max_lsn) out.max_lsn = record.lsn;
    off += sizeof(header) + header.payload_len + sizeof(stored_crc);
    out.end_offset = off;
    out.records.push_back(std::move(record));
  }
  return out;
}

}  // namespace

Result<WalManager> WalManager::Open(Vfs* vfs, const std::string& path) {
  // Clear a segment left behind by a rotation that crashed pre-rename.
  const std::string tmp = path + ".new";
  VECDB_ASSIGN_OR_RETURN(bool stale, vfs->Exists(tmp));
  if (stale) VECDB_RETURN_NOT_OK(vfs->Remove(tmp));

  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                         vfs->Open(path, /*create=*/true));
  VECDB_ASSIGN_OR_RETURN(DecodedLog log, DecodeAll(file.get()));
  if (!log.header_valid) {
    // Fresh file, or a header torn at initial creation (before any record
    // could exist): start a clean v2 log.
    VECDB_RETURN_NOT_OK(file->Truncate(0));
    FileHeader fh = MakeFileHeader(1);
    VECDB_RETURN_NOT_OK(file->WriteAt(0, &fh, sizeof(fh)));
    VECDB_RETURN_NOT_OK(file->Sync());
    return WalManager(vfs, std::move(file), path, sizeof(fh), 1);
  }
  // The LSN-reuse fix: next comes from the max over ALL decoded records
  // (plus the rotation floor), not from the post-checkpoint replay set.
  Lsn next = log.max_lsn + 1;
  if (log.start_lsn > next) next = log.start_lsn;
  // Drop any torn tail so the next append starts a clean frame.
  VECDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size > log.end_offset) {
    VECDB_RETURN_NOT_OK(file->Truncate(log.end_offset));
  }
  return WalManager(vfs, std::move(file), path, log.end_offset, next);
}

WalManager::WalManager(WalManager&& other) noexcept {
  // Lock the source: a move may race with a straggling logger holding a
  // pointer to `other`. This object is still construction-private, so its
  // own members need no lock (constructors are exempt from the analysis).
  MutexLock lock(other.mu_);
  vfs_ = other.vfs_;
  file_ = std::move(other.file_);
  path_ = std::move(other.path_);
  size_ = other.size_;
  next_lsn_ = other.next_lsn_;
}

Status WalManager::AppendRecord(WalRecordType type, RelId rel, BlockId block,
                                const char* payload, uint32_t payload_len) {
  if (file_ == nullptr) return Status::InvalidArgument("WAL closed");
  RecordHeader header{};
  header.lsn = next_lsn_;
  header.payload_len = payload_len;
  header.rel = rel;
  header.block = block;
  header.type = static_cast<uint8_t>(type);
  // One streaming CRC across header and payload: correlated flips in the
  // two regions cannot cancel the way the old header^payload XOR could.
  uint32_t state = Crc32cUpdate(Crc32cInit(), &header, sizeof(header));
  state = Crc32cUpdate(state, payload, payload_len);
  const uint32_t crc = Crc32cFinalize(state);

  // One contiguous frame, one WriteAt: the fault harness then sees each
  // record as a single write, and a crash tears at most this frame.
  std::vector<char> frame(sizeof(header) + payload_len + sizeof(crc));
  std::memcpy(frame.data(), &header, sizeof(header));
  if (payload_len > 0) {
    std::memcpy(frame.data() + sizeof(header), payload, payload_len);
  }
  std::memcpy(frame.data() + sizeof(header) + payload_len, &crc, sizeof(crc));
  VECDB_RETURN_NOT_OK(file_->WriteAt(size_, frame.data(), frame.size()));
  size_ += frame.size();
  ++next_lsn_;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Add(obs::Counter::kWalRecords);
  metrics.Add(obs::Counter::kWalBytes, frame.size());
  return Status::OK();
}

Result<Lsn> WalManager::LogFullPage(RelId rel, BlockId block,
                                    const char* page, uint32_t page_size) {
  MutexLock lock(mu_);
  const Lsn lsn = next_lsn_;
  VECDB_RETURN_NOT_OK(
      AppendRecord(WalRecordType::kFullPage, rel, block, page, page_size));
  return lsn;
}

Result<Lsn> WalManager::LogTombstone(RelId rel, int64_t row_id) {
  MutexLock lock(mu_);
  const Lsn lsn = next_lsn_;
  char payload[sizeof(int64_t)];
  std::memcpy(payload, &row_id, sizeof(row_id));
  VECDB_RETURN_NOT_OK(AppendRecord(WalRecordType::kTombstone, rel,
                                   kInvalidBlock, payload, sizeof(payload)));
  return lsn;
}

Result<Lsn> WalManager::LogCheckpoint() {
  MutexLock lock(mu_);
  const Lsn lsn = next_lsn_;
  VECDB_RETURN_NOT_OK(AppendRecord(WalRecordType::kCheckpoint, kInvalidRel,
                                   kInvalidBlock, nullptr, 0));
  VECDB_RETURN_NOT_OK(FlushLocked());
  obs::MetricsRegistry::Global().Add(obs::Counter::kWalCheckpoints);
  return lsn;
}

Status WalManager::Rotate() {
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::InvalidArgument("WAL closed");
  const std::string tmp = path_ + ".new";
  VECDB_ASSIGN_OR_RETURN(bool stale, vfs_->Exists(tmp));
  if (stale) VECDB_RETURN_NOT_OK(vfs_->Remove(tmp));
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> fresh,
                         vfs_->Open(tmp, /*create=*/true));
  FileHeader fh = MakeFileHeader(next_lsn_);
  VECDB_RETURN_NOT_OK(fresh->WriteAt(0, &fh, sizeof(fh)));
  VECDB_RETURN_NOT_OK(fresh->Sync());
  // The commit point. Until this rename, the old segment (ending in the
  // caller's checkpoint record) stays live, so a crash anywhere above
  // recovers identically to no rotation at all.
  VECDB_RETURN_NOT_OK(vfs_->Rename(tmp, path_));
  file_ = std::move(fresh);
  size_ = sizeof(fh);
  return Status::OK();
}

Status WalManager::Flush() {
  MutexLock lock(mu_);
  return FlushLocked();
}

Status WalManager::FlushLocked() {
  if (file_ == nullptr) return Status::OK();
  return file_->Sync();
}

Status WalManager::Replay(
    Vfs* vfs, const std::string& path,
    const std::function<Status(const WalRecord&)>& apply) {
  VECDB_ASSIGN_OR_RETURN(bool exists, vfs->Exists(path));
  if (!exists) return Status::OK();  // no log: nothing to replay
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                         vfs->Open(path, /*create=*/false));
  VECDB_ASSIGN_OR_RETURN(DecodedLog log, DecodeAll(file.get()));
  for (size_t i = log.last_checkpoint; i < log.records.size(); ++i) {
    VECDB_RETURN_NOT_OK(apply(log.records[i]));
  }
  return Status::OK();
}

Status WalManager::Recover(Vfs* vfs, const std::string& path,
                           StorageManager* smgr,
                           std::vector<WalTombstone>* tombstones) {
  auto& metrics = obs::MetricsRegistry::Global();
  return Replay(vfs, path, [&](const WalRecord& record) -> Status {
    switch (record.type) {
      case WalRecordType::kFullPage: {
        if (record.payload.size() != smgr->page_size()) {
          return Status::Corruption("WAL page image size mismatch");
        }
        // The relation may have been dropped after this record was logged
        // (its removal survived via the durable relation manifest); its
        // stale images must not resurrect anything.
        auto blocks_r = smgr->NumBlocks(record.rel);
        if (blocks_r.status().IsNotFound()) return Status::OK();
        VECDB_RETURN_NOT_OK(blocks_r.status());
        BlockId blocks = *blocks_r;
        while (blocks <= record.block) {
          VECDB_ASSIGN_OR_RETURN(BlockId fresh,
                                 smgr->ExtendRelation(record.rel));
          blocks = fresh + 1;
        }
        VECDB_RETURN_NOT_OK(
            smgr->WriteBlock(record.rel, record.block, record.payload.data()));
        metrics.Add(obs::Counter::kWalRecoveredPages);
        return Status::OK();
      }
      case WalRecordType::kTombstone: {
        if (record.payload.size() != sizeof(int64_t)) {
          return Status::Corruption("WAL tombstone payload size mismatch");
        }
        if (tombstones != nullptr &&
            smgr->NumBlocks(record.rel).ok()) {  // skip dropped relations
          WalTombstone t;
          t.rel = record.rel;
          std::memcpy(&t.row_id, record.payload.data(), sizeof(t.row_id));
          tombstones->push_back(t);
        }
        return Status::OK();
      }
      case WalRecordType::kCheckpoint:
        return Status::OK();
    }
    return Status::Corruption("unknown WAL record type");
  });
}

}  // namespace vecdb::pgstub
