// Storage manager: one file per relation under a data directory, read and
// written in page-sized blocks (PostgreSQL's md.c analog). The buffer
// manager is the only intended caller.
//
// Relation ids and names persist across process restarts via a manifest
// file (`RELMAP`, rewritten atomically on every create/drop), so a reopened
// directory serves the same relations under the same ids — the property WAL
// replay depends on, since log records address pages by RelId. Ids are
// monotonic and never reused: recycling an id would let stale full-page
// images from before a drop replay into an unrelated relation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "pgstub/page.h"
#include "pgstub/vfs.h"

namespace vecdb::pgstub {

/// Relation identifier assigned by the storage manager.
using RelId = uint32_t;
constexpr RelId kInvalidRel = 0xffffffffu;

/// File-per-relation block storage rooted at a data directory.
///
/// Not thread-safe; the buffer manager serializes access. Files are kept
/// open for the manager's lifetime (PostgreSQL keeps per-backend fd caches
/// the same way).
class StorageManager {
 public:
  /// Creates/opens a data directory; `page_size` applies to all relations.
  /// Reopening a directory that already has a manifest re-attaches every
  /// relation (same ids, same names) and fails with InvalidArgument if
  /// `page_size` disagrees with the manifest.
  static Result<StorageManager> Open(Vfs* vfs, const std::string& dir,
                                     uint32_t page_size);
  static Result<StorageManager> Open(const std::string& dir,
                                     uint32_t page_size) {
    return Open(Vfs::Default(), dir, page_size);
  }

  ~StorageManager() = default;
  StorageManager(StorageManager&&) noexcept = default;
  StorageManager& operator=(StorageManager&&) noexcept = default;
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates a relation file; fails with AlreadyExists on a name clash.
  /// The file is created (and truncated, reclaiming any orphan left by a
  /// crashed drop) BEFORE the manifest commits the relation, so a
  /// manifest entry always refers to an existing file.
  Result<RelId> CreateRelation(const std::string& name);

  /// Looks up a relation by name.
  Result<RelId> FindRelation(const std::string& name) const;

  /// Removes a relation and its file. The manifest commits the removal
  /// first; a crash before the file unlink leaves an orphan file that the
  /// next CreateRelation of that name truncates.
  Status DropRelation(RelId rel);

  /// Number of blocks currently allocated to the relation.
  Result<BlockId> NumBlocks(RelId rel) const;

  /// Appends a zeroed block; returns its BlockId.
  Result<BlockId> ExtendRelation(RelId rel);

  /// Reads block `block` of `rel` into `buf` (page_size bytes).
  Status ReadBlock(RelId rel, BlockId block, char* buf) const;

  /// Writes `buf` to block `block` of `rel`.
  Status WriteBlock(RelId rel, BlockId block, const char* buf);

  /// Flushes every open relation file (checkpoint prerequisite).
  Status SyncAll();

  /// All live relations as (id, name), id-ascending — recovery uses this
  /// to garbage-collect relations no catalogued object owns.
  std::vector<std::pair<RelId, std::string>> ListRelations() const;

  uint32_t page_size() const { return page_size_; }
  const std::string& dir() const { return dir_; }

 private:
  struct RelFile {
    std::string name;
    std::unique_ptr<VfsFile> file;
    BlockId num_blocks = 0;
  };

  StorageManager(Vfs* vfs, std::string dir, uint32_t page_size)
      : vfs_(vfs), dir_(std::move(dir)), page_size_(page_size) {}

  Status CheckRel(RelId rel) const;
  std::string RelPath(const std::string& name) const {
    return dir_ + "/" + name + ".rel";
  }
  /// Atomically rewrites the manifest from current in-memory state.
  Status SaveManifest() const;
  Status LoadManifest();

  Vfs* vfs_;
  std::string dir_;
  uint32_t page_size_;
  std::vector<RelFile> rels_;  ///< indexed by RelId; dropped slots are null
  std::unordered_map<std::string, RelId> by_name_;
};

}  // namespace vecdb::pgstub
