// Storage manager: one file per relation under a data directory, read and
// written in page-sized blocks (PostgreSQL's md.c analog). The buffer
// manager is the only intended caller.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "pgstub/page.h"

namespace vecdb::pgstub {

/// Relation identifier assigned by the storage manager.
using RelId = uint32_t;
constexpr RelId kInvalidRel = 0xffffffffu;

/// File-per-relation block storage rooted at a data directory.
///
/// Not thread-safe; the buffer manager serializes access. Files are kept
/// open for the manager's lifetime (PostgreSQL keeps per-backend fd caches
/// the same way).
class StorageManager {
 public:
  /// Creates/opens a data directory; `page_size` applies to all relations.
  static Result<StorageManager> Open(const std::string& dir,
                                     uint32_t page_size);

  ~StorageManager();
  StorageManager(StorageManager&&) noexcept;
  StorageManager& operator=(StorageManager&&) noexcept;
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates a relation file; fails with AlreadyExists on a name clash.
  Result<RelId> CreateRelation(const std::string& name);

  /// Looks up a relation by name.
  Result<RelId> FindRelation(const std::string& name) const;

  /// Removes a relation and its file.
  Status DropRelation(RelId rel);

  /// Number of blocks currently allocated to the relation.
  Result<BlockId> NumBlocks(RelId rel) const;

  /// Appends a zeroed block; returns its BlockId.
  Result<BlockId> ExtendRelation(RelId rel);

  /// Reads block `block` of `rel` into `buf` (page_size bytes).
  Status ReadBlock(RelId rel, BlockId block, char* buf) const;

  /// Writes `buf` to block `block` of `rel`.
  Status WriteBlock(RelId rel, BlockId block, const char* buf);

  uint32_t page_size() const { return page_size_; }
  const std::string& dir() const { return dir_; }

 private:
  struct RelFile {
    std::string name;
    std::FILE* file = nullptr;
    BlockId num_blocks = 0;
  };

  StorageManager(std::string dir, uint32_t page_size)
      : dir_(std::move(dir)), page_size_(page_size) {}

  Status CheckRel(RelId rel) const;

  std::string dir_;
  uint32_t page_size_;
  std::vector<RelFile> rels_;
  std::unordered_map<std::string, RelId> by_name_;
};

}  // namespace vecdb::pgstub
