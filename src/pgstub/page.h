// PostgreSQL-style slotted page: a fixed-size block holding a header, an
// array of line pointers (ItemIds) growing down from the header, and tuple
// data growing up from the end. PASE's indexes are laid out in these pages,
// which is the source of the paper's RC#2 (page indirection on every tuple
// access) and RC#4 (page-granular space amplification).
#pragma once

#include <cstdint>
#include <cstring>

#include "common/status.h"

namespace vecdb::pgstub {

using BlockId = uint32_t;
/// 1-based slot number within a page, like PostgreSQL's OffsetNumber.
using OffsetNumber = uint16_t;

constexpr BlockId kInvalidBlock = 0xffffffffu;
constexpr OffsetNumber kInvalidOffset = 0;

/// Physical tuple address: (block, slot), PostgreSQL's ItemPointer.
struct TupleId {
  BlockId block = kInvalidBlock;
  OffsetNumber offset = kInvalidOffset;

  bool valid() const {
    return block != kInvalidBlock && offset != kInvalidOffset;
  }
  friend bool operator==(const TupleId& a, const TupleId& b) {
    return a.block == b.block && a.offset == b.offset;
  }
};

/// Line pointer: byte offset and length of one item in the page.
struct ItemId {
  uint16_t off = 0;
  uint16_t len = 0;
};

/// Non-owning view over one page-sized buffer with slotted-page accessors.
///
/// Layout mirrors PostgreSQL: [PageHeader][ItemId array ->][free][<- items]
/// [special space]. The "special" region at the page end carries
/// index-specific metadata (e.g. PASE HNSW page chaining).
class PageView {
 public:
  struct Header {
    uint16_t lower;    // end of the ItemId array
    uint16_t upper;    // start of item data
    uint16_t special;  // start of the special space
    uint16_t item_count;
  };

  /// Wraps an existing buffer of `page_size` bytes (no initialization).
  PageView(char* buf, uint32_t page_size) : buf_(buf), page_size_(page_size) {}

  /// Formats the buffer as an empty page with `special_size` reserved bytes.
  void Init(uint16_t special_size);

  /// Adds an item; returns its 1-based offset number, or kInvalidOffset if
  /// the page lacks space.
  OffsetNumber AddItem(const void* data, uint16_t len);

  /// Pointer to item `slot` (1-based); nullptr if out of range or dead.
  char* GetItem(OffsetNumber slot) const;

  /// Line-pointer lookup that reads ONLY the slot's ItemId, never the page
  /// header. For snapshot-bounded readers racing a concurrent appender:
  /// AddItem mutates the header (lower/upper/item_count) for every insert,
  /// but the ItemId entry and tuple bytes of an already-published slot are
  /// immutable, so a reader that learned `slot` exists from a published
  /// snapshot (with the publish/observe pair providing the happens-before
  /// edge) can read them race-free. The caller is responsible for `slot`
  /// being in range; nullptr only for a dead (len == 0) item.
  char* ItemAtUnchecked(OffsetNumber slot) const {
    const ItemId& iid = item_ids()[slot - 1];
    return iid.len == 0 ? nullptr : buf_ + iid.off;
  }

  /// Length of item `slot`; 0 if invalid.
  uint16_t GetItemLength(OffsetNumber slot) const;

  /// Number of line pointers on the page.
  uint16_t ItemCount() const { return header()->item_count; }

  /// Bytes available for one more item (including its line pointer).
  uint32_t FreeSpace() const;

  /// Pointer to the index-specific special space.
  char* Special() const { return buf_ + header()->special; }
  uint16_t SpecialSize() const {
    return static_cast<uint16_t>(page_size_ - header()->special);
  }

  /// Validates header invariants; Corruption status on violation.
  Status Check() const;

  char* raw() const { return buf_; }
  uint32_t page_size() const { return page_size_; }

 private:
  Header* header() const { return reinterpret_cast<Header*>(buf_); }
  ItemId* item_ids() const {
    return reinterpret_cast<ItemId*>(buf_ + sizeof(Header));
  }

  char* buf_;
  uint32_t page_size_;
};

}  // namespace vecdb::pgstub
