// Virtual filesystem seam for the pgstub substrate. Every durable byte the
// engine writes — relation pages, the WAL, the catalog, the relation
// manifest — flows through a Vfs, so a test can interpose a fault-injecting
// implementation and simulate a crash at any byte offset of the write
// stream. PostgreSQL has the same seam (fd.c/smgr) for much the same
// reason: recovery code that cannot be made to run under faults is dead
// code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace vecdb::pgstub {

/// One open file. Positioned reads/writes (pread/pwrite style) so callers
/// carry their own offsets; implementations may buffer until Sync().
///
/// Handles are not thread-safe; each subsystem serializes access to its own
/// files (WalManager via its mutex, StorageManager via the buffer manager).
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Reads up to `len` bytes at `offset`. Returns the count actually read
  /// (short only at end of file; 0 = EOF).
  virtual Result<size_t> ReadAt(uint64_t offset, void* buf, size_t len) = 0;

  /// Writes exactly `len` bytes at `offset` (extending the file if needed).
  virtual Status WriteAt(uint64_t offset, const void* buf, size_t len) = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() = 0;

  /// Forces buffered writes to the OS (fflush; no fsync in this
  /// reproduction — the container has no power-failure model).
  virtual Status Sync() = 0;

  /// Truncates (or extends with zeros) to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;
};

/// Filesystem operations. `Default()` returns the process-wide stdio
/// implementation; tests hand a FaultInjectionVfs to the database instead.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` read-write. With `create`, an absent file is created
  /// empty; without, absence is NotFound. Never truncates existing data.
  virtual Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                                bool create) = 0;

  virtual Result<bool> Exists(const std::string& path) = 0;
  virtual Status Remove(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). The
  /// durability protocols (manifest, catalog, WAL rotation) all hinge on
  /// this being all-or-nothing.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Creates a directory; succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// The process-wide stdio-backed instance.
  static Vfs* Default();
};

/// Fault-injecting wrapper: counts every byte written through it, across
/// all files in call order, and simulates a crash once the armed budget is
/// exhausted. The write that crosses the budget is applied only up to the
/// budget (a torn write); every later mutation — writes, renames, removes,
/// truncates, creates — fails with IOError("injected crash"). Reads keep
/// working so a harness can inspect state, but the intended protocol is to
/// discard the crashed instance and re-open the directory with a clean
/// Vfs, exactly as a restarted process would.
///
/// Thread-safe: the byte ledger is a single mutex-guarded stream, which is
/// what makes "crash at byte offset N" well-defined even under concurrent
/// writers.
class FaultInjectionVfs final : public Vfs {
 public:
  /// Wraps `base` (not owned; must outlive this).
  explicit FaultInjectionVfs(Vfs* base) : base_(base) {}

  /// Arms the crash `budget` bytes of writes from now; also clears a prior
  /// crashed state and restarts the ledger.
  void ArmAfterBytes(uint64_t budget) VECDB_EXCLUDES(mu_);

  /// Disarms (unlimited budget) without clearing the ledger.
  void Disarm() VECDB_EXCLUDES(mu_);

  bool crashed() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return crashed_;
  }

  /// Total bytes accepted since the last ArmAfterBytes().
  uint64_t bytes_written() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return written_;
  }

  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        bool create) override;
  Result<bool> Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;

 private:
  friend class FaultInjectionFile;

  /// Charges `want` bytes against the budget. Returns how many of them may
  /// be written (less than `want` exactly once: the torn write at the
  /// crash point), or IOError once crashed.
  Result<size_t> Charge(size_t want) VECDB_EXCLUDES(mu_);

  /// Fails with IOError after the crash point; metadata operations are
  /// atomic, so before it they pass through unchanged at zero cost.
  Status CheckAlive() const VECDB_EXCLUDES(mu_);

  Vfs* base_;
  mutable Mutex mu_;
  uint64_t budget_ VECDB_GUARDED_BY(mu_) = UINT64_MAX;
  uint64_t written_ VECDB_GUARDED_BY(mu_) = 0;
  bool crashed_ VECDB_GUARDED_BY(mu_) = false;
};

}  // namespace vecdb::pgstub
