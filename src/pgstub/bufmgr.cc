#include "pgstub/bufmgr.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace vecdb::pgstub {

BufferManager::BufferManager(StorageManager* smgr, size_t pool_pages)
    : smgr_(smgr),
      num_frames_(pool_pages),
      frames_(pool_pages),
      pool_(pool_pages * smgr->page_size()) {
  table_.reserve(pool_pages * 2);
}

Result<int32_t> BufferManager::AllocFrame() {
  // Clock sweep: each frame gets `usage` extra chances, so a full victim
  // search can need (max usage + 1) rotations. Fail only once an entire
  // rotation encounters nothing but pinned frames.
  const size_t n = frames_.size();
  size_t pinned_streak = 0;
  for (size_t step = 0; step < 8 * n; ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t frame_idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (!f.valid) return static_cast<int32_t>(frame_idx);
    if (f.pin_count > 0) {
      if (++pinned_streak >= n) break;
      continue;
    }
    pinned_streak = 0;
    if (f.usage > 0) {
      --f.usage;
      continue;
    }
    // Victim: write back if dirty, drop the mapping. WAL-before-data:
    // the page's full-page image (logged at Unpin) must be durable before
    // the page itself overwrites its on-disk predecessor.
    if (f.dirty) {
      if (wal_ != nullptr) VECDB_RETURN_NOT_OK(wal_->Flush());
      VECDB_RETURN_NOT_OK(smgr_->WriteBlock(
          f.rel, f.block, pool_.data() + frame_idx * smgr_->page_size()));
      f.dirty = false;
    }
    table_.erase(TagKey(f.rel, f.block));
    f.valid = false;
    ++stats_.evictions;
    obs::MetricsRegistry::Global().Add(obs::Counter::kBufmgrEviction);
    return static_cast<int32_t>(frame_idx);
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

Result<BufferHandle> BufferManager::Pin(RelId rel, BlockId block) {
  MutexLock guard(mu_);
  ++stats_.pins;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.Add(obs::Counter::kBufmgrPin);
  auto it = table_.find(TagKey(rel, block));
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    if (f.usage < 5) ++f.usage;
    ++stats_.hits;
    metrics.Add(obs::Counter::kBufmgrHit);
    return BufferHandle{it->second,
                        pool_.data() + static_cast<size_t>(it->second) *
                                           smgr_->page_size()};
  }
  ++stats_.misses;
  metrics.Add(obs::Counter::kBufmgrMiss);
  VECDB_ASSIGN_OR_RETURN(int32_t frame, AllocFrame());
  char* data = pool_.data() + static_cast<size_t>(frame) * smgr_->page_size();
  VECDB_RETURN_NOT_OK(smgr_->ReadBlock(rel, block, data));
  Frame& f = frames_[frame];
  f.rel = rel;
  f.block = block;
  f.pin_count = 1;
  f.usage = 1;
  f.dirty = false;
  f.valid = true;
  table_[TagKey(rel, block)] = frame;
  return BufferHandle{frame, data};
}

Result<std::pair<BlockId, BufferHandle>> BufferManager::NewPage(RelId rel) {
  MutexLock guard(mu_);
  VECDB_ASSIGN_OR_RETURN(BlockId block, smgr_->ExtendRelation(rel));
  VECDB_ASSIGN_OR_RETURN(int32_t frame, AllocFrame());
  char* data = pool_.data() + static_cast<size_t>(frame) * smgr_->page_size();
  std::memset(data, 0, smgr_->page_size());
  Frame& f = frames_[frame];
  f.rel = rel;
  f.block = block;
  f.pin_count = 1;
  f.usage = 1;
  f.dirty = true;
  f.valid = true;
  table_[TagKey(rel, block)] = frame;
  ++stats_.pins;
  obs::MetricsRegistry::Global().Add(obs::Counter::kBufmgrPin);
  return std::make_pair(block, BufferHandle{frame, data});
}

void BufferManager::Unpin(const BufferHandle& handle, bool dirty) {
  if (!handle.valid()) return;
  MutexLock guard(mu_);
  Frame& f = frames_[handle.frame];
  // An unpin without a matching pin is a caller bug that would let the
  // frame be evicted while a stale handle still points at it.
  VECDB_DCHECK_GT(f.pin_count, 0) << "Unpin of frame " << handle.frame
                                  << " that is not pinned";
  if (f.pin_count > 0) --f.pin_count;
  if (dirty) {
    f.dirty = true;
    if (wal_ != nullptr) {
      auto logged = wal_->LogFullPage(
          f.rel, f.block,
          pool_.data() + static_cast<size_t>(handle.frame) *
                             smgr_->page_size(),
          smgr_->page_size());
      if (!logged.ok() && wal_error_.ok()) wal_error_ = logged.status();
    }
  }
}

void BufferManager::CheckInvariants() const {
  MutexLock guard(mu_);
  size_t valid_frames = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (!f.valid) {
      VECDB_CHECK_EQ(f.pin_count, 0) << "invalid frame " << i << " is pinned";
      continue;
    }
    ++valid_frames;
    VECDB_CHECK_GE(f.pin_count, 0) << "frame " << i << " pin count underflow";
    VECDB_CHECK_LE(static_cast<int>(f.usage), 5)
        << "frame " << i << " usage above clock-sweep cap";
    auto it = table_.find(TagKey(f.rel, f.block));
    VECDB_CHECK(it != table_.end())
        << "valid frame " << i << " missing from tag table";
    VECDB_CHECK_EQ(it->second, static_cast<int32_t>(i))
        << "tag table maps (" << f.rel << "," << f.block
        << ") to a different frame";
  }
  // Every mapping must point back at a valid frame with the same tag, so
  // the table size equals the valid-frame count exactly.
  VECDB_CHECK_EQ(table_.size(), valid_frames)
      << "tag table and frame validity disagree";
}

Status BufferManager::FlushAll() {
  MutexLock guard(mu_);
  // Page contents are only stable while a frame is unpinned (pin holders
  // mutate bytes outside the lock), so flushing a pinned-dirty frame
  // would write a torn image — and a checkpoint right after would rotate
  // away the WAL record that could repair it. Refuse up front; the caller
  // retries once the pin drains.
  for (const Frame& f : frames_) {
    if (f.valid && f.dirty && f.pin_count > 0) {
      return Status::InvalidArgument(
          "dirty page pinned during flush: rel " + std::to_string(f.rel) +
          " block " + std::to_string(f.block));
    }
  }
  // WAL-before-data, wholesale: every dirty page about to be written has a
  // full-page image in the log (from its dirty Unpin); force those out
  // before any page write can clobber its on-disk predecessor.
  if (wal_ != nullptr) VECDB_RETURN_NOT_OK(wal_->Flush());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.valid && f.dirty) {
      VECDB_RETURN_NOT_OK(smgr_->WriteBlock(
          f.rel, f.block, pool_.data() + i * smgr_->page_size()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferManager::InvalidateRelation(RelId rel) {
  MutexLock guard(mu_);
  for (auto& f : frames_) {
    if (f.valid && f.rel == rel && f.pin_count > 0) {
      return Status::InvalidArgument("relation has pinned pages");
    }
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.valid && f.rel == rel) {
      table_.erase(TagKey(f.rel, f.block));
      f.valid = false;
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace vecdb::pgstub
