// Epoch-based reclamation for snapshot-visible structures (RCU-style, the
// mechanism behind PostgreSQL's "old snapshots keep dead tuples alive").
// Readers pin the current epoch for the duration of a lock-free scan;
// writers publish a replacement object, Retire() the old one, and the
// manager defers the deleter until no reader still holds an epoch from
// before the retirement. This is what lets a SELECT walk a table snapshot
// without a table lock while concurrent INSERT/DELETE statements publish
// new snapshots underneath it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace vecdb::pgstub {

/// Mutex-based epoch manager. Enter/Exit bracket a reader's critical
/// region; Retire hands over a deleter tagged with the current epoch and
/// advances it, so the deleter runs only once every reader that could have
/// observed the retired object has exited.
///
/// Memory-ordering contract for publish/retire (the SQL layer's snapshot
/// protocol): the writer must release-store the replacement pointer BEFORE
/// calling Retire(); a reader must Enter() BEFORE acquire-loading the
/// pointer. Enter and Retire serialize on the manager's mutex, so a reader
/// entering after a retirement is guaranteed to load the replacement, and
/// a reader that loaded the retired object is pinned at an epoch <= the
/// retirement tag, which blocks reclamation until it exits.
class EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Runs every still-pending deleter; no readers may be active.
  ~EpochManager() { ReclaimAll(); }

  /// Pins the current epoch for a reader; returns it (pass to Exit).
  uint64_t Enter() VECDB_EXCLUDES(mu_);

  /// Unpins a reader's epoch (the value Enter returned).
  void Exit(uint64_t epoch) VECDB_EXCLUDES(mu_);

  /// Registers `reclaim` to run once no reader holds an epoch <= the
  /// current one, then advances the epoch. Does not reclaim eagerly; call
  /// ReclaimReady() (writers do, after publishing) to drain.
  void Retire(std::function<void()> reclaim) VECDB_EXCLUDES(mu_);

  /// Runs every deleter whose retirement epoch precedes all pinned
  /// readers (all of them when no reader is active). Deleters run outside
  /// the manager's mutex. Returns how many ran.
  size_t ReclaimReady() VECDB_EXCLUDES(mu_);

  /// Runs every pending deleter unconditionally. Only safe when no reader
  /// can still dereference a retired object (teardown, or a context that
  /// excludes all readers, like an exclusive catalog lock).
  size_t ReclaimAll() VECDB_EXCLUDES(mu_);

  uint64_t current_epoch() const VECDB_EXCLUDES(mu_);
  size_t active_readers() const VECDB_EXCLUDES(mu_);
  size_t retired_pending() const VECDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  uint64_t epoch_ VECDB_GUARDED_BY(mu_) = 1;
  /// epoch -> number of readers pinned at it (ordered: begin() is the
  /// oldest pinned epoch, the reclamation horizon).
  std::map<uint64_t, uint32_t> pinned_ VECDB_GUARDED_BY(mu_);
  /// (retirement epoch, deleter), in retirement order.
  std::vector<std::pair<uint64_t, std::function<void()>>> retired_
      VECDB_GUARDED_BY(mu_);
};

/// RAII reader pin over an EpochManager.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager)
      : manager_(manager), epoch_(manager->Enter()) {}
  ~EpochGuard() { manager_->Exit(epoch_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  uint64_t epoch() const { return epoch_; }

 private:
  EpochManager* manager_;
  uint64_t epoch_;
};

}  // namespace vecdb::pgstub
