// Heap table storing (row id, float[]) tuples in slotted pages via the
// buffer manager — the PASE/PostgreSQL way of storing a vector column.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "pgstub/bufmgr.h"

namespace vecdb::pgstub {

/// On-page tuple header; `dim` floats follow immediately.
struct HeapTupleHeader {
  int64_t row_id;
  uint32_t dim;
};

/// Append-only table of fixed-dimension vector rows.
class HeapTable {
 public:
  /// Creates a new relation named `name` for dim-dimensional rows.
  static Result<HeapTable> Create(BufferManager* bufmgr, StorageManager* smgr,
                                  const std::string& name, uint32_t dim);

  /// Inserts a row; returns its physical TupleId.
  Result<TupleId> Insert(int64_t row_id, const float* vec);

  /// Reads the row at `tid` through the buffer manager into `row_id`/`vec`
  /// (vec must hold dim() floats). This is the paper's "Tuple Access" path.
  Status Read(TupleId tid, int64_t* row_id, float* vec) const;

  /// Sequential scan invoking `fn(tid, row_id, vec)` for every tuple;
  /// stops early if `fn` returns false.
  Status SeqScan(
      const std::function<bool(TupleId, int64_t, const float*)>& fn) const;

  /// Aborts if stored tuples disagree with the table metadata: a tuple
  /// whose dim differs from dim(), or a page population that does not sum
  /// to num_rows(). Test/debug hook.
  void CheckInvariants() const;

  uint32_t dim() const { return dim_; }
  RelId rel() const { return rel_; }
  size_t num_rows() const { return num_rows_; }
  uint32_t tuple_size() const {
    return static_cast<uint32_t>(sizeof(HeapTupleHeader)) +
           dim_ * static_cast<uint32_t>(sizeof(float));
  }

 private:
  HeapTable(BufferManager* bufmgr, StorageManager* smgr, RelId rel,
            uint32_t dim)
      : bufmgr_(bufmgr), smgr_(smgr), rel_(rel), dim_(dim) {}

  BufferManager* bufmgr_;
  StorageManager* smgr_;
  RelId rel_;
  uint32_t dim_;
  BlockId last_block_ = kInvalidBlock;
  size_t num_rows_ = 0;
};

}  // namespace vecdb::pgstub
