// Heap table storing (row id, float[], int64 attrs[]) tuples in slotted
// pages via the buffer manager — the PASE/PostgreSQL way of storing a
// vector column alongside scalar attribute columns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "pgstub/bufmgr.h"

namespace vecdb::pgstub {

/// On-page tuple header; `dim` floats follow immediately, then `num_attrs`
/// int64 attribute values at the next 8-byte-aligned offset.
struct HeapTupleHeader {
  int64_t row_id;
  uint32_t dim;
  uint32_t num_attrs;
};

/// Append-only table of fixed-dimension vector rows with optional scalar
/// attribute columns.
class HeapTable {
 public:
  /// Creates a new relation named `name` for dim-dimensional rows carrying
  /// `num_attrs` int64 attributes each.
  static Result<HeapTable> Create(BufferManager* bufmgr, StorageManager* smgr,
                                  const std::string& name, uint32_t dim,
                                  uint32_t num_attrs = 0);

  /// Re-attaches to an existing relation after a restart: rediscovers the
  /// tail block and row count by scanning the recovered pages. The caller
  /// supplies the schema (dim, num_attrs) from the durable catalog; stored
  /// tuples that disagree with it surface as Corruption via Read.
  static Result<HeapTable> Attach(BufferManager* bufmgr, StorageManager* smgr,
                                  const std::string& name, uint32_t dim,
                                  uint32_t num_attrs = 0);

  /// Inserts a row; returns its physical TupleId. `attrs` must point at
  /// num_attrs() values (may be null when num_attrs() == 0).
  Result<TupleId> Insert(int64_t row_id, const float* vec,
                         const int64_t* attrs = nullptr);

  /// Reads the row at `tid` through the buffer manager into `row_id`/`vec`/
  /// `attrs` (vec must hold dim() floats, attrs num_attrs() values; either
  /// may be null). This is the paper's "Tuple Access" path.
  Status Read(TupleId tid, int64_t* row_id, float* vec,
              int64_t* attrs = nullptr) const;

  /// Sequential scan invoking `fn(tid, row_id, vec)` for every tuple;
  /// stops early if `fn` returns false.
  Status SeqScan(
      const std::function<bool(TupleId, int64_t, const float*)>& fn) const;

  /// Sequential scan that also exposes the attribute columns:
  /// `fn(tid, row_id, vec, attrs)`; `attrs` points at num_attrs() values
  /// inside the pinned page (valid only for the duration of the call).
  Status SeqScanFull(const std::function<bool(TupleId, int64_t, const float*,
                                              const int64_t*)>& fn) const;

  /// Snapshot-bounded sequential scan over exactly the first `limit_rows`
  /// rows in insertion order, safe to run WITHOUT any table lock while a
  /// concurrent (serialized) writer appends rows past the bound.
  ///
  /// Safe-by-construction: tuples are fixed-size, so pages fill densely in
  /// order and row r lives at block r / rows_per_page(), slot
  /// r % rows_per_page() + 1 — no storage-manager block count (the smgr is
  /// not thread-safe) and no mutable page-header field is consulted, and
  /// no mutable HeapTable member (num_rows_, last_block_) is read. The
  /// caller must obtain `limit_rows` from a published snapshot whose
  /// publication happens-after the rows' page writes (the SQL layer's
  /// TableSnapshot release/acquire pair); given that edge, every byte this
  /// scan reads is immutable.
  Status ScanPrefixFull(
      uint64_t limit_rows,
      const std::function<bool(TupleId, int64_t, const float*,
                               const int64_t*)>& fn) const;

  /// Rows a fully packed page holds: mirrors PageView::AddItem's layout
  /// arithmetic (MAXALIGNed item starts growing down, line pointers
  /// growing up) for this table's fixed tuple_size(). Constant per table.
  uint32_t rows_per_page() const;

  /// Aborts if stored tuples disagree with the table metadata: a tuple
  /// whose dim differs from dim(), or a page population that does not sum
  /// to num_rows(). Test/debug hook.
  void CheckInvariants() const;

  uint32_t dim() const { return dim_; }
  uint32_t num_attrs() const { return num_attrs_; }
  RelId rel() const { return rel_; }
  size_t num_rows() const { return num_rows_; }
  /// Offset of the attribute array inside a tuple: the floats rounded up
  /// to 8-byte alignment (item starts are MAXALIGNed, so the attrs stay
  /// aligned for direct int64 access).
  uint32_t attr_offset() const {
    return (static_cast<uint32_t>(sizeof(HeapTupleHeader)) +
            dim_ * static_cast<uint32_t>(sizeof(float)) + 7u) &
           ~7u;
  }
  uint32_t tuple_size() const {
    return attr_offset() + num_attrs_ * static_cast<uint32_t>(sizeof(int64_t));
  }

 private:
  HeapTable(BufferManager* bufmgr, StorageManager* smgr, RelId rel,
            uint32_t dim, uint32_t num_attrs)
      : bufmgr_(bufmgr),
        smgr_(smgr),
        rel_(rel),
        dim_(dim),
        num_attrs_(num_attrs) {}

  BufferManager* bufmgr_;
  StorageManager* smgr_;
  RelId rel_;
  uint32_t dim_;
  uint32_t num_attrs_;
  BlockId last_block_ = kInvalidBlock;
  size_t num_rows_ = 0;
};

}  // namespace vecdb::pgstub
