// PostgreSQL-style index access method interface (IndexAmRoutine analog,
// paper §II-E): a new index type plugs into the executor by implementing
// build / insert / beginscan / gettuple / endscan. The SQL planner drives
// PASE indexes exclusively through this interface.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/index.h"
#include "pgstub/heap_table.h"

namespace vecdb::pgstub {

/// Scan-time options handed to ambeginscan (PASE encodes these in the query
/// operator's option string). When `filter.selection` is set the scan runs
/// the filtered-search path; the selection vector is indexed by index
/// position (heap insertion order), matching AmBuild's scan order.
struct AmScanOptions {
  size_t k = 100;
  uint32_t nprobe = 20;
  uint32_t efs = 200;
  FilterRequest filter;
  /// Observability handle forwarded into the engine's SearchParams; a
  /// session's scans carry its per-session QueryContext here so metrics
  /// can be attributed to a caller-chosen registry.
  QueryContext ctx;
};

/// An open ordered index scan; amgettuple yields one result at a time.
class IndexScanCursor {
 public:
  virtual ~IndexScanCursor() = default;

  /// Fetches the next (distance-ordered) match. Returns false at the end.
  virtual Result<bool> AmGetTuple(Neighbor* out) = 0;
};

/// The access-method routine table, as a virtual interface.
class IndexAccessMethod {
 public:
  virtual ~IndexAccessMethod() = default;

  /// ambuild: bulk-builds the index over every row of `table`.
  virtual Status AmBuild(const HeapTable& table) = 0;

  /// aminsert: adds one new row to the index.
  virtual Status AmInsert(const float* vec, int64_t row_id) = 0;

  /// amdelete: removes (tombstones) a row from the index.
  virtual Status AmDelete(int64_t row_id) = 0;

  /// ambeginscan: opens an ordered scan for `query`.
  virtual Result<std::unique_ptr<IndexScanCursor>> AmBeginScan(
      const float* query, const AmScanOptions& options) const = 0;
};

/// Adapter exposing any VectorIndex as an access method: the scan
/// materializes the top-k result at beginscan and dribbles tuples out,
/// which is how PASE services ORDER BY ... LIMIT k plans. Rows may carry
/// arbitrary user ids; the adapter maintains the position -> row-id map.
class VectorIndexAm final : public IndexAccessMethod {
 public:
  /// Wraps `index` (not owned; must outlive the adapter).
  explicit VectorIndexAm(VectorIndex* index) : index_(index) {}

  Status AmBuild(const HeapTable& table) override;

  /// Re-adopts an index whose vectors were loaded from a snapshot instead
  /// of built: reconstructs the position -> row-id map from the first
  /// `num_rows` heap rows (the rows present when the snapshot was taken;
  /// heap scan order is AmBuild's numbering). Fails with InvalidArgument
  /// if the heap holds fewer rows or the index population disagrees.
  Status AmAttach(const HeapTable& table, size_t num_rows);

  Status AmInsert(const float* vec, int64_t row_id) override;
  Status AmDelete(int64_t row_id) override;
  Result<std::unique_ptr<IndexScanCursor>> AmBeginScan(
      const float* query, const AmScanOptions& options) const override;

 private:
  VectorIndex* index_;
  std::vector<int64_t> row_ids_;  ///< index position -> user row id
};

}  // namespace vecdb::pgstub
