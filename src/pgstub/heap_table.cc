#include "pgstub/heap_table.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace vecdb::pgstub {

Result<HeapTable> HeapTable::Create(BufferManager* bufmgr,
                                    StorageManager* smgr,
                                    const std::string& name, uint32_t dim,
                                    uint32_t num_attrs) {
  if (dim == 0) return Status::InvalidArgument("HeapTable: dim == 0");
  VECDB_ASSIGN_OR_RETURN(RelId rel, smgr->CreateRelation(name));
  HeapTable table(bufmgr, smgr, rel, dim, num_attrs);
  const uint32_t tuple = table.tuple_size();
  // A tuple must fit on one page (no TOAST in this substrate); AddItem
  // MAXALIGNs the item start, so budget up to 7 padding bytes.
  if (((tuple + 7u) & ~7u) + sizeof(PageView::Header) + sizeof(ItemId) >
      smgr->page_size()) {
    return Status::InvalidArgument(
        "HeapTable: tuple of dim " + std::to_string(dim) + " with " +
        std::to_string(num_attrs) + " attrs does not fit in a " +
        std::to_string(smgr->page_size()) + "-byte page");
  }
  return table;
}

Result<HeapTable> HeapTable::Attach(BufferManager* bufmgr,
                                    StorageManager* smgr,
                                    const std::string& name, uint32_t dim,
                                    uint32_t num_attrs) {
  if (dim == 0) return Status::InvalidArgument("HeapTable: dim == 0");
  VECDB_ASSIGN_OR_RETURN(RelId rel, smgr->FindRelation(name));
  HeapTable table(bufmgr, smgr, rel, dim, num_attrs);
  VECDB_ASSIGN_OR_RETURN(BlockId num_blocks, smgr->NumBlocks(rel));
  if (num_blocks > 0) table.last_block_ = num_blocks - 1;
  // Crash repair: a kill during file extension can leave a zeroed (never
  // initialized) tail page. Left alone it would make Insert skip to a
  // fresh block, breaking the dense row layout that snapshot-bounded
  // prefix scans rely on (row r at block r / rows_per_page()). Such a
  // page holds no acknowledged data — acked pages are covered by replayed
  // WAL images — so re-initialize it in place.
  for (BlockId block = 0; block < num_blocks; ++block) {
    VECDB_ASSIGN_OR_RETURN(BufferHandle handle, bufmgr->Pin(rel, block));
    PageView page(handle.data, bufmgr->page_size());
    const bool torn = !page.Check().ok();
    if (torn) page.Init(/*special_size=*/0);
    bufmgr->Unpin(handle, /*dirty=*/torn);
  }
  size_t rows = 0;
  VECDB_RETURN_NOT_OK(table.SeqScan([&rows](TupleId, int64_t, const float*) {
    ++rows;
    return true;
  }));
  table.num_rows_ = rows;
  return table;
}

Result<TupleId> HeapTable::Insert(int64_t row_id, const float* vec,
                                  const int64_t* attrs) {
  if (vec == nullptr) return Status::InvalidArgument("HeapTable: null vec");
  if (num_attrs_ > 0 && attrs == nullptr) {
    return Status::InvalidArgument("HeapTable: missing attribute values");
  }
  std::vector<char> tuple(tuple_size(), 0);
  auto* header = reinterpret_cast<HeapTupleHeader*>(tuple.data());
  header->row_id = row_id;
  header->dim = dim_;
  header->num_attrs = num_attrs_;
  std::memcpy(tuple.data() + sizeof(HeapTupleHeader), vec,
              dim_ * sizeof(float));
  if (num_attrs_ > 0) {
    std::memcpy(tuple.data() + attr_offset(), attrs,
                num_attrs_ * sizeof(int64_t));
  }

  // Try the current tail page first; extend on overflow.
  if (last_block_ != kInvalidBlock) {
    VECDB_ASSIGN_OR_RETURN(BufferHandle handle,
                           bufmgr_->Pin(rel_, last_block_));
    PageView page(handle.data, bufmgr_->page_size());
    const OffsetNumber slot =
        page.AddItem(tuple.data(), static_cast<uint16_t>(tuple.size()));
    if (slot != kInvalidOffset) {
      bufmgr_->Unpin(handle, /*dirty=*/true);
      ++num_rows_;
      return TupleId{last_block_, slot};
    }
    bufmgr_->Unpin(handle, /*dirty=*/false);
  }

  VECDB_ASSIGN_OR_RETURN(auto fresh, bufmgr_->NewPage(rel_));
  PageView page(fresh.second.data, bufmgr_->page_size());
  page.Init(/*special_size=*/0);
  const OffsetNumber slot =
      page.AddItem(tuple.data(), static_cast<uint16_t>(tuple.size()));
  bufmgr_->Unpin(fresh.second, /*dirty=*/true);
  if (slot == kInvalidOffset) {
    return Status::Internal("HeapTable: tuple does not fit on a fresh page");
  }
  last_block_ = fresh.first;
  ++num_rows_;
  return TupleId{fresh.first, slot};
}

Status HeapTable::Read(TupleId tid, int64_t* row_id, float* vec,
                       int64_t* attrs) const {
  if (!tid.valid()) return Status::InvalidArgument("HeapTable: invalid tid");
  VECDB_ASSIGN_OR_RETURN(BufferHandle handle, bufmgr_->Pin(rel_, tid.block));
  PageView page(handle.data, bufmgr_->page_size());
  const char* item = page.GetItem(tid.offset);
  if (item == nullptr) {
    bufmgr_->Unpin(handle, false);
    return Status::NotFound("HeapTable: no tuple at slot " +
                            std::to_string(tid.offset));
  }
  const auto* header = reinterpret_cast<const HeapTupleHeader*>(item);
  if (header->dim != dim_ || header->num_attrs != num_attrs_) {
    bufmgr_->Unpin(handle, false);
    return Status::Corruption("HeapTable: tuple shape mismatch");
  }
  if (row_id != nullptr) *row_id = header->row_id;
  if (vec != nullptr) {
    std::memcpy(vec, item + sizeof(HeapTupleHeader), dim_ * sizeof(float));
  }
  if (attrs != nullptr && num_attrs_ > 0) {
    std::memcpy(attrs, item + attr_offset(), num_attrs_ * sizeof(int64_t));
  }
  bufmgr_->Unpin(handle, false);
  return Status::OK();
}

Status HeapTable::SeqScan(
    const std::function<bool(TupleId, int64_t, const float*)>& fn) const {
  return SeqScanFull(
      [&](TupleId tid, int64_t row_id, const float* vec, const int64_t*) {
        return fn(tid, row_id, vec);
      });
}

Status HeapTable::SeqScanFull(
    const std::function<bool(TupleId, int64_t, const float*, const int64_t*)>&
        fn) const {
  VECDB_ASSIGN_OR_RETURN(BlockId num_blocks, smgr_->NumBlocks(rel_));
  for (BlockId block = 0; block < num_blocks; ++block) {
    VECDB_ASSIGN_OR_RETURN(BufferHandle handle, bufmgr_->Pin(rel_, block));
    PageView page(handle.data, bufmgr_->page_size());
    const uint16_t count = page.ItemCount();
    for (OffsetNumber slot = 1; slot <= count; ++slot) {
      const char* item = page.GetItem(slot);
      if (item == nullptr) continue;
      const auto* header = reinterpret_cast<const HeapTupleHeader*>(item);
      const float* vec =
          reinterpret_cast<const float*>(item + sizeof(HeapTupleHeader));
      const int64_t* attrs =
          num_attrs_ > 0
              ? reinterpret_cast<const int64_t*>(item + attr_offset())
              : nullptr;
      if (!fn(TupleId{block, slot}, header->row_id, vec, attrs)) {
        bufmgr_->Unpin(handle, false);
        return Status::OK();
      }
    }
    bufmgr_->Unpin(handle, false);
  }
  return Status::OK();
}

uint32_t HeapTable::rows_per_page() const {
  const uint32_t page = bufmgr_->page_size();
  const uint32_t len = tuple_size();
  uint32_t lower = sizeof(PageView::Header);
  uint32_t upper = page;  // heap pages reserve no special space
  uint32_t count = 0;
  // Replay AddItem's acceptance test until a hypothetical insert fails.
  for (;;) {
    if (upper < lower || upper < len) break;
    const uint32_t start = (upper - len) & ~7u;
    if (start < lower + sizeof(ItemId)) break;
    upper = start;
    lower += sizeof(ItemId);
    ++count;
  }
  return count;
}

Status HeapTable::ScanPrefixFull(
    uint64_t limit_rows,
    const std::function<bool(TupleId, int64_t, const float*, const int64_t*)>&
        fn) const {
  const uint32_t per_page = rows_per_page();
  uint64_t row = 0;
  for (BlockId block = 0; row < limit_rows; ++block) {
    const uint64_t in_block =
        std::min<uint64_t>(per_page, limit_rows - row);
    VECDB_ASSIGN_OR_RETURN(BufferHandle handle, bufmgr_->Pin(rel_, block));
    PageView page(handle.data, bufmgr_->page_size());
    for (OffsetNumber slot = 1; slot <= in_block; ++slot, ++row) {
      // ItemAtUnchecked: never touch the page header, which a concurrent
      // appender mutates; the snapshot bound guarantees the slot exists.
      const char* item = page.ItemAtUnchecked(slot);
      if (item == nullptr) continue;
      const auto* header = reinterpret_cast<const HeapTupleHeader*>(item);
      const float* vec =
          reinterpret_cast<const float*>(item + sizeof(HeapTupleHeader));
      const int64_t* attrs =
          num_attrs_ > 0
              ? reinterpret_cast<const int64_t*>(item + attr_offset())
              : nullptr;
      if (!fn(TupleId{block, slot}, header->row_id, vec, attrs)) {
        bufmgr_->Unpin(handle, false);
        return Status::OK();
      }
    }
    bufmgr_->Unpin(handle, false);
  }
  return Status::OK();
}

void HeapTable::CheckInvariants() const {
  size_t seen = 0;
  auto scanned = SeqScan([&](TupleId tid, int64_t, const float*) {
    VECDB_CHECK(tid.valid()) << "SeqScan yielded an invalid tid";
    ++seen;
    return true;
  });
  VECDB_CHECK(scanned.ok()) << "SeqScan failed: " << scanned.ToString();
  VECDB_CHECK_EQ(seen, num_rows_) << "page population vs num_rows()";
  // Re-read every tuple through the Read path, which verifies the stored
  // per-tuple shape against the table metadata (Corruption on mismatch).
  std::vector<float> vec(dim_);
  std::vector<int64_t> attrs(num_attrs_);
  scanned = SeqScan([&](TupleId tid, int64_t, const float*) {
    int64_t row_id = 0;
    Status read = Read(tid, &row_id, vec.data(),
                       num_attrs_ > 0 ? attrs.data() : nullptr);
    VECDB_CHECK(read.ok()) << "tuple re-read failed: " << read.ToString();
    return true;
  });
  VECDB_CHECK(scanned.ok()) << "SeqScan failed: " << scanned.ToString();
}

}  // namespace vecdb::pgstub
