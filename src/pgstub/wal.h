// Write-ahead log for the pgstub substrate: full-page-image records with
// CRC-checked framing, checkpoints, and replay-based recovery. PostgreSQL
// durability in miniature — and one more cost a generalized vector
// database pays on writes that a specialized in-memory system does not.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "pgstub/page.h"
#include "pgstub/smgr.h"

namespace vecdb::pgstub {

/// Monotonically increasing log sequence number (1-based; 0 = invalid).
using Lsn = uint64_t;

/// Record kinds. Full-page images make replay idempotent and simple
/// (PostgreSQL's full_page_writes, without the page-delta optimization).
enum class WalRecordType : uint8_t {
  kFullPage = 1,   ///< payload: page image for (rel, block)
  kCheckpoint = 2, ///< everything before this LSN is on disk
};

/// One decoded WAL record.
struct WalRecord {
  Lsn lsn = 0;
  WalRecordType type = WalRecordType::kFullPage;
  RelId rel = kInvalidRel;
  BlockId block = kInvalidBlock;
  std::vector<char> payload;
};

/// Appender/replayer over a single log file.
///
/// Thread-safe: an internal mutex serializes appends and flushes, so LSNs
/// stay dense and record frames never interleave even when several
/// components (dirty unpins via the buffer manager, checkpointers, tests)
/// log concurrently. The discipline is statically checked under VECDB_TSA.
/// Records are framed as [lsn, type, rel, block, payload_len, payload,
/// crc32] and a torn tail (from a crash mid-write) is detected and
/// truncated at replay.
class WalManager {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  static Result<WalManager> Open(const std::string& path);

  ~WalManager();
  WalManager(WalManager&&) noexcept;
  WalManager& operator=(WalManager&&) = delete;
  WalManager(const WalManager&) = delete;

  /// Appends a full-page image; returns its LSN.
  Result<Lsn> LogFullPage(RelId rel, BlockId block, const char* page,
                          uint32_t page_size) VECDB_EXCLUDES(mu_);

  /// Appends a checkpoint record and flushes the log.
  Result<Lsn> LogCheckpoint() VECDB_EXCLUDES(mu_);

  /// Forces buffered records to the OS (fflush; no fsync in this
  /// reproduction — the container has no power-failure model).
  Status Flush() VECDB_EXCLUDES(mu_);

  /// Next LSN to be assigned (a snapshot; concurrent appenders advance it).
  Lsn next_lsn() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return next_lsn_;
  }

  /// Reads every intact record of the log at `path` in order, stopping
  /// cleanly at a torn tail. Records before the LAST checkpoint are
  /// skipped (they are guaranteed on disk).
  static Status Replay(const std::string& path,
                       const std::function<Status(const WalRecord&)>& apply);

  /// Replays the log into a storage manager: full-page images are written
  /// back, extending relations as needed. `rel_map` translates logged rel
  /// ids if the relation set changed (identity when null).
  static Status Recover(const std::string& path, StorageManager* smgr);

 private:
  WalManager(std::FILE* file, Lsn next_lsn)
      : file_(file), next_lsn_(next_lsn) {}

  Status AppendRecord(WalRecordType type, RelId rel, BlockId block,
                      const char* payload, uint32_t payload_len)
      VECDB_REQUIRES(mu_);
  Status FlushLocked() VECDB_REQUIRES(mu_);

  /// Fresh per instance: a moved-from WalManager keeps its own (idle)
  /// mutex, and the move constructor locks only the source.
  mutable Mutex mu_;
  std::FILE* file_ VECDB_GUARDED_BY(mu_) = nullptr;
  Lsn next_lsn_ VECDB_GUARDED_BY(mu_) = 1;
};

/// CRC-32 (Castagnoli polynomial, bitwise) over a byte range.
uint32_t Crc32c(const void* data, size_t len);

}  // namespace vecdb::pgstub
