// Write-ahead log for the pgstub substrate: full-page-image records with
// CRC-checked framing, logical tombstones, checkpoints, rotation, and
// replay-based recovery. PostgreSQL durability in miniature — and one more
// cost a generalized vector database pays on writes that a specialized
// in-memory system does not.
//
// File format v2 (see docs/DURABILITY.md):
//   [FileHeader: magic "VWAL", version, start_lsn, crc]
//   [RecordHeader | payload | crc32c(header+payload)] ...
// The per-record CRC is ONE streaming CRC-32C over header and payload; v1
// XORed two independent CRCs, which correlated corruption could cancel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "pgstub/crc32c.h"
#include "pgstub/page.h"
#include "pgstub/smgr.h"
#include "pgstub/vfs.h"

namespace vecdb::pgstub {

/// Monotonically increasing log sequence number (1-based; 0 = invalid).
using Lsn = uint64_t;

/// Record kinds. Full-page images make replay idempotent and simple
/// (PostgreSQL's full_page_writes, without the page-delta optimization);
/// tombstones are the one logical record type, because deletes mutate no
/// heap page in this engine.
enum class WalRecordType : uint8_t {
  kFullPage = 1,   ///< payload: page image for (rel, block)
  kCheckpoint = 2, ///< everything before this LSN is on disk
  kTombstone = 3,  ///< payload: int64 row id deleted from heap relation rel
};

/// One decoded WAL record.
struct WalRecord {
  Lsn lsn = 0;
  WalRecordType type = WalRecordType::kFullPage;
  RelId rel = kInvalidRel;
  BlockId block = kInvalidBlock;
  std::vector<char> payload;
};

/// A deleted row id recovered from the log, keyed by heap relation.
struct WalTombstone {
  RelId rel = kInvalidRel;
  int64_t row_id = 0;
};

/// Appender/replayer over a single log file.
///
/// Thread-safe: an internal mutex serializes appends, flushes, and
/// rotation, so LSNs stay dense and record frames never interleave even
/// when several components (dirty unpins via the buffer manager,
/// checkpointers, tests) log concurrently. The discipline is statically
/// checked under VECDB_TSA. A torn tail (from a crash mid-write) is
/// detected on open and at replay and truncated, never fatal.
class WalManager {
 public:
  /// Opens (creating if absent) the log at `path` for appending. Scans
  /// existing records to derive the next LSN from the max over ALL intact
  /// records and the file header's start_lsn — not just replayed ones, so
  /// a log ending in a checkpoint cannot reset the sequence — and
  /// truncates any torn tail so appends start on a clean frame boundary.
  static Result<WalManager> Open(Vfs* vfs, const std::string& path);
  static Result<WalManager> Open(const std::string& path) {
    return Open(Vfs::Default(), path);
  }

  ~WalManager() = default;
  WalManager(WalManager&&) noexcept;
  WalManager& operator=(WalManager&&) = delete;
  WalManager(const WalManager&) = delete;

  /// Appends a full-page image; returns its LSN.
  Result<Lsn> LogFullPage(RelId rel, BlockId block, const char* page,
                          uint32_t page_size) VECDB_EXCLUDES(mu_);

  /// Appends a logical delete of `row_id` from heap relation `rel`.
  Result<Lsn> LogTombstone(RelId rel, int64_t row_id) VECDB_EXCLUDES(mu_);

  /// Appends a checkpoint record and flushes the log. The CALLER must have
  /// already forced all dirty pages to storage (BufferManager::FlushAll +
  /// StorageManager::SyncAll) — this record is a claim, not an action; see
  /// MiniDatabase::Checkpoint for the enforced ordering.
  Result<Lsn> LogCheckpoint() VECDB_EXCLUDES(mu_);

  /// Starts a fresh log segment: writes `path + ".new"` containing only a
  /// file header carrying the current next LSN, then atomically renames it
  /// over the live log. Called after a checkpoint, this is what bounds WAL
  /// size. Crash-safe at every step: until the rename lands, the old log
  /// (ending in the checkpoint record) remains the live one.
  Status Rotate() VECDB_EXCLUDES(mu_);

  /// Forces buffered records to the OS (fflush; no fsync in this
  /// reproduction — the container has no power-failure model).
  Status Flush() VECDB_EXCLUDES(mu_);

  /// Next LSN to be assigned (a snapshot; concurrent appenders advance it).
  Lsn next_lsn() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return next_lsn_;
  }

  /// Current log size in bytes (snapshot), for checkpoint triggering.
  uint64_t size_bytes() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return size_;
  }

  /// Reads every intact record of the log at `path` in order, stopping
  /// cleanly at a torn tail. Records before the LAST checkpoint are
  /// skipped (they are guaranteed on disk). A missing file or torn/absent
  /// file header is an empty log, not an error.
  static Status Replay(Vfs* vfs, const std::string& path,
                       const std::function<Status(const WalRecord&)>& apply);
  static Status Replay(const std::string& path,
                       const std::function<Status(const WalRecord&)>& apply) {
    return Replay(Vfs::Default(), path, apply);
  }

  /// ARIES-lite REDO: replays the log into a storage manager. Full-page
  /// images are written back, extending relations as needed; records for
  /// relations the smgr no longer knows (dropped after logging) are
  /// skipped. Tombstone records are collected into `tombstones` (may be
  /// null) for the SQL layer to re-apply to its delete sets.
  static Status Recover(Vfs* vfs, const std::string& path,
                        StorageManager* smgr,
                        std::vector<WalTombstone>* tombstones = nullptr);
  static Status Recover(const std::string& path, StorageManager* smgr) {
    return Recover(Vfs::Default(), path, smgr, nullptr);
  }

 private:
  WalManager(Vfs* vfs, std::unique_ptr<VfsFile> file, std::string path,
             uint64_t size, Lsn next_lsn)
      : vfs_(vfs),
        file_(std::move(file)),
        path_(std::move(path)),
        size_(size),
        next_lsn_(next_lsn) {}

  Status AppendRecord(WalRecordType type, RelId rel, BlockId block,
                      const char* payload, uint32_t payload_len)
      VECDB_REQUIRES(mu_);
  Status FlushLocked() VECDB_REQUIRES(mu_);

  Vfs* vfs_;
  /// Fresh per instance: a moved-from WalManager keeps its own (idle)
  /// mutex, and the move constructor locks only the source.
  mutable Mutex mu_;
  std::unique_ptr<VfsFile> file_ VECDB_GUARDED_BY(mu_);
  std::string path_;
  uint64_t size_ VECDB_GUARDED_BY(mu_) = 0;  ///< append offset
  Lsn next_lsn_ VECDB_GUARDED_BY(mu_) = 1;
};

}  // namespace vecdb::pgstub
