// Write-ahead log for the pgstub substrate: full-page-image records with
// CRC-checked framing, checkpoints, and replay-based recovery. PostgreSQL
// durability in miniature — and one more cost a generalized vector
// database pays on writes that a specialized in-memory system does not.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "pgstub/page.h"
#include "pgstub/smgr.h"

namespace vecdb::pgstub {

/// Monotonically increasing log sequence number (1-based; 0 = invalid).
using Lsn = uint64_t;

/// Record kinds. Full-page images make replay idempotent and simple
/// (PostgreSQL's full_page_writes, without the page-delta optimization).
enum class WalRecordType : uint8_t {
  kFullPage = 1,   ///< payload: page image for (rel, block)
  kCheckpoint = 2, ///< everything before this LSN is on disk
};

/// One decoded WAL record.
struct WalRecord {
  Lsn lsn = 0;
  WalRecordType type = WalRecordType::kFullPage;
  RelId rel = kInvalidRel;
  BlockId block = kInvalidBlock;
  std::vector<char> payload;
};

/// Appender/replayer over a single log file.
///
/// Not thread-safe; the buffer manager serializes writers. Records are
/// framed as [lsn, type, rel, block, payload_len, payload, crc32] and a
/// torn tail (from a crash mid-write) is detected and truncated at replay.
class WalManager {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  static Result<WalManager> Open(const std::string& path);

  ~WalManager();
  WalManager(WalManager&&) noexcept;
  WalManager& operator=(WalManager&&) = delete;
  WalManager(const WalManager&) = delete;

  /// Appends a full-page image; returns its LSN.
  Result<Lsn> LogFullPage(RelId rel, BlockId block, const char* page,
                          uint32_t page_size);

  /// Appends a checkpoint record and flushes the log.
  Result<Lsn> LogCheckpoint();

  /// Forces buffered records to the OS (fflush; no fsync in this
  /// reproduction — the container has no power-failure model).
  Status Flush();

  /// Next LSN to be assigned.
  Lsn next_lsn() const { return next_lsn_; }

  /// Reads every intact record of the log at `path` in order, stopping
  /// cleanly at a torn tail. Records before the LAST checkpoint are
  /// skipped (they are guaranteed on disk).
  static Status Replay(const std::string& path,
                       const std::function<Status(const WalRecord&)>& apply);

  /// Replays the log into a storage manager: full-page images are written
  /// back, extending relations as needed. `rel_map` translates logged rel
  /// ids if the relation set changed (identity when null).
  static Status Recover(const std::string& path, StorageManager* smgr);

 private:
  WalManager(std::FILE* file, Lsn next_lsn)
      : file_(file), next_lsn_(next_lsn) {}

  Status AppendRecord(WalRecordType type, RelId rel, BlockId block,
                      const char* payload, uint32_t payload_len);

  std::FILE* file_;
  Lsn next_lsn_;
};

/// CRC-32 (Castagnoli polynomial, bitwise) over a byte range.
uint32_t Crc32c(const void* data, size_t len);

}  // namespace vecdb::pgstub
