#include "pgstub/vfs.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace vecdb::pgstub {

namespace {

/// stdio-backed file. "rb+" keeps existing bytes; Sync maps to fflush,
/// consistent with the repo-wide no-fsync durability model (the fault
/// model is process crash, not power loss).
class StdioFile final : public VfsFile {
 public:
  explicit StdioFile(std::FILE* f) : f_(f) {}
  ~StdioFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }
  StdioFile(const StdioFile&) = delete;
  StdioFile& operator=(const StdioFile&) = delete;

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t len) override {
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("vfs: seek failed");
    }
    size_t got = std::fread(buf, 1, len, f_);
    if (got < len && std::ferror(f_) != 0) {
      std::clearerr(f_);
      return Status::IOError("vfs: read failed");
    }
    return got;
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t len) override {
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("vfs: seek failed");
    }
    if (std::fwrite(buf, 1, len, f_) != len) {
      std::clearerr(f_);
      return Status::IOError("vfs: write failed");
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    // Flush first so buffered appends are visible to fstat.
    if (std::fflush(f_) != 0) return Status::IOError("vfs: flush failed");
    struct stat st;
    if (::fstat(::fileno(f_), &st) != 0) {
      return Status::IOError("vfs: fstat failed");
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Sync() override {
    if (std::fflush(f_) != 0) return Status::IOError("vfs: flush failed");
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (std::fflush(f_) != 0) return Status::IOError("vfs: flush failed");
    if (::ftruncate(::fileno(f_), static_cast<off_t>(size)) != 0) {
      return Status::IOError("vfs: truncate failed");
    }
    return Status::OK();
  }

 private:
  std::FILE* f_;
};

class StdioVfs final : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        bool create) override {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    if (f == nullptr) {
      if (!create) return Status::NotFound("vfs: no such file " + path);
      // "wb+" would truncate a file that appeared between the two opens;
      // with a single-process engine that window is theoretical, but "ab"
      // create-then-reopen is just as cheap and never destroys data.
      f = std::fopen(path.c_str(), "ab");
      if (f != nullptr) {
        std::fclose(f);
        f = std::fopen(path.c_str(), "rb+");
      }
      if (f == nullptr) {
        return Status::IOError("vfs: cannot create " + path + ": " +
                               std::strerror(errno));
      }
    }
    return std::unique_ptr<VfsFile>(new StdioFile(f));
  }

  Result<bool> Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IOError("vfs: cannot remove " + path + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("vfs: cannot rename " + from + " -> " + to +
                             ": " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("vfs: cannot create directory " + path + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static StdioVfs instance;
  return &instance;
}

// ---------------------------------------------------------------------------
// Fault injection

// Not in the anonymous namespace: FaultInjectionVfs befriends this exact
// (vecdb::pgstub) name so Charge/CheckAlive stay private to the pair.
class FaultInjectionFile final : public VfsFile {
 public:
  FaultInjectionFile(FaultInjectionVfs* owner, std::unique_ptr<VfsFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t len) override {
    return base_->ReadAt(offset, buf, len);
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t len) override {
    auto allowed = owner_->Charge(len);
    if (!allowed.ok()) return allowed.status();
    if (*allowed > 0) {
      // The torn prefix still lands: the crash happens *during* the write.
      VECDB_RETURN_NOT_OK(base_->WriteAt(offset, buf, *allowed));
      // Make the torn bytes observable to a post-crash reader immediately
      // (stdio buffering would otherwise hold them until close).
      VECDB_RETURN_NOT_OK(base_->Sync());
    }
    if (*allowed < len) return Status::IOError("injected crash (torn write)");
    return Status::OK();
  }

  Result<uint64_t> Size() override { return base_->Size(); }

  Status Sync() override {
    VECDB_RETURN_NOT_OK(owner_->CheckAlive());
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override {
    VECDB_RETURN_NOT_OK(owner_->CheckAlive());
    return base_->Truncate(size);
  }

 private:
  FaultInjectionVfs* owner_;
  std::unique_ptr<VfsFile> base_;
};

void FaultInjectionVfs::ArmAfterBytes(uint64_t budget) {
  MutexLock lock(mu_);
  budget_ = budget;
  written_ = 0;
  crashed_ = false;
}

void FaultInjectionVfs::Disarm() {
  MutexLock lock(mu_);
  budget_ = UINT64_MAX;
  crashed_ = false;
}

Result<size_t> FaultInjectionVfs::Charge(size_t want) {
  MutexLock lock(mu_);
  if (crashed_) return Status::IOError("injected crash");
  uint64_t room = budget_ - written_;  // budget_ >= written_ invariant
  size_t allowed = want;
  if (static_cast<uint64_t>(want) > room) {
    allowed = static_cast<size_t>(room);
    crashed_ = true;
  }
  written_ += allowed;
  return allowed;
}

Status FaultInjectionVfs::CheckAlive() const {
  MutexLock lock(mu_);
  if (crashed_) return Status::IOError("injected crash");
  return Status::OK();
}

Result<std::unique_ptr<VfsFile>> FaultInjectionVfs::Open(
    const std::string& path, bool create) {
  if (create) VECDB_RETURN_NOT_OK(CheckAlive());
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> base,
                         base_->Open(path, create));
  return std::unique_ptr<VfsFile>(
      new FaultInjectionFile(this, std::move(base)));
}

Result<bool> FaultInjectionVfs::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultInjectionVfs::Remove(const std::string& path) {
  VECDB_RETURN_NOT_OK(CheckAlive());
  return base_->Remove(path);
}

Status FaultInjectionVfs::Rename(const std::string& from,
                                 const std::string& to) {
  VECDB_RETURN_NOT_OK(CheckAlive());
  return base_->Rename(from, to);
}

Status FaultInjectionVfs::CreateDir(const std::string& path) {
  VECDB_RETURN_NOT_OK(CheckAlive());
  return base_->CreateDir(path);
}

}  // namespace vecdb::pgstub
