#include "pgstub/smgr.h"

#include <sstream>
#include <utility>

namespace vecdb::pgstub {

namespace {
constexpr char kManifestName[] = "/RELMAP";
constexpr char kManifestMagic[] = "vecdb-relmap";
constexpr int kManifestVersion = 1;
}  // namespace

Result<StorageManager> StorageManager::Open(Vfs* vfs, const std::string& dir,
                                            uint32_t page_size) {
  if (page_size < 512 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "StorageManager: page_size must be a power of two >= 512");
  }
  VECDB_RETURN_NOT_OK(vfs->CreateDir(dir));
  StorageManager smgr(vfs, dir, page_size);
  VECDB_ASSIGN_OR_RETURN(bool has_manifest,
                         vfs->Exists(dir + kManifestName));
  if (has_manifest) {
    VECDB_RETURN_NOT_OK(smgr.LoadManifest());
  }
  return smgr;
}

Status StorageManager::SaveManifest() const {
  std::ostringstream out;
  out << kManifestMagic << ' ' << kManifestVersion << '\n';
  out << "pagesize " << page_size_ << '\n';
  out << "next " << rels_.size() << '\n';
  for (RelId id = 0; id < rels_.size(); ++id) {
    if (rels_[id].file != nullptr) {
      out << "rel " << id << ' ' << rels_[id].name << '\n';
    }
  }
  const std::string text = out.str();
  const std::string path = dir_ + kManifestName;
  const std::string tmp = path + ".tmp";
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> f,
                         vfs_->Open(tmp, /*create=*/true));
  VECDB_RETURN_NOT_OK(f->Truncate(0));
  VECDB_RETURN_NOT_OK(f->WriteAt(0, text.data(), text.size()));
  VECDB_RETURN_NOT_OK(f->Sync());
  f.reset();
  return vfs_->Rename(tmp, path);
}

Status StorageManager::LoadManifest() {
  const std::string path = dir_ + kManifestName;
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> f,
                         vfs_->Open(path, /*create=*/false));
  VECDB_ASSIGN_OR_RETURN(uint64_t size, f->Size());
  std::string text(size, '\0');
  VECDB_ASSIGN_OR_RETURN(size_t got, f->ReadAt(0, text.data(), text.size()));
  if (got != size) return Status::IOError("smgr: short manifest read");
  f.reset();

  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic ||
      version != kManifestVersion) {
    return Status::Corruption("smgr: bad manifest header in " + path);
  }
  std::string key;
  uint32_t manifest_page_size = 0;
  uint64_t next = 0;
  if (!(in >> key >> manifest_page_size) || key != "pagesize" ||
      !(in >> key >> next) || key != "next") {
    return Status::Corruption("smgr: bad manifest body in " + path);
  }
  if (manifest_page_size != page_size_) {
    return Status::InvalidArgument(
        "smgr: directory was created with page_size " +
        std::to_string(manifest_page_size) + ", opened with " +
        std::to_string(page_size_));
  }
  rels_.clear();
  by_name_.clear();
  rels_.resize(next);
  while (in >> key) {
    if (key != "rel") return Status::Corruption("smgr: bad manifest entry");
    RelId id = kInvalidRel;
    std::string name;
    if (!(in >> id >> name) || id >= rels_.size()) {
      return Status::Corruption("smgr: bad manifest entry");
    }
    // The create protocol writes the relation file before the manifest
    // commits it, so a listed file must exist.
    VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> rf,
                           vfs_->Open(RelPath(name), /*create=*/false));
    VECDB_ASSIGN_OR_RETURN(uint64_t rel_size, rf->Size());
    rels_[id].name = name;
    rels_[id].file = std::move(rf);
    rels_[id].num_blocks = static_cast<BlockId>(rel_size / page_size_);
    by_name_[name] = id;
  }
  return Status::OK();
}

Result<RelId> StorageManager::CreateRelation(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("bad relation name: " + name);
  }
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("relation exists: " + name);
  }
  VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> f,
                         vfs_->Open(RelPath(name), /*create=*/true));
  // Truncate: the path may be an orphan (with stale pages) left by a drop
  // that crashed after its manifest commit but before the unlink.
  VECDB_RETURN_NOT_OK(f->Truncate(0));
  const RelId id = static_cast<RelId>(rels_.size());
  rels_.emplace_back();
  rels_[id].name = name;
  rels_[id].file = std::move(f);
  rels_[id].num_blocks = 0;
  by_name_[name] = id;
  Status saved = SaveManifest();
  if (!saved.ok()) {
    // Roll back so in-memory state matches the (unchanged) manifest.
    by_name_.erase(name);
    rels_.pop_back();
    return saved;
  }
  return id;
}

Result<RelId> StorageManager::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return it->second;
}

Status StorageManager::DropRelation(RelId rel) {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  RelFile& rf = rels_[rel];
  const std::string name = rf.name;
  std::unique_ptr<VfsFile> file = std::move(rf.file);
  by_name_.erase(rf.name);
  rf.name.clear();
  rf.num_blocks = 0;
  // Manifest commits the removal before the unlink: a crash in between
  // leaves only an orphan file, never a manifest entry with no file.
  Status saved = SaveManifest();
  if (!saved.ok()) {
    rf.name = name;
    rf.file = std::move(file);
    by_name_[name] = rel;
    return saved;
  }
  file.reset();
  return vfs_->Remove(RelPath(name));
}

Status StorageManager::CheckRel(RelId rel) const {
  if (rel >= rels_.size() || rels_[rel].file == nullptr) {
    return Status::NotFound("invalid relation id " + std::to_string(rel));
  }
  return Status::OK();
}

Result<BlockId> StorageManager::NumBlocks(RelId rel) const {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  return rels_[rel].num_blocks;
}

Result<BlockId> StorageManager::ExtendRelation(RelId rel) {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  RelFile& rf = rels_[rel];
  std::vector<char> zeros(page_size_, 0);
  VECDB_RETURN_NOT_OK(rf.file->WriteAt(
      static_cast<uint64_t>(rf.num_blocks) * page_size_, zeros.data(),
      page_size_));
  return rf.num_blocks++;
}

Status StorageManager::ReadBlock(RelId rel, BlockId block, char* buf) const {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  const RelFile& rf = rels_[rel];
  if (block >= rf.num_blocks) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " beyond relation " + rf.name);
  }
  VECDB_ASSIGN_OR_RETURN(
      size_t got,
      rf.file->ReadAt(static_cast<uint64_t>(block) * page_size_, buf,
                      page_size_));
  if (got != page_size_) {
    return Status::IOError("read failed on relation " + rf.name);
  }
  return Status::OK();
}

Status StorageManager::WriteBlock(RelId rel, BlockId block, const char* buf) {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  RelFile& rf = rels_[rel];
  if (block >= rf.num_blocks) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " beyond relation " + rf.name);
  }
  return rf.file->WriteAt(static_cast<uint64_t>(block) * page_size_, buf,
                          page_size_);
}

Status StorageManager::SyncAll() {
  for (auto& rel : rels_) {
    if (rel.file != nullptr) VECDB_RETURN_NOT_OK(rel.file->Sync());
  }
  return Status::OK();
}

std::vector<std::pair<RelId, std::string>> StorageManager::ListRelations()
    const {
  std::vector<std::pair<RelId, std::string>> out;
  for (RelId id = 0; id < rels_.size(); ++id) {
    if (rels_[id].file != nullptr) out.emplace_back(id, rels_[id].name);
  }
  return out;
}

}  // namespace vecdb::pgstub
