#include "pgstub/smgr.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vecdb::pgstub {

Result<StorageManager> StorageManager::Open(const std::string& dir,
                                            uint32_t page_size) {
  if (page_size < 512 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "StorageManager: page_size must be a power of two >= 512");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create data directory " + dir + ": " +
                           std::strerror(errno));
  }
  return StorageManager(dir, page_size);
}

StorageManager::~StorageManager() {
  for (auto& rel : rels_) {
    if (rel.file != nullptr) std::fclose(rel.file);
  }
}

StorageManager::StorageManager(StorageManager&& other) noexcept
    : dir_(std::move(other.dir_)),
      page_size_(other.page_size_),
      rels_(std::move(other.rels_)),
      by_name_(std::move(other.by_name_)) {
  other.rels_.clear();
}

StorageManager& StorageManager::operator=(StorageManager&& other) noexcept {
  if (this != &other) {
    for (auto& rel : rels_) {
      if (rel.file != nullptr) std::fclose(rel.file);
    }
    dir_ = std::move(other.dir_);
    page_size_ = other.page_size_;
    rels_ = std::move(other.rels_);
    by_name_ = std::move(other.by_name_);
    other.rels_.clear();
  }
  return *this;
}

Result<RelId> StorageManager::CreateRelation(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("bad relation name: " + name);
  }
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("relation exists: " + name);
  }
  const std::string path = dir_ + "/" + name + ".rel";
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  RelFile rel;
  rel.name = name;
  rel.file = f;
  rel.num_blocks = 0;
  const RelId id = static_cast<RelId>(rels_.size());
  rels_.push_back(rel);
  by_name_[name] = id;
  return id;
}

Result<RelId> StorageManager::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return it->second;
}

Status StorageManager::DropRelation(RelId rel) {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  RelFile& rf = rels_[rel];
  std::fclose(rf.file);
  const std::string path = dir_ + "/" + rf.name + ".rel";
  std::remove(path.c_str());
  by_name_.erase(rf.name);
  rf.file = nullptr;
  rf.num_blocks = 0;
  rf.name.clear();
  return Status::OK();
}

Status StorageManager::CheckRel(RelId rel) const {
  if (rel >= rels_.size() || rels_[rel].file == nullptr) {
    return Status::NotFound("invalid relation id " + std::to_string(rel));
  }
  return Status::OK();
}

Result<BlockId> StorageManager::NumBlocks(RelId rel) const {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  return rels_[rel].num_blocks;
}

Result<BlockId> StorageManager::ExtendRelation(RelId rel) {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  RelFile& rf = rels_[rel];
  std::vector<char> zeros(page_size_, 0);
  if (std::fseek(rf.file, static_cast<long>(rf.num_blocks) * page_size_,
                 SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, rf.file) != page_size_) {
    return Status::IOError("extend failed on relation " + rf.name);
  }
  return rf.num_blocks++;
}

Status StorageManager::ReadBlock(RelId rel, BlockId block, char* buf) const {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  const RelFile& rf = rels_[rel];
  if (block >= rf.num_blocks) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " beyond relation " + rf.name);
  }
  if (std::fseek(rf.file, static_cast<long>(block) * page_size_, SEEK_SET) !=
          0 ||
      std::fread(buf, 1, page_size_, rf.file) != page_size_) {
    return Status::IOError("read failed on relation " + rf.name);
  }
  return Status::OK();
}

Status StorageManager::WriteBlock(RelId rel, BlockId block, const char* buf) {
  VECDB_RETURN_NOT_OK(CheckRel(rel));
  RelFile& rf = rels_[rel];
  if (block >= rf.num_blocks) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " beyond relation " + rf.name);
  }
  if (std::fseek(rf.file, static_cast<long>(block) * page_size_, SEEK_SET) !=
          0 ||
      std::fwrite(buf, 1, page_size_, rf.file) != page_size_) {
    return Status::IOError("write failed on relation " + rf.name);
  }
  return Status::OK();
}

}  // namespace vecdb::pgstub
