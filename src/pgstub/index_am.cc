#include "pgstub/index_am.h"

#include <vector>

#include "common/aligned_buffer.h"

namespace vecdb::pgstub {

namespace {

/// Materialized result cursor: holds the top-k list and yields sequentially.
class MaterializedCursor final : public IndexScanCursor {
 public:
  explicit MaterializedCursor(std::vector<Neighbor> results)
      : results_(std::move(results)) {}

  Result<bool> AmGetTuple(Neighbor* out) override {
    if (pos_ >= results_.size()) return false;
    *out = results_[pos_++];
    return true;
  }

 private:
  std::vector<Neighbor> results_;
  size_t pos_ = 0;
};

}  // namespace

Status VectorIndexAm::AmBuild(const HeapTable& table) {
  // Collect the rows in storage order, then bulk-build. PASE's ambuild also
  // scans the heap once before constructing the index. VectorIndex::Build
  // numbers vectors by position; row_ids_ maps positions back to user ids.
  AlignedFloats vecs;
  row_ids_.clear();
  VECDB_RETURN_NOT_OK(table.SeqScan(
      [&](TupleId, int64_t row_id, const float* vec) {
        vecs.Append(vec, table.dim());
        row_ids_.push_back(row_id);
        return true;
      }));
  if (row_ids_.empty()) {
    return Status::InvalidArgument("AmBuild: table is empty");
  }
  return index_->Build(vecs.data(), row_ids_.size());
}

Status VectorIndexAm::AmAttach(const HeapTable& table, size_t num_rows) {
  std::vector<int64_t> ids;
  ids.reserve(num_rows);
  VECDB_RETURN_NOT_OK(
      table.SeqScan([&](TupleId, int64_t row_id, const float*) {
        if (ids.size() >= num_rows) return false;
        ids.push_back(row_id);
        return true;
      }));
  if (ids.size() < num_rows) {
    return Status::InvalidArgument(
        "AmAttach: heap has " + std::to_string(ids.size()) +
        " rows, snapshot expects " + std::to_string(num_rows));
  }
  row_ids_ = std::move(ids);
  return Status::OK();
}

Status VectorIndexAm::AmInsert(const float* vec, int64_t row_id) {
  // Delegates to the index's incremental path (NotSupported for indexes
  // that require a rebuild); on success, extend the position -> row-id map.
  VECDB_RETURN_NOT_OK(index_->Insert(vec));
  row_ids_.push_back(row_id);
  return Status::OK();
}

Status VectorIndexAm::AmDelete(int64_t row_id) {
  // Translate the user row id to the index's position before tombstoning.
  for (size_t pos = 0; pos < row_ids_.size(); ++pos) {
    if (row_ids_[pos] == row_id) {
      return index_->Delete(static_cast<int64_t>(pos));
    }
  }
  return Status::NotFound("row " + std::to_string(row_id) +
                          " not present in index");
}

Result<std::unique_ptr<IndexScanCursor>> VectorIndexAm::AmBeginScan(
    const float* query, const AmScanOptions& options) const {
  SearchParams params;
  params.k = options.k;
  params.nprobe = options.nprobe;
  params.efs = options.efs;
  params.ctx = options.ctx;
  std::vector<Neighbor> results;
  if (options.filter.selection != nullptr) {
    VECDB_ASSIGN_OR_RETURN(
        results, index_->FilteredSearch(query, options.filter, params));
  } else {
    VECDB_ASSIGN_OR_RETURN(results, index_->Search(query, params));
  }
  for (auto& nb : results) {
    if (nb.id >= 0 && static_cast<size_t>(nb.id) < row_ids_.size()) {
      nb.id = row_ids_[static_cast<size_t>(nb.id)];
    }
  }
  return std::unique_ptr<IndexScanCursor>(
      new MaterializedCursor(std::move(results)));
}

}  // namespace vecdb::pgstub
