#include "pgstub/epoch.h"

#include "common/check.h"

namespace vecdb::pgstub {

uint64_t EpochManager::Enter() {
  MutexLock lock(mu_);
  const uint64_t epoch = epoch_;
  ++pinned_[epoch];
  return epoch;
}

void EpochManager::Exit(uint64_t epoch) {
  MutexLock lock(mu_);
  auto it = pinned_.find(epoch);
  VECDB_CHECK(it != pinned_.end()) << "Exit without a matching Enter";
  if (--it->second == 0) pinned_.erase(it);
}

void EpochManager::Retire(std::function<void()> reclaim) {
  MutexLock lock(mu_);
  retired_.emplace_back(epoch_, std::move(reclaim));
  // Advance so readers arriving after this retirement pin a newer epoch
  // and never extend the retired object's lifetime.
  ++epoch_;
}

size_t EpochManager::ReclaimReady() {
  std::vector<std::function<void()>> ready;
  {
    MutexLock lock(mu_);
    const uint64_t horizon =
        pinned_.empty() ? epoch_ + 1 : pinned_.begin()->first;
    // An object retired at epoch e may still be referenced by any reader
    // pinned at an epoch <= e; it is reclaimable once horizon > e.
    size_t keep = 0;
    for (auto& [tag, fn] : retired_) {
      if (tag < horizon) {
        ready.push_back(std::move(fn));
      } else {
        retired_[keep++] = {tag, std::move(fn)};
      }
    }
    retired_.resize(keep);
  }
  // Deleters run unlocked: they may be arbitrarily heavy (snapshot sets)
  // and must not nest under the epoch mutex.
  for (auto& fn : ready) fn();
  return ready.size();
}

size_t EpochManager::ReclaimAll() {
  std::vector<std::pair<uint64_t, std::function<void()>>> all;
  {
    MutexLock lock(mu_);
    all.swap(retired_);
  }
  for (auto& [_, fn] : all) fn();
  return all.size();
}

uint64_t EpochManager::current_epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

size_t EpochManager::active_readers() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [_, count] : pinned_) n += count;
  return n;
}

size_t EpochManager::retired_pending() const {
  MutexLock lock(mu_);
  return retired_.size();
}

}  // namespace vecdb::pgstub
