// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82f63b78):
// the checksum guarding WAL record frames. Three implementations:
//
//   Crc32c         fast path — SSE4.2 _mm_crc32_* when the CPU has it
//                  (runtime-dispatched; the build uses no -march flags),
//                  slicing-by-8 tables otherwise
//   Crc32cTable    the portable slicing-by-8 path, callable directly so
//                  benches can compare it against the hardware path
//   Crc32cBitwise  the original 8-iterations-per-byte loop, kept as the
//                  test oracle the fast paths are verified against
//
// The streaming Init/Update/Finalize form lets the WAL compute ONE CRC
// across header+payload. The previous scheme XORed two independent CRCs,
// and CRC linearity makes that cancelable: flipping the same bits at the
// same distance from the end of both blocks leaves the XOR unchanged
// (see Crc32cTest.XoredCrcsCancelButStreamingDoesNot).
#pragma once

#include <cstddef>
#include <cstdint>

namespace vecdb::pgstub {

/// One-shot CRC-32C over a byte range (fast path).
uint32_t Crc32c(const void* data, size_t len);

/// Streaming form: `Crc32cFinalize(Crc32cUpdate(Crc32cInit(), p, n))`
/// equals `Crc32c(p, n)`, and Update may be chained across blocks.
inline uint32_t Crc32cInit() { return 0xffffffffu; }
uint32_t Crc32cUpdate(uint32_t state, const void* data, size_t len);
inline uint32_t Crc32cFinalize(uint32_t state) { return state ^ 0xffffffffu; }

/// Portable slicing-by-8 implementation (the non-SSE fast path).
uint32_t Crc32cTable(const void* data, size_t len);

/// Reference bitwise implementation — slow, obviously correct; test oracle.
uint32_t Crc32cBitwise(const void* data, size_t len);

}  // namespace vecdb::pgstub
