#include "pgstub/crc32c.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VECDB_CRC32C_X86_DISPATCH 1
#include <nmmintrin.h>
#endif

namespace vecdb::pgstub {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;

/// Slicing-by-8 lookup tables, built once at first use. table[0] is the
/// classic byte-at-a-time table; table[k][b] extends a byte through k+1
/// zero bytes, letting the hot loop fold 8 input bytes per iteration.
struct SlicingTables {
  uint32_t t[8][256];
  SlicingTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

const SlicingTables& Tables() {
  static const SlicingTables tables;
  return tables;
}

uint32_t TableUpdate(uint32_t state, const void* data, size_t len) {
  const auto& tab = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  // Byte-at-a-time until 8-byte alignment.
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    state = (state >> 8) ^ tab.t[0][(state ^ *p++) & 0xffu];
    --len;
  }
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= state;  // little-endian: low 4 bytes absorb the running CRC
    state = tab.t[7][chunk & 0xffu] ^ tab.t[6][(chunk >> 8) & 0xffu] ^
            tab.t[5][(chunk >> 16) & 0xffu] ^ tab.t[4][(chunk >> 24) & 0xffu] ^
            tab.t[3][(chunk >> 32) & 0xffu] ^ tab.t[2][(chunk >> 40) & 0xffu] ^
            tab.t[1][(chunk >> 48) & 0xffu] ^ tab.t[0][(chunk >> 56) & 0xffu];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    state = (state >> 8) ^ tab.t[0][(state ^ *p++) & 0xffu];
    --len;
  }
  return state;
}

#ifdef VECDB_CRC32C_X86_DISPATCH
__attribute__((target("sse4.2"))) uint32_t HwUpdate(uint32_t state,
                                                    const void* data,
                                                    size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    state = _mm_crc32_u8(state, *p++);
    --len;
  }
  uint64_t state64 = state;
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    state64 = _mm_crc32_u64(state64, chunk);
    p += 8;
    len -= 8;
  }
  state = static_cast<uint32_t>(state64);
  while (len > 0) {
    state = _mm_crc32_u8(state, *p++);
    --len;
  }
  return state;
}

using UpdateFn = uint32_t (*)(uint32_t, const void*, size_t);

UpdateFn PickUpdate() {
  return __builtin_cpu_supports("sse4.2") ? &HwUpdate : &TableUpdate;
}
#endif  // VECDB_CRC32C_X86_DISPATCH

}  // namespace

uint32_t Crc32cUpdate(uint32_t state, const void* data, size_t len) {
#ifdef VECDB_CRC32C_X86_DISPATCH
  static const UpdateFn fn = PickUpdate();
  return fn(state, data, len);
#else
  return TableUpdate(state, data, len);
#endif
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cFinalize(Crc32cUpdate(Crc32cInit(), data, len));
}

uint32_t Crc32cTable(const void* data, size_t len) {
  return Crc32cFinalize(TableUpdate(Crc32cInit(), data, len));
}

uint32_t Crc32cBitwise(const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

}  // namespace vecdb::pgstub
