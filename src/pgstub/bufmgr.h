// Buffer manager: fixed pool of page frames with clock-sweep replacement,
// pin counts, and a tag hash table (PostgreSQL's bufmgr.c analog). Every
// PASE tuple access goes Pin -> line-pointer lookup -> Unpin; this
// indirection — even with a 100% hit rate — is the paper's RC#2.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "pgstub/page.h"
#include "pgstub/smgr.h"
#include "pgstub/wal.h"

namespace vecdb::pgstub {

/// A pinned page frame. Valid until Unpin; `data` points at page_size bytes.
struct BufferHandle {
  int32_t frame = -1;
  char* data = nullptr;

  bool valid() const { return frame >= 0; }
};

/// Hit/miss/eviction counters (diagnostics and tests).
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t pins = 0;
};

/// Clock-sweep buffer pool over a StorageManager.
///
/// Thread-safe: a single mutex guards the mapping and frame metadata
/// (page contents are read outside the lock while pinned — the pin count
/// is what makes that safe, so `pool_` is deliberately unguarded). In the
/// paper's experiments the pool is sized to hold the whole dataset, so
/// after warm-up every access is a hit — yet still pays hash lookup,
/// pinning, and line-pointer indirection. The lock discipline is
/// statically checked under VECDB_TSA.
class BufferManager {
 public:
  /// `pool_pages` frames over `smgr` (not owned; must outlive this).
  BufferManager(StorageManager* smgr, size_t pool_pages);

  /// Pins (reading from disk on miss) block `block` of `rel`.
  /// Fails with ResourceExhausted when every frame is pinned.
  Result<BufferHandle> Pin(RelId rel, BlockId block) VECDB_EXCLUDES(mu_);

  /// Extends the relation by one zero-initialized page and pins it.
  /// The caller must PageView::Init the page.
  Result<std::pair<BlockId, BufferHandle>> NewPage(RelId rel)
      VECDB_EXCLUDES(mu_);

  /// Releases a pin; `dirty` marks the page for write-back. When a WAL is
  /// attached, dirty unpins log a full-page image before the page becomes
  /// eligible for eviction (WAL-before-data); logging failures surface via
  /// wal_error().
  void Unpin(const BufferHandle& handle, bool dirty) VECDB_EXCLUDES(mu_);

  /// Attaches a write-ahead log (not owned; may be null to detach).
  void SetWal(WalManager* wal) VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    wal_ = wal;
  }

  /// First WAL logging failure observed by Unpin, if any. Returns a
  /// snapshot by value: the underlying Status is mutated under the pool
  /// lock by concurrent dirty unpins.
  Status wal_error() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return wal_error_;
  }

  /// Writes all dirty pages back to storage. Fails with InvalidArgument
  /// (flushing nothing) if any dirty page is pinned: pin holders mutate
  /// contents outside the lock, so flushing one would write a torn image.
  /// Retry after the pin drains — checkpointers must not proceed without
  /// a clean flush.
  Status FlushAll() VECDB_EXCLUDES(mu_);

  /// Drops every mapping for `rel` (before DropRelation). Fails if any of
  /// its pages are still pinned.
  Status InvalidateRelation(RelId rel) VECDB_EXCLUDES(mu_);

  /// Aborts if pool bookkeeping is inconsistent: a tag-table entry pointing
  /// at an invalid or mismatched frame, a negative pin count, a usage count
  /// above the clock-sweep cap, or a valid frame missing from the table.
  /// Test/debug hook.
  void CheckInvariants() const VECDB_EXCLUDES(mu_);

  /// Counter snapshot by value: the fields are mutated under the pool lock
  /// by every Pin/NewPage, so an unlocked reference would race.
  BufferStats stats() const VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() VECDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    stats_ = {};
  }
  size_t pool_pages() const { return num_frames_; }
  uint32_t page_size() const { return smgr_->page_size(); }

 private:
  struct Frame {
    RelId rel = kInvalidRel;
    BlockId block = kInvalidBlock;
    int32_t pin_count = 0;
    uint8_t usage = 0;
    bool dirty = false;
    bool valid = false;
  };

  static uint64_t TagKey(RelId rel, BlockId block) {
    return (static_cast<uint64_t>(rel) << 32) | block;
  }

  /// Finds a victim frame via clock sweep; evicts (writing back if dirty).
  /// Returns -1 with ResourceExhausted if all frames are pinned.
  Result<int32_t> AllocFrame() VECDB_REQUIRES(mu_);

  StorageManager* smgr_;       // const after construction
  const size_t num_frames_;    // frames_.size(), readable without the lock
  std::vector<Frame> frames_ VECDB_GUARDED_BY(mu_);
  /// Page bytes. Unguarded by design: the data of a *pinned* frame is
  /// read and written by callers outside the lock; the pin count (guarded)
  /// is what keeps the frame from being reused underneath them.
  std::vector<char> pool_;
  std::unordered_map<uint64_t, int32_t> table_ VECDB_GUARDED_BY(mu_);
  size_t clock_hand_ VECDB_GUARDED_BY(mu_) = 0;
  BufferStats stats_ VECDB_GUARDED_BY(mu_);
  WalManager* wal_ VECDB_GUARDED_BY(mu_) = nullptr;
  Status wal_error_ VECDB_GUARDED_BY(mu_);
  mutable Mutex mu_;
};

}  // namespace vecdb::pgstub
