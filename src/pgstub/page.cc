#include "pgstub/page.h"

namespace vecdb::pgstub {

void PageView::Init(uint16_t special_size) {
  std::memset(buf_, 0, page_size_);
  Header* h = header();
  h->lower = sizeof(Header);
  h->special = static_cast<uint16_t>(page_size_ - special_size);
  h->upper = h->special;
  h->item_count = 0;
}

OffsetNumber PageView::AddItem(const void* data, uint16_t len) {
  Header* h = header();
  if (h->upper < h->lower || h->upper < len) return kInvalidOffset;
  // MAXALIGN the item start, as PostgreSQL does: tuple headers carry
  // 8-byte fields (int64 row ids) that are read in place, so an unaligned
  // start is undefined behaviour (UBSan: misaligned member access).
  const uint32_t start =
      (static_cast<uint32_t>(h->upper) - len) & ~static_cast<uint32_t>(7);
  if (start < static_cast<uint32_t>(h->lower) + sizeof(ItemId)) {
    return kInvalidOffset;
  }
  h->upper = static_cast<uint16_t>(start);
  ItemId* iid = item_ids() + h->item_count;
  iid->off = h->upper;
  iid->len = len;
  std::memcpy(buf_ + h->upper, data, len);
  h->lower = static_cast<uint16_t>(h->lower + sizeof(ItemId));
  h->item_count += 1;
  return h->item_count;  // 1-based
}

char* PageView::GetItem(OffsetNumber slot) const {
  if (slot == kInvalidOffset || slot > header()->item_count) return nullptr;
  const ItemId& iid = item_ids()[slot - 1];
  if (iid.len == 0) return nullptr;
  return buf_ + iid.off;
}

uint16_t PageView::GetItemLength(OffsetNumber slot) const {
  if (slot == kInvalidOffset || slot > header()->item_count) return 0;
  return item_ids()[slot - 1].len;
}

uint32_t PageView::FreeSpace() const {
  const Header* h = header();
  if (h->upper < h->lower) return 0;
  const uint32_t gap = h->upper - h->lower;
  return gap < sizeof(ItemId) ? 0 : gap - sizeof(ItemId);
}

Status PageView::Check() const {
  const Header* h = header();
  if (h->lower < sizeof(Header) || h->lower > h->upper ||
      h->upper > h->special || h->special > page_size_) {
    return Status::Corruption("page header invariants violated");
  }
  const uint32_t expected_lower =
      sizeof(Header) + static_cast<uint32_t>(h->item_count) * sizeof(ItemId);
  if (h->lower != expected_lower) {
    return Status::Corruption("page item_count inconsistent with lower");
  }
  for (uint16_t i = 0; i < h->item_count; ++i) {
    const ItemId& iid = item_ids()[i];
    if (iid.len != 0 &&
        (iid.off < h->upper || iid.off + iid.len > h->special)) {
      return Status::Corruption("line pointer outside item area");
    }
  }
  return Status::OK();
}

}  // namespace vecdb::pgstub
