// AVX2 + FMA kernel tier: 8-wide float lanes via function-level target
// attributes, so no -march flags leak into the rest of the build and the
// binary still boots on the x86-64 baseline (dispatch.cc gates on cpuid).
//
// Lane blocking runs along the dimension only — each output depends on
// exactly one input pair/code — which keeps batch results bit-identical
// to one-at-a-time calls within this tier (the SQ8 oracle contract).
#include "distance/kernels_impl.h"

#ifdef VECDB_KERNELS_X86_DISPATCH

#include <immintrin.h>

#include <cmath>

namespace vecdb::detail {
namespace {

#define VECDB_AVX2 __attribute__((target("avx2,fma")))

VECDB_AVX2 inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

VECDB_AVX2 float L2SqrAvx2(const float* a, const float* b, size_t d) {
  // Four independent accumulators: one FMA per cycle needs ~4 in flight
  // to cover the 4-cycle FMA latency, or the loop is chain-bound.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    const __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 16),
                                    _mm256_loadu_ps(b + i + 16));
    const __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 24),
                                    _mm256_loadu_ps(b + i + 24));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    acc2 = _mm256_fmadd_ps(d2, d2, acc2);
    acc3 = _mm256_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 8 <= d; i += 8) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
  }
  float s = Hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                  _mm256_add_ps(acc2, acc3)));
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    s += di * di;
  }
  return s;
}

VECDB_AVX2 float InnerProductAvx2(const float* a, const float* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= d; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float s = Hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                  _mm256_add_ps(acc2, acc3)));
  for (; i < d; ++i) s += a[i] * b[i];
  return s;
}

VECDB_AVX2 float L2NormSqrAvx2(const float* a, size_t d) {
  return InnerProductAvx2(a, a, d);
}

VECDB_AVX2 float CosineAvx2(const float* a, const float* b, size_t d) {
  // Fused single pass: three FMA accumulators per 8-lane block.
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  float sdot = Hsum256(dot);
  float sna = Hsum256(na);
  float snb = Hsum256(nb);
  for (; i < d; ++i) {
    sdot += a[i] * b[i];
    sna += a[i] * a[i];
    snb += b[i] * b[i];
  }
  if (sna == 0.f || snb == 0.f) return 1.f;
  return 1.f - sdot / std::sqrt(sna * snb);
}

VECDB_AVX2 inline float Sq8OneAvx2(const float* qadj, const float* scale,
                                   size_t d, const uint8_t* code) {
  __m256 acc = _mm256_setzero_ps();
  size_t t = 0;
  for (; t + 8 <= d; t += 8) {
    // Widen 8 code bytes u8 -> i32 -> f32, then diff = qadj - code*scale
    // as one fnmadd and square-accumulate as one fmadd.
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + t));
    const __m256 vcode = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    const __m256 diff = _mm256_fnmadd_ps(vcode, _mm256_loadu_ps(scale + t),
                                         _mm256_loadu_ps(qadj + t));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float s = Hsum256(acc);
  for (; t < d; ++t) {
    const float dt = qadj[t] - static_cast<float>(code[t]) * scale[t];
    s += dt * dt;
  }
  return s;
}

VECDB_AVX2 void Sq8BatchAvx2(const float* qadj, const float* scale, size_t d,
                             const uint8_t* codes, size_t n, float* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = Sq8OneAvx2(qadj, scale, d, codes + j * d);
  }
}

VECDB_AVX2 void Sq8GatherAvx2(const float* qadj, const float* scale, size_t d,
                              const uint8_t* const* codes, size_t n,
                              float* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = Sq8OneAvx2(qadj, scale, d, codes[j]);
  }
}

#undef VECDB_AVX2

const KernelDispatch kAvx2Table = {
    KernelIsa::kAvx2, L2SqrAvx2,    InnerProductAvx2, L2NormSqrAvx2,
    CosineAvx2,       Sq8BatchAvx2, Sq8GatherAvx2,
};

}  // namespace

const KernelDispatch* Avx2KernelTable() { return &kAvx2Table; }

}  // namespace vecdb::detail

#else  // !VECDB_KERNELS_X86_DISPATCH

namespace vecdb::detail {
const KernelDispatch* Avx2KernelTable() { return nullptr; }
}  // namespace vecdb::detail

#endif
