// Resolution of the active kernel tier: cpuid picks the widest compiled-in
// tier the host can run, VECDB_KERNEL_ISA can clamp it down, and the result
// is latched in a function-local static on first use (same shape as the
// CRC-32C dispatch in pgstub/crc32c.cc).
#include "distance/dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "distance/kernels_impl.h"

namespace vecdb {

namespace {

/// Widest tier this host can execute, among those compiled in.
KernelIsa BestSupportedIsa() {
#ifdef VECDB_KERNELS_X86_DISPATCH
  __builtin_cpu_init();
  if (detail::Avx512KernelTable() != nullptr &&
      __builtin_cpu_supports("avx512f")) {
    return KernelIsa::kAvx512;
  }
  if (detail::Avx2KernelTable() != nullptr && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return KernelIsa::kAvx2;
  }
#endif
  return KernelIsa::kScalar;
}

const KernelDispatch* TableForSupported(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return &detail::ScalarKernelTable();
    case KernelIsa::kAvx2:
      return detail::Avx2KernelTable();
    case KernelIsa::kAvx512:
      return detail::Avx512KernelTable();
  }
  return nullptr;
}

const KernelDispatch& ResolveActiveTable() {
  const KernelIsa best = BestSupportedIsa();
  std::string note;
  const KernelIsa chosen =
      ResolveKernelIsa(std::getenv("VECDB_KERNEL_ISA"), best, &note);
  if (!note.empty()) {
    std::fprintf(stderr, "[vecdb] %s\n", note.c_str());
  }
  const KernelDispatch* table = TableForSupported(chosen);
  return table != nullptr ? *table : detail::ScalarKernelTable();
}

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

KernelIsa ResolveKernelIsa(const char* override_value, KernelIsa best,
                           std::string* note) {
  if (override_value == nullptr || override_value[0] == '\0') return best;

  KernelIsa wanted;
  if (std::strcmp(override_value, "scalar") == 0) {
    wanted = KernelIsa::kScalar;
  } else if (std::strcmp(override_value, "avx2") == 0) {
    wanted = KernelIsa::kAvx2;
  } else if (std::strcmp(override_value, "avx512") == 0) {
    wanted = KernelIsa::kAvx512;
  } else {
    if (note != nullptr) {
      *note = std::string("VECDB_KERNEL_ISA=") + override_value +
              " not recognized (want scalar|avx2|avx512); using " +
              KernelIsaName(best);
    }
    return best;
  }

  if (static_cast<uint8_t>(wanted) > static_cast<uint8_t>(best)) {
    if (note != nullptr) {
      *note = std::string("VECDB_KERNEL_ISA=") + override_value +
              " not supported on this host; using " + KernelIsaName(best);
    }
    return best;
  }
  return wanted;
}

const KernelDispatch& ActiveKernels() {
  static const KernelDispatch& table = ResolveActiveTable();
  return table;
}

KernelIsa ActiveKernelIsa() { return ActiveKernels().isa; }

bool KernelIsaSupported(KernelIsa isa) {
  return static_cast<uint8_t>(isa) <=
         static_cast<uint8_t>(BestSupportedIsa());
}

const KernelDispatch* KernelTableFor(KernelIsa isa) {
  if (!KernelIsaSupported(isa)) return nullptr;
  return TableForSupported(isa);
}

}  // namespace vecdb
