// AVX-512F kernel tier: 16-wide float lanes with masked tails, written
// with function-level target attributes like the AVX2 tier (no -march
// flags; dispatch.cc gates on cpuid before this code ever executes).
//
// Only AVX-512F is required: float loads/FMA/reduce plus VPMOVZXBD for the
// SQ8 byte widening are all F-level, so the tier runs on every AVX-512
// machine regardless of the BW/VL/VNNI extension mix.
#include "distance/kernels_impl.h"

#ifdef VECDB_KERNELS_X86_DISPATCH

#include <immintrin.h>

#include <cmath>

namespace vecdb::detail {
namespace {

#define VECDB_AVX512 __attribute__((target("avx512f")))

VECDB_AVX512 inline __mmask16 TailMask(size_t remaining) {
  return static_cast<__mmask16>((1u << remaining) - 1u);
}

VECDB_AVX512 float L2SqrAvx512(const float* a, const float* b, size_t d) {
  // Four independent accumulators to cover the FMA latency chain (same
  // rationale as the AVX2 tier).
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= d; i += 64) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    const __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 32),
                                    _mm512_loadu_ps(b + i + 32));
    const __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 48),
                                    _mm512_loadu_ps(b + i + 48));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    acc2 = _mm512_fmadd_ps(d2, d2, acc2);
    acc3 = _mm512_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 16 <= d; i += 16) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
  }
  if (i < d) {
    const __mmask16 m = TailMask(d - i);
    const __m512 d0 = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                    _mm512_maskz_loadu_ps(m, b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                            _mm512_add_ps(acc2, acc3)));
}

VECDB_AVX512 float InnerProductAvx512(const float* a, const float* b,
                                      size_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= d; i += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 32),
                           _mm512_loadu_ps(b + i + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 48),
                           _mm512_loadu_ps(b + i + 48), acc3);
  }
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < d) {
    const __mmask16 m = TailMask(d - i);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                            _mm512_add_ps(acc2, acc3)));
}

VECDB_AVX512 float L2NormSqrAvx512(const float* a, size_t d) {
  return InnerProductAvx512(a, a, d);
}

VECDB_AVX512 float CosineAvx512(const float* a, const float* b, size_t d) {
  __m512 dot = _mm512_setzero_ps();
  __m512 na = _mm512_setzero_ps();
  __m512 nb = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i);
    const __m512 vb = _mm512_loadu_ps(b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  if (i < d) {
    const __mmask16 m = TailMask(d - i);
    const __m512 va = _mm512_maskz_loadu_ps(m, a + i);
    const __m512 vb = _mm512_maskz_loadu_ps(m, b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  const float sdot = _mm512_reduce_add_ps(dot);
  const float sna = _mm512_reduce_add_ps(na);
  const float snb = _mm512_reduce_add_ps(nb);
  if (sna == 0.f || snb == 0.f) return 1.f;
  return 1.f - sdot / std::sqrt(sna * snb);
}

VECDB_AVX512 inline float Sq8OneAvx512(const float* qadj, const float* scale,
                                       size_t d, const uint8_t* code) {
  __m512 acc = _mm512_setzero_ps();
  size_t t = 0;
  for (; t + 16 <= d; t += 16) {
    // 16 code bytes widen u8 -> i32 (VPMOVZXBD) -> f32, then the diff and
    // square-accumulate are one fnmadd + one fmadd.
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + t));
    const __m512 vcode = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
    const __m512 diff = _mm512_fnmadd_ps(vcode, _mm512_loadu_ps(scale + t),
                                         _mm512_loadu_ps(qadj + t));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  float s = _mm512_reduce_add_ps(acc);
  // Byte tails stay scalar: a masked byte load would need AVX-512BW, and
  // this tier deliberately requires only F (see file comment).
  for (; t < d; ++t) {
    const float dt = qadj[t] - static_cast<float>(code[t]) * scale[t];
    s += dt * dt;
  }
  return s;
}

VECDB_AVX512 void Sq8BatchAvx512(const float* qadj, const float* scale,
                                 size_t d, const uint8_t* codes, size_t n,
                                 float* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = Sq8OneAvx512(qadj, scale, d, codes + j * d);
  }
}

VECDB_AVX512 void Sq8GatherAvx512(const float* qadj, const float* scale,
                                  size_t d, const uint8_t* const* codes,
                                  size_t n, float* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = Sq8OneAvx512(qadj, scale, d, codes[j]);
  }
}

#undef VECDB_AVX512

const KernelDispatch kAvx512Table = {
    KernelIsa::kAvx512, L2SqrAvx512,    InnerProductAvx512, L2NormSqrAvx512,
    CosineAvx512,       Sq8BatchAvx512, Sq8GatherAvx512,
};

}  // namespace

const KernelDispatch* Avx512KernelTable() { return &kAvx512Table; }

}  // namespace vecdb::detail

#else  // !VECDB_KERNELS_X86_DISPATCH

namespace vecdb::detail {
const KernelDispatch* Avx512KernelTable() { return nullptr; }
}  // namespace vecdb::detail

#endif
