#include "distance/sgemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "distance/kernels.h"
#include "obs/metrics.h"

namespace vecdb {

namespace {
// Panel sizes: a packed B panel (kBlockK x kBlockN floats = 128KB) plus the
// active C rows stay cache-resident.
constexpr size_t kBlockN = 128;
constexpr size_t kBlockK = 256;

// Packed outer-product update: crow[0..nc) += sum_p a[p] * bpack[p][0..nc).
// The inner loops are contiguous over j, which GCC vectorizes with FMA.
inline void RankUpdateRow(size_t kc, size_t nc, const float* a_row,
                          const float* bpack, float* crow) {
  size_t p = 0;
  for (; p + 4 <= kc; p += 4) {
    const float a0 = a_row[p];
    const float a1 = a_row[p + 1];
    const float a2 = a_row[p + 2];
    const float a3 = a_row[p + 3];
    const float* b0 = bpack + p * nc;
    const float* b1 = b0 + nc;
    const float* b2 = b1 + nc;
    const float* b3 = b2 + nc;
    for (size_t j = 0; j < nc; ++j) {
      crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
  }
  for (; p < kc; ++p) {
    const float ap = a_row[p];
    const float* bp = bpack + p * nc;
    for (size_t j = 0; j < nc; ++j) crow[j] += ap * bp[j];
  }
}
}  // namespace

void SgemmTransB(size_t m, size_t n, size_t k, const float* a, const float* b,
                 float* c) {
  obs::MetricsRegistry::Global().Add(obs::Counter::kSgemmCalls);
  std::memset(c, 0, m * n * sizeof(float));
  std::vector<float> bpack(kBlockK * kBlockN);
  for (size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const size_t nc = std::min(kBlockN, n - j0);
    for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const size_t kc = std::min(kBlockK, k - k0);
      // Pack Bᵀ panel: bpack[p][j] = b[(j0+j)*k + k0 + p], contiguous in j.
      for (size_t p = 0; p < kc; ++p) {
        float* dst = bpack.data() + p * nc;
        for (size_t j = 0; j < nc; ++j) {
          dst[j] = b[(j0 + j) * k + k0 + p];
        }
      }
      for (size_t i = 0; i < m; ++i) {
        RankUpdateRow(kc, nc, a + i * k + k0, bpack.data(),
                      c + i * n + j0);
      }
    }
  }
}

void RowNormsSqr(const float* x, size_t n, size_t k, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = L2NormSqr(x + i * k, k);
}

void AllPairsL2Sqr(const float* x, size_t nx, const float* y, size_t ny,
                   size_t d, const float* x_norms, const float* y_norms,
                   float* out) {
  std::vector<float> xn_local, yn_local;
  if (x_norms == nullptr) {
    xn_local.resize(nx);
    RowNormsSqr(x, nx, d, xn_local.data());
    x_norms = xn_local.data();
  }
  if (y_norms == nullptr) {
    yn_local.resize(ny);
    RowNormsSqr(y, ny, d, yn_local.data());
    y_norms = yn_local.data();
  }
  SgemmTransB(nx, ny, d, x, y, out);
  for (size_t i = 0; i < nx; ++i) {
    float* row = out + i * ny;
    const float xn = x_norms[i];
    for (size_t j = 0; j < ny; ++j) {
      // Clamp: the decomposition can go slightly negative in float.
      const float v = xn + y_norms[j] - 2.f * row[j];
      row[j] = v < 0.f ? 0.f : v;
    }
  }
}

void AllPairsL2SqrNaive(const float* x, size_t nx, const float* y, size_t ny,
                        size_t d, float* out) {
  for (size_t i = 0; i < nx; ++i) {
    for (size_t j = 0; j < ny; ++j) {
      out[i * ny + j] = L2Sqr(x + i * d, y + j * d, d);
    }
  }
}

}  // namespace vecdb
