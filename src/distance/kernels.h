// Public distance kernels. `L2Sqr` is the hot function the paper profiles
// as fvec_L2sqr / fvec_L2sqr_ref in both PASE and Faiss. Every function
// here except L2SqrRef forwards through the runtime ISA dispatch table
// (distance/dispatch.h): scalar / AVX2+FMA / AVX-512F, resolved once from
// cpuid with a VECDB_KERNEL_ISA env override.
#pragma once

#include <cstddef>

#include "distance/metric.h"

namespace vecdb {

/// Squared Euclidean distance between two d-dimensional vectors via the
/// active ISA tier (the Faiss fvec_L2sqr role).
float L2Sqr(const float* a, const float* b, size_t d);

/// Reference scalar implementation (PASE's fvec_L2sqr_ref): a plain loop
/// compiled without vectorization or unrolling. The paper identifies this
/// kernel as the IVF build bottleneck in PASE (RC#1's counterpart); it is
/// used on the PASE adding/training paths and by the "SGEMM disabled"
/// Faiss configurations, which the paper made "use the same code as in
/// PASE" (Fig 4/6).
float L2SqrRef(const float* a, const float* b, size_t d);

/// Inner product of two d-dimensional vectors.
float InnerProduct(const float* a, const float* b, size_t d);

/// Squared L2 norm of a d-dimensional vector.
float L2NormSqr(const float* a, size_t d);

/// Cosine distance 1 - (a·b)/(|a||b|); returns 1 if either vector is zero.
/// Computed in one fused pass (dot and both norms in a single sweep).
float CosineDistance(const float* a, const float* b, size_t d);

/// Dispatches to the kernel for `metric`, returning a value where smaller
/// means more similar (inner product is negated).
float Distance(Metric metric, const float* a, const float* b, size_t d);

/// Distances from one query to `n` contiguous base vectors (row-major),
/// writing `n` outputs. Loops the single-pair kernel with the dispatch
/// table hoisted once per batch; both engines use this on paths where the
/// paper's systems do likewise.
void DistanceBatch(Metric metric, const float* query, const float* base,
                   size_t n, size_t d, float* out);

}  // namespace vecdb
