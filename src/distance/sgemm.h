// Hand-written cache-blocked SGEMM. The offline build has no BLAS, so this
// stands in for the library Faiss calls through (paper RC#1). What matters
// for reproducing RC#1 is the algorithmic restructuring: computing all
// centroid-vector distances via ‖x‖² + ‖c‖² − 2·x·c with one matrix-matrix
// product and precomputed norms, instead of a per-pair L2 loop.
#pragma once

#include <cstddef>

namespace vecdb {

/// C (m×n, row-major) = A (m×k, row-major) · Bᵀ where B is (n×k, row-major).
///
/// The B-transposed convention matches vector-search use: A holds queries or
/// base vectors, B holds centroids, both stored row-major with dimension k.
/// Register-tiled 4x4 micro-kernel with L2-sized panel blocking.
void SgemmTransB(size_t m, size_t n, size_t k, const float* a, const float* b,
                 float* c);

/// Computes squared L2 norms of `n` row-major k-dim vectors into `out[n]`.
void RowNormsSqr(const float* x, size_t n, size_t k, float* out);

/// All-pairs squared L2 distances via the SGEMM decomposition:
/// out[i*ny + j] = ‖x_i‖² + ‖y_j‖² − 2 x_i·y_j.
///
/// `x_norms` / `y_norms` may be null, in which case norms are computed
/// internally; pass precomputed norms to amortize across calls (this is the
/// "store those items in a table" optimization the paper describes).
void AllPairsL2Sqr(const float* x, size_t nx, const float* y, size_t ny,
                   size_t d, const float* x_norms, const float* y_norms,
                   float* out);

/// Reference all-pairs distances via the per-pair kernel (the PASE way).
/// Used by tests and the SGEMM-disabled benchmark configurations.
void AllPairsL2SqrNaive(const float* x, size_t nx, const float* y, size_t ny,
                        size_t d, float* out);

}  // namespace vecdb
