// Scalar kernel tier: portable C++ the compiler auto-vectorizes to the
// x86-64 SSE2 baseline. This is both the fallback tier and the reference
// the dispatch-parity tests measure the intrinsic tiers against.
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "distance/kernels_impl.h"

namespace vecdb::detail {
namespace {

float L2SqrScalar(const float* a, const float* b, size_t d) {
  // Four accumulators break the loop-carried dependence so GCC vectorizes
  // and pipelines the adds.
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    s0 += di * di;
  }
  return (s0 + s1) + (s2 + s3);
}

float InnerProductScalar(const float* a, const float* b, size_t d) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < d; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float L2NormSqrScalar(const float* a, size_t d) {
  return InnerProductScalar(a, a, d);
}

float CosineScalar(const float* a, const float* b, size_t d) {
  // One fused sweep accumulating all three reductions (dot, |a|², |b|²);
  // the pre-dispatch implementation walked the vectors three times.
  float dot0 = 0.f, dot1 = 0.f, na0 = 0.f, na1 = 0.f, nb0 = 0.f, nb1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    dot0 += a[i] * b[i];
    na0 += a[i] * a[i];
    nb0 += b[i] * b[i];
    dot1 += a[i + 1] * b[i + 1];
    na1 += a[i + 1] * a[i + 1];
    nb1 += b[i + 1] * b[i + 1];
  }
  for (; i < d; ++i) {
    dot0 += a[i] * b[i];
    na0 += a[i] * a[i];
    nb0 += b[i] * b[i];
  }
  const float dot = dot0 + dot1;
  const float na = na0 + na1;
  const float nb = nb0 + nb1;
  if (na == 0.f || nb == 0.f) return 1.f;
  return 1.f - dot / std::sqrt(na * nb);
}

float Sq8OneScalar(const float* qadj, const float* scale, size_t d,
                   const uint8_t* code) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t t = 0;
  for (; t + 4 <= d; t += 4) {
    const float d0 = qadj[t] - static_cast<float>(code[t]) * scale[t];
    const float d1 = qadj[t + 1] - static_cast<float>(code[t + 1]) * scale[t + 1];
    const float d2 = qadj[t + 2] - static_cast<float>(code[t + 2]) * scale[t + 2];
    const float d3 = qadj[t + 3] - static_cast<float>(code[t + 3]) * scale[t + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; t < d; ++t) {
    const float dt = qadj[t] - static_cast<float>(code[t]) * scale[t];
    s0 += dt * dt;
  }
  return (s0 + s1) + (s2 + s3);
}

void Sq8BatchScalar(const float* qadj, const float* scale, size_t d,
                    const uint8_t* codes, size_t n, float* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = Sq8OneScalar(qadj, scale, d, codes + j * d);
  }
}

void Sq8GatherScalar(const float* qadj, const float* scale, size_t d,
                     const uint8_t* const* codes, size_t n, float* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = Sq8OneScalar(qadj, scale, d, codes[j]);
  }
}

const KernelDispatch kScalarTable = {
    KernelIsa::kScalar,  L2SqrScalar,    InnerProductScalar,
    L2NormSqrScalar,     CosineScalar,   Sq8BatchScalar,
    Sq8GatherScalar,
};

}  // namespace

const KernelDispatch& ScalarKernelTable() { return kScalarTable; }

}  // namespace vecdb::detail
