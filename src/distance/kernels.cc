// Public kernel entry points. These keep the historic signatures but now
// forward through the runtime-resolved dispatch table (distance/dispatch.h),
// so every caller picks up the widest ISA tier the host supports without a
// call-site edit. L2SqrRef stays here untouched: it is the deliberately
// scalar PASE reference kernel the paper profiles, never dispatched.
#include "distance/kernels.h"

#include "distance/dispatch.h"

namespace vecdb {

float L2Sqr(const float* a, const float* b, size_t d) {
  return ActiveKernels().l2sqr(a, b, d);
}

__attribute__((optimize("no-tree-vectorize", "no-unroll-loops")))
float L2SqrRef(const float* a, const float* b, size_t d) {
  float s = 0.f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

float InnerProduct(const float* a, const float* b, size_t d) {
  return ActiveKernels().inner_product(a, b, d);
}

float L2NormSqr(const float* a, size_t d) {
  return ActiveKernels().l2norm_sqr(a, d);
}

float CosineDistance(const float* a, const float* b, size_t d) {
  return ActiveKernels().cosine(a, b, d);
}

float Distance(Metric metric, const float* a, const float* b, size_t d) {
  const KernelDispatch& k = ActiveKernels();
  switch (metric) {
    case Metric::kL2:
      return k.l2sqr(a, b, d);
    case Metric::kInnerProduct:
      return -k.inner_product(a, b, d);
    case Metric::kCosine:
      return k.cosine(a, b, d);
  }
  return 0.f;
}

void DistanceBatch(Metric metric, const float* query, const float* base,
                   size_t n, size_t d, float* out) {
  // Hoist the table once per batch instead of re-reading the dispatch
  // static per vector.
  const KernelDispatch& k = ActiveKernels();
  switch (metric) {
    case Metric::kL2:
      for (size_t i = 0; i < n; ++i) out[i] = k.l2sqr(query, base + i * d, d);
      return;
    case Metric::kInnerProduct:
      for (size_t i = 0; i < n; ++i) {
        out[i] = -k.inner_product(query, base + i * d, d);
      }
      return;
    case Metric::kCosine:
      for (size_t i = 0; i < n; ++i) out[i] = k.cosine(query, base + i * d, d);
      return;
  }
}

std::string_view MetricName(Metric m) {
  switch (m) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

}  // namespace vecdb
