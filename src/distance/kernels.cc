#include "distance/kernels.h"

#include <cmath>

namespace vecdb {

float L2Sqr(const float* a, const float* b, size_t d) {
  // Four accumulators break the loop-carried dependence so GCC vectorizes
  // and pipelines the adds.
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    s0 += di * di;
  }
  return (s0 + s1) + (s2 + s3);
}

__attribute__((optimize("no-tree-vectorize", "no-unroll-loops")))
float L2SqrRef(const float* a, const float* b, size_t d) {
  float s = 0.f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

float InnerProduct(const float* a, const float* b, size_t d) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < d; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float L2NormSqr(const float* a, size_t d) { return InnerProduct(a, a, d); }

float CosineDistance(const float* a, const float* b, size_t d) {
  const float dot = InnerProduct(a, b, d);
  const float na = L2NormSqr(a, d);
  const float nb = L2NormSqr(b, d);
  if (na == 0.f || nb == 0.f) return 1.f;
  return 1.f - dot / std::sqrt(na * nb);
}

float Distance(Metric metric, const float* a, const float* b, size_t d) {
  switch (metric) {
    case Metric::kL2:
      return L2Sqr(a, b, d);
    case Metric::kInnerProduct:
      return -InnerProduct(a, b, d);
    case Metric::kCosine:
      return CosineDistance(a, b, d);
  }
  return 0.f;
}

void DistanceBatch(Metric metric, const float* query, const float* base,
                   size_t n, size_t d, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Distance(metric, query, base + i * d, d);
  }
}

std::string_view MetricName(Metric m) {
  switch (m) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

}  // namespace vecdb
