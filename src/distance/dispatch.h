// Runtime ISA dispatch for the distance kernels. The paper pins PASE's
// build/search gap on its scalar fvec_L2sqr_ref kernel (RC#1); this layer
// is the other end of that axis: one dispatch table resolved at first use
// from cpuid (scalar / AVX2+FMA / AVX-512F), so every index class gets the
// widest kernels the host can run without a single call-site edit and
// without baking -march flags into the build (the binary stays portable,
// like the CRC-32C dispatch in pgstub/crc32c.cc).
//
// The resolved tier can be forced down with the VECDB_KERNEL_ISA
// environment variable ("scalar", "avx2", "avx512"), read once at first
// kernel use. Forcing a tier the host cannot run falls back to the best
// supported tier with a one-time stderr notice — an override never turns
// into a SIGILL.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vecdb {

/// Kernel instruction-set tiers, widest last. kScalar is the portable
/// baseline (auto-vectorized to the x86-64 SSE2 floor by the compiler).
enum class KernelIsa : uint8_t {
  kScalar = 0,
  kAvx2 = 1,    ///< AVX2 + FMA, 8-wide float lanes
  kAvx512 = 2,  ///< AVX-512F, 16-wide float lanes with masked tails
};

/// Canonical lowercase tier name ("scalar", "avx2", "avx512"); also the
/// accepted VECDB_KERNEL_ISA values.
const char* KernelIsaName(KernelIsa isa);

/// One tier's kernel implementations. Float kernels mirror the public
/// functions in kernels.h; the sq8_* entries are the quantized fast-scan
/// family consumed through ScalarQuantizer8 (quantizer/sq8.h).
///
/// Contract shared by every tier: each output element depends only on its
/// own input pair/code (lane blocking runs along the dimension, never
/// across codes), so batch results are bit-identical to one-at-a-time
/// calls within a tier — the property the SQ8 oracle tests pin.
struct KernelDispatch {
  KernelIsa isa;

  float (*l2sqr)(const float* a, const float* b, size_t d);
  float (*inner_product)(const float* a, const float* b, size_t d);
  float (*l2norm_sqr)(const float* a, size_t d);
  /// Fused single-pass cosine distance: dot, |a|², |b|² accumulated in one
  /// sweep (the pre-dispatch implementation made three passes).
  float (*cosine)(const float* a, const float* b, size_t d);

  /// Asymmetric SQ8 L2 fast scan over `n` contiguous d-byte codes:
  /// out[j] = sum_t (qadj[t] - codes[j*d+t] * scale[t])², where qadj is
  /// the query pre-expanded per dimension (see ScalarQuantizer8::
  /// PrepareQuery). Codes widen u8 -> f32 in SIMD lanes.
  void (*sq8_l2_batch)(const float* qadj, const float* scale, size_t d,
                       const uint8_t* codes, size_t n, float* out);
  /// Same kernel over `n` non-contiguous codes addressed by pointer — the
  /// page-resident (PASE) scan shape, where codes sit behind tuple
  /// headers. Bit-identical to sq8_l2_batch on the same codes.
  void (*sq8_l2_gather)(const float* qadj, const float* scale, size_t d,
                        const uint8_t* const* codes, size_t n, float* out);
};

/// The table serving this process, resolved once at first use:
/// best-supported tier, clamped down by VECDB_KERNEL_ISA if set.
const KernelDispatch& ActiveKernels();

/// Tier of the table ActiveKernels() resolved to (for SHOW METRICS /
/// diagnostics).
KernelIsa ActiveKernelIsa();

/// True when `isa` is both compiled in and runnable on this CPU.
bool KernelIsaSupported(KernelIsa isa);

/// The dispatch table for one specific tier, or nullptr when the host
/// cannot run it. Lets tests and micro benches drive every supported tier
/// side by side regardless of which one is active.
const KernelDispatch* KernelTableFor(KernelIsa isa);

/// Pure resolution rule, exposed for tests: applies `override_value` (the
/// VECDB_KERNEL_ISA string, may be null) to the host's best tier. An
/// unknown value or a tier the host lacks keeps `best` and explains why
/// in `note`; a recognized, supported value selects it (notes stay empty
/// for a plain downgrade, which is the supported use).
KernelIsa ResolveKernelIsa(const char* override_value, KernelIsa best,
                           std::string* note);

}  // namespace vecdb
