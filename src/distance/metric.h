// Similarity metrics supported by every index in vecdb. The paper's
// experiments use Euclidean distance (PASE similarity "type 0").
#pragma once

#include <cstdint>
#include <string_view>

namespace vecdb {

/// Distance/similarity function used to rank vectors.
enum class Metric : uint8_t {
  kL2 = 0,            ///< squared Euclidean distance (smaller is closer)
  kInnerProduct = 1,  ///< negative inner product (smaller is closer)
  kCosine = 2,        ///< cosine distance 1 - cos(a, b) (smaller is closer)
};

/// Canonical lowercase name ("l2", "ip", "cosine").
std::string_view MetricName(Metric m);

}  // namespace vecdb
