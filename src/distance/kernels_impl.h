// Internal seam between the per-tier kernel translation units and the
// dispatch resolver. Not installed into any public header: everything here
// is an implementation detail of src/distance.
#pragma once

#include "distance/dispatch.h"

// The intrinsic tiers are written with __attribute__((target(...))) so the
// build needs no -march flags (the binary stays runnable on the x86-64
// baseline); that idiom needs gcc or clang on x86-64.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VECDB_KERNELS_X86_DISPATCH 1
#endif

namespace vecdb::detail {

/// Always available.
const KernelDispatch& ScalarKernelTable();

/// Compiled-in tier tables; nullptr on non-x86 builds. Callers must still
/// gate on cpuid (dispatch.cc does) before executing them.
const KernelDispatch* Avx2KernelTable();
const KernelDispatch* Avx512KernelTable();

}  // namespace vecdb::detail
