// Top-k collection strategies. The paper's RC#6: Faiss keeps a bounded
// max-heap of size k, while PASE pushes all n candidates into an n-sized
// heap and pops k afterwards — measurably slower. Both are implemented here
// so each engine uses its faithful variant, and benchmarks can swap them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/thread_annotations.h"
#include "topk/neighbor.h"

namespace vecdb {

/// Bounded max-heap keeping the k smallest distances seen (Faiss style).
///
/// Push is O(log k) only when the candidate beats the current worst;
/// otherwise it is a single compare. `worst()` enables early pruning.
class KMaxHeap {
 public:
  /// Creates a heap retaining the `k` closest candidates (k >= 1).
  explicit KMaxHeap(size_t k) : k_(k == 0 ? 1 : k) { heap_.reserve(k_); }

  /// Offers a candidate; keeps it only if among the k best so far.
  void Push(float dist, int64_t id) {
    if (heap_.size() < k_) {
      heap_.push_back({dist, id});
      std::push_heap(heap_.begin(), heap_.end(), Less);
    } else if (dist < heap_.front().dist) {
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back() = {dist, id};
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
  }

  /// Current worst retained distance, or +inf while not yet full. Candidates
  /// at or above this bound cannot enter the heap.
  float worst() const {
    return heap_.size() < k_ ? std::numeric_limits<float>::infinity()
                             : heap_.front().dist;
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }
  bool full() const { return heap_.size() == k_; }

  /// Extracts the retained candidates sorted ascending by distance,
  /// leaving the heap empty and ready for reuse at the same capacity
  /// (batched search reuses one per-worker heap across many queries).
  std::vector<Neighbor> TakeSorted() {
    std::sort(heap_.begin(), heap_.end());
    std::vector<Neighbor> out = std::move(heap_);
    // Moved-from vectors are valid-but-unspecified; put heap_ back into the
    // documented "empty" state explicitly instead of relying on that.
    heap_.clear();
    heap_.reserve(k_);
    return out;
  }

  /// Read-only view of the unordered heap contents.
  const std::vector<Neighbor>& raw() const { return heap_; }

 private:
  // Max-heap on distance (worst on top) with id tie-break for determinism.
  static bool Less(const Neighbor& a, const Neighbor& b) { return a < b; }

  size_t k_;
  std::vector<Neighbor> heap_;
};

/// Unbounded collector that heapifies all n candidates and then extracts k
/// (PASE style, paper RC#6). Deliberately inefficient in the same way.
class NHeap {
 public:
  /// Appends a candidate unconditionally (O(1) amortized, O(n) memory).
  void Push(float dist, int64_t id) { items_.push_back({dist, id}); }

  size_t size() const { return items_.size(); }

  /// Builds a heap over all n items and pops the k smallest, as PASE's
  /// executor does: k sift-downs over an n-sized heap. Consumes the
  /// collected candidates: the collector is empty afterwards, so a reused
  /// instance never double-counts a previous query's candidates.
  std::vector<Neighbor> PopK(size_t k);

 private:
  std::vector<Neighbor> items_;
};

/// Mutex-guarded shared top-k heap (PASE's intra-query parallel search,
/// paper RC#3): every worker contends on one lock per insertion. The
/// guarded heap is statically lock-checked under VECDB_TSA.
class LockedGlobalHeap {
 public:
  explicit LockedGlobalHeap(size_t k) : heap_(k) {}

  /// Thread-safe push; serializes all callers.
  void Push(float dist, int64_t id) VECDB_EXCLUDES(mu_) {
    MutexLock guard(mu_);
    heap_.Push(dist, id);
  }

  /// Nanoseconds spent inside the critical section across all threads.
  /// (Accounted by the callers via LockTimedPush in benchmarks.)
  std::vector<Neighbor> TakeSorted() VECDB_EXCLUDES(mu_) {
    MutexLock guard(mu_);
    return heap_.TakeSorted();
  }

 private:
  Mutex mu_;
  KMaxHeap heap_ VECDB_GUARDED_BY(mu_);
};

/// Merges per-thread local top-k lists into one global top-k
/// (Faiss's lock-free reduction for parallel search).
std::vector<Neighbor> MergeTopK(std::vector<std::vector<Neighbor>> locals,
                                size_t k);

}  // namespace vecdb
