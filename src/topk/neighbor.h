// The (distance, id) pair every search path produces.
#pragma once

#include <cstdint>

namespace vecdb {

/// A search candidate or result: distance to the query plus the row id.
/// Smaller distance means more similar for every metric in vecdb.
struct Neighbor {
  float dist = 0.f;
  int64_t id = -1;

  /// Orders by distance, then id, so result lists are deterministic.
  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

}  // namespace vecdb
