#include "topk/heaps.h"

#include <limits>

namespace vecdb {

std::vector<Neighbor> NHeap::PopK(size_t k) {
  // Min-heap over ALL n candidates, then k pops — the n-sized-heap
  // behaviour the paper measures in PASE (RC#6).
  auto greater = [](const Neighbor& a, const Neighbor& b) { return b < a; };
  std::make_heap(items_.begin(), items_.end(), greater);
  std::vector<Neighbor> out;
  out.reserve(std::min(k, items_.size()));
  auto end = items_.end();
  for (size_t i = 0; i < k && items_.begin() != end; ++i) {
    std::pop_heap(items_.begin(), end, greater);
    --end;
    out.push_back(*end);
  }
  items_.clear();
  return out;
}

std::vector<Neighbor> MergeTopK(std::vector<std::vector<Neighbor>> locals,
                                size_t k) {
  KMaxHeap merged(k);
  for (const auto& local : locals) {
    for (const auto& nb : local) merged.Push(nb.dist, nb.id);
  }
  return merged.TakeSorted();
}

}  // namespace vecdb
