#include "datasets/ground_truth.h"

#include <unordered_set>

#include "distance/kernels.h"
#include "topk/heaps.h"

namespace vecdb {

void ComputeGroundTruth(Dataset* ds, size_t k, Metric metric,
                        ThreadPool* pool) {
  ds->ground_truth.assign(ds->num_queries, {});
  auto run = [&](size_t qbegin, size_t qend) {
    for (size_t q = qbegin; q < qend; ++q) {
      const float* query = ds->query_vector(q);
      KMaxHeap heap(k);
      for (size_t i = 0; i < ds->num_base; ++i) {
        const float dist =
            Distance(metric, query, ds->base_vector(i), ds->dim);
        heap.Push(dist, static_cast<int64_t>(i));
      }
      auto sorted = heap.TakeSorted();
      auto& gt = ds->ground_truth[q];
      gt.reserve(sorted.size());
      for (const auto& nb : sorted) gt.push_back(nb.id);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(ds->num_queries,
                      [&](int, size_t b, size_t e) { run(b, e); });
  } else {
    run(0, ds->num_queries);
  }
}

double RecallAtK(const std::vector<Neighbor>& results,
                 const std::vector<int64_t>& gt, size_t k) {
  const size_t depth = std::min({k, gt.size(), results.size()});
  if (depth == 0) return 0.0;
  std::unordered_set<int64_t> truth(gt.begin(), gt.begin() + depth);
  size_t hits = 0;
  for (size_t i = 0; i < std::min(k, results.size()); ++i) {
    if (truth.count(results[i].id) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(depth);
}

double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<int64_t>>& gt, size_t k) {
  if (results.empty() || results.size() != gt.size()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    total += RecallAtK(results[q], gt[q], k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace vecdb
