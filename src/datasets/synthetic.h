// Synthetic clustered dataset generation. Stands in for the paper's real
// embedding datasets (SIFT/GIST/DEEP/TURING), which are not available
// offline; dimensionality — the property that drives kernel and index cost —
// is matched exactly, and a mixture-of-Gaussians structure gives IVF/HNSW
// realistic cluster locality.
#pragma once

#include <cstdint>

#include "datasets/dataset.h"

namespace vecdb {

/// Parameters of the mixture-of-Gaussians generator.
struct SyntheticOptions {
  uint32_t dim = 128;
  size_t num_base = 10000;
  size_t num_queries = 100;
  /// Natural modes in the data; unrelated to any index's cluster count.
  uint32_t num_natural_clusters = 64;
  /// Within-mode standard deviation relative to unit mode centers.
  float cluster_stddev = 0.15f;
  uint64_t seed = 42;
};

/// Generates base vectors from a random Gaussian mixture and queries as
/// perturbed base members (so nearest neighbors are meaningful).
Dataset GenerateClustered(const SyntheticOptions& options);

}  // namespace vecdb
