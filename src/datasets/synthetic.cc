#include "datasets/synthetic.h"

#include <cstring>

#include "common/random.h"

namespace vecdb {

Dataset GenerateClustered(const SyntheticOptions& options) {
  Dataset ds;
  ds.name = "synthetic-d" + std::to_string(options.dim);
  ds.dim = options.dim;
  ds.num_base = options.num_base;
  ds.num_queries = options.num_queries;
  ds.base.Resize(options.num_base * options.dim);
  ds.queries.Resize(options.num_queries * options.dim);

  Rng rng(options.seed);
  const uint32_t modes = options.num_natural_clusters == 0
                             ? 1
                             : options.num_natural_clusters;

  // Mode centers on the unit hypercube scaled by dimension-stable factor.
  AlignedFloats centers(static_cast<size_t>(modes) * options.dim);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers[i] = rng.UniformFloat();
  }

  for (size_t i = 0; i < options.num_base; ++i) {
    const uint32_t m = static_cast<uint32_t>(rng.Uniform(modes));
    const float* c = centers.data() + static_cast<size_t>(m) * options.dim;
    float* x = ds.base.data() + i * options.dim;
    for (uint32_t t = 0; t < options.dim; ++t) {
      x[t] = c[t] + options.cluster_stddev * rng.Gaussian();
    }
  }

  // Queries: perturb random base vectors so each has near neighbors.
  for (size_t q = 0; q < options.num_queries; ++q) {
    const size_t pick = rng.Uniform(options.num_base);
    const float* x = ds.base.data() + pick * options.dim;
    float* out = ds.queries.data() + q * options.dim;
    for (uint32_t t = 0; t < options.dim; ++t) {
      out[t] = x[t] + 0.25f * options.cluster_stddev * rng.Gaussian();
    }
  }
  return ds;
}

}  // namespace vecdb
