#include "datasets/registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "datasets/synthetic.h"

namespace vecdb {

const std::vector<DatasetSpec>& PaperDatasets() {
  // Table I + Table II of the paper. pq_m values: 16 (SIFT1M/SIFT10M/DEEP1M),
  // 60 (GIST1M), 12 (DEEP10M), 10 (TURING10M). c: 1000 for the 1M sets,
  // 3162 (~sqrt(10M)) for the 10M sets.
  static const std::vector<DatasetSpec> kSpecs = {
      {"SIFT1M", 128, 1000000, 10000, 1000, 16},
      {"GIST1M", 960, 1000000, 1000, 1000, 60},
      {"DEEP1M", 256, 1000000, 1000, 1000, 16},
      {"SIFT10M", 128, 10000000, 10000, 3162, 16},
      {"DEEP10M", 96, 10000000, 10000, 3162, 12},
      {"TURING10M", 100, 10000000, 10000, 3162, 10},
  };
  return kSpecs;
}

const DatasetSpec* FindDataset(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  const std::string want = lower(name);
  for (const auto& spec : PaperDatasets()) {
    if (lower(spec.name) == want) return &spec;
  }
  return nullptr;
}

uint32_t ScaledClusterCount(const DatasetSpec& spec, double scale) {
  if (scale >= 1.0) return spec.paper_c;
  const double c = spec.paper_c * std::sqrt(scale);
  return std::max(16u, static_cast<uint32_t>(c));
}

Dataset MakePaperAnalog(const DatasetSpec& spec, double scale, uint64_t seed) {
  SyntheticOptions opt;
  opt.dim = spec.dim;
  opt.num_base = std::max<size_t>(
      1000, static_cast<size_t>(spec.paper_num_base * scale));
  opt.num_queries = std::clamp<size_t>(
      static_cast<size_t>(spec.paper_num_queries * scale), 16,
      spec.paper_num_queries);
  // Natural mode count tracks the IVF cluster regime loosely.
  opt.num_natural_clusters = std::max(16u, ScaledClusterCount(spec, scale) / 4);
  opt.seed = seed;
  Dataset ds = GenerateClustered(opt);
  ds.name = spec.name;
  return ds;
}

}  // namespace vecdb
