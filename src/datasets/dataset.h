// In-memory dataset container shared by tests, examples, and benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"

namespace vecdb {

/// A base set, a query set, and (optionally) exact ground truth.
struct Dataset {
  std::string name;
  uint32_t dim = 0;
  size_t num_base = 0;
  size_t num_queries = 0;
  AlignedFloats base;     ///< num_base * dim row-major floats
  AlignedFloats queries;  ///< num_queries * dim row-major floats

  /// ground_truth[q] holds the exact nearest ids for query q, ascending by
  /// distance; empty until ComputeGroundTruth is called.
  std::vector<std::vector<int64_t>> ground_truth;

  const float* base_vector(size_t i) const { return base.data() + i * dim; }
  const float* query_vector(size_t i) const {
    return queries.data() + i * dim;
  }
};

}  // namespace vecdb
