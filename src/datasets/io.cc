#include "datasets/io.h"

#include <cstdio>
#include <memory>

namespace vecdb {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Result<FvecsData> ReadFvecs(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  FvecsData out;
  std::vector<float> row;
  for (;;) {
    int32_t d = 0;
    const size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;  // clean EOF
    if (d <= 0) return Status::Corruption(path + ": non-positive dim");
    if (out.dim == 0) {
      out.dim = static_cast<uint32_t>(d);
    } else if (out.dim != static_cast<uint32_t>(d)) {
      return Status::Corruption(path + ": inconsistent dims");
    }
    row.resize(static_cast<size_t>(d));
    if (std::fread(row.data(), sizeof(float), row.size(), f.get()) !=
        row.size()) {
      return Status::Corruption(path + ": truncated record");
    }
    out.values.Append(row.data(), row.size());
    ++out.num;
  }
  return out;
}

Status WriteFvecs(const std::string& path, const float* data, size_t n,
                  uint32_t dim) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot create " + path);
  const int32_t d = static_cast<int32_t>(dim);
  for (size_t i = 0; i < n; ++i) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(data + i * dim, sizeof(float), dim, f.get()) != dim) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  std::vector<std::vector<int32_t>> rows;
  for (;;) {
    int32_t d = 0;
    const size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;
    if (d <= 0) return Status::Corruption(path + ": non-positive dim");
    std::vector<int32_t> row(static_cast<size_t>(d));
    if (std::fread(row.data(), sizeof(int32_t), row.size(), f.get()) !=
        row.size()) {
      return Status::Corruption(path + ": truncated record");
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot create " + path);
  for (const auto& row : rows) {
    const int32_t d = static_cast<int32_t>(row.size());
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) !=
            row.size()) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

}  // namespace vecdb
