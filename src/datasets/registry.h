// Registry of the paper's six benchmark datasets (Table I) with their
// Table II parameter defaults, plus synthetic-analog construction at a
// chosen scale. If the real fvecs files are available they can be loaded
// instead via datasets/io.h; all benchmarks consume a `Dataset` either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/dataset.h"

namespace vecdb {

/// Static description of one paper dataset and its default parameters.
struct DatasetSpec {
  std::string name;        ///< e.g. "SIFT1M"
  uint32_t dim;            ///< paper Table I dimensionality (kept exact)
  size_t paper_num_base;   ///< paper Table I vector count
  size_t paper_num_queries;
  uint32_t paper_c;        ///< Table II IVF cluster count for this dataset
  uint32_t pq_m;           ///< Table II number of PQ sub-vectors
};

/// The six datasets from the paper's Table I in paper order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Looks up a spec by (case-insensitive) name; nullptr if unknown.
const DatasetSpec* FindDataset(const std::string& name);

/// Materializes a synthetic analog of `spec` at `scale` (fraction of the
/// paper's base count, e.g. 0.06 -> 60k vectors for a 1M dataset). Query
/// count scales likewise but is clamped to [16, paper count]. The IVF
/// cluster count shrinks as sqrt(scale) to preserve the paper's
/// c = sqrt(n) regime; retrieve it via ScaledClusterCount.
Dataset MakePaperAnalog(const DatasetSpec& spec, double scale,
                        uint64_t seed = 42);

/// The Table II cluster count adjusted for a scaled-down analog.
uint32_t ScaledClusterCount(const DatasetSpec& spec, double scale);

}  // namespace vecdb
