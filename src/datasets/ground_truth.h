// Exact nearest-neighbor computation and recall measurement.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "datasets/dataset.h"
#include "distance/metric.h"
#include "topk/neighbor.h"

namespace vecdb {

/// Fills `ds->ground_truth` with the exact top-k ids per query by brute
/// force over the base set. `pool` (optional) parallelizes over queries.
void ComputeGroundTruth(Dataset* ds, size_t k, Metric metric,
                        ThreadPool* pool = nullptr);

/// Fraction of the exact top-k ids that appear in `results` (recall@k).
/// Uses min(k, |gt|, |results|) as the denominator guard.
double RecallAtK(const std::vector<Neighbor>& results,
                 const std::vector<int64_t>& gt, size_t k);

/// Mean recall@k across all queries of a result batch.
double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<int64_t>>& gt, size_t k);

}  // namespace vecdb
