// fvecs/ivecs readers and writers (the TEXMEX format SIFT1M/GIST1M ship in).
// If the real dataset files are present, benchmarks can run on them instead
// of the synthetic analogs.
#pragma once

#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"

namespace vecdb {

/// A matrix loaded from an fvecs file: n row-major d-dim float rows.
struct FvecsData {
  uint32_t dim = 0;
  size_t num = 0;
  AlignedFloats values;
};

/// Reads an .fvecs file (each record: int32 dim, then dim floats).
/// Fails with IOError if unreadable or Corruption on inconsistent dims.
Result<FvecsData> ReadFvecs(const std::string& path);

/// Writes row-major float vectors to an .fvecs file.
Status WriteFvecs(const std::string& path, const float* data, size_t n,
                  uint32_t dim);

/// Reads an .ivecs file (each record: int32 dim, then dim int32s), the
/// TEXMEX ground-truth format.
Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path);

/// Writes int32 rows to an .ivecs file (all rows must share `dim`).
Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows);

}  // namespace vecdb
