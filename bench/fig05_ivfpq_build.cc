// Fig 5: IVF_PQ index construction time, PASE vs Faiss, Table II
// parameters. Paper: Faiss wins by 6.5x-20.2x — same RC#1 story as Fig 3.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 5: IVF_PQ build time",
         "PASE 6.5x-20.2x slower than Faiss (RC#1)", args);

  TablePrinter table({"dataset", "engine", "train s", "add s", "total s",
                      "slowdown"},
                     {10, 16, 9, 9, 9, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfPqOptions fopt;
    fopt.num_clusters = bd.clusters;
    fopt.pq_m = bd.spec.pq_m;
    faisslike::IvfPqIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "faiss: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& fs = faiss_index.build_stats();

    PgEnv pg(FreshDir(args, "fig05_" + bd.spec.name));
    pase::PaseIvfPqOptions popt;
    popt.num_clusters = bd.clusters;
    popt.pq_m = bd.spec.pq_m;
    pase::PaseIvfPqIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "pase: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& ps = pase_index.build_stats();

    table.Row({bd.spec.name, "Faiss IVF_PQ",
               TablePrinter::Num(fs.train_seconds, 3),
               TablePrinter::Num(fs.add_seconds, 3),
               TablePrinter::Num(fs.total_seconds(), 3), "1.0x"});
    table.Row({bd.spec.name, "PASE IVF_PQ",
               TablePrinter::Num(ps.train_seconds, 3),
               TablePrinter::Num(ps.add_seconds, 3),
               TablePrinter::Num(ps.total_seconds(), 3),
               TablePrinter::Ratio(ps.total_seconds() / fs.total_seconds())});
    table.Separator();
  }
  std::printf("\nexpected shape: same direction as Fig 3 with a smaller "
              "factor (PQ encoding cost is shared by both engines).\n");
  return 0;
}
