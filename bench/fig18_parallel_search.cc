// Fig 18: intra-query parallel search with 1/2/4/8 threads on IVF_FLAT and
// IVF_PQ. Paper: Faiss scales well (local heaps merged lock-free); PASE
// does not (one global heap behind a lock — every insertion serializes,
// RC#3).
//
// The container has one core, so the harness reports the MODELED makespan:
// max per-worker busy time + serialized time measured by the engines'
// accounting (lock-held heap time is serialized for PASE, only the final
// merge for Faiss). See DESIGN.md §3.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

namespace {
/// When `batch` is set, the whole query block goes through one SearchBatch
/// call per thread count: the specialized engines then parallelize ACROSS
/// queries (one worker per query range, RC#3) instead of within one, and
/// bucket selection collapses into a single SGEMM per batch (RC#1).
void Sweep(const char* title, const VectorIndex& index, const Dataset& ds,
           size_t nq, uint32_t nprobe, bool batch) {
  std::printf("%s\n", title);
  TablePrinter table({"threads", "modeled ms/q", "speedup", "serial %"},
                     {8, 13, 8, 9});
  double base = 0;
  for (int threads : {1, 2, 4, 8}) {
    SearchParams params;
    params.k = 100;
    params.nprobe = nprobe;
    params.num_threads = threads;
    ParallelAccounting acct;
    acct.Reset(threads);
    params.ctx.accounting = &acct;
    if (batch) {
      if (!index.SearchBatch(ds.queries.data(), nq, params).ok()) return;
    } else {
      for (size_t q = 0; q < nq; ++q) {
        if (!index.Search(ds.query_vector(q), params).ok()) return;
      }
    }
    const double modeled = acct.ModeledSeconds() * 1e3 / nq;
    const double serial_share =
        acct.serial_nanos * 1e-9 / std::max(1e-12, acct.TotalWorkSeconds());
    if (threads == 1) base = modeled;
    table.Row({std::to_string(threads), TablePrinter::Num(modeled, 3),
               TablePrinter::Ratio(base / modeled),
               TablePrinter::Num(serial_share * 100.0, 1)});
  }
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner(args.batch ? "Fig 18 (--batch): inter-query parallel search"
                    : "Fig 18: intra-query parallel search",
         "Faiss scales with threads; PASE saturates on its locked global "
         "heap (RC#3)",
         args);

  for (auto& bd : LoadDatasets(args)) {
    const size_t nq = std::min(args.max_queries, bd.data.num_queries);
    std::printf("--- %s (n=%zu, nprobe=20%s) ---\n\n", bd.spec.name.c_str(),
                bd.data.num_base, args.batch ? ", batched" : "");

    faisslike::IvfFlatOptions ff;
    ff.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_flat(bd.data.dim, ff);
    if (!faiss_flat.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    Sweep("(a) Faiss IVF_FLAT", faiss_flat, bd.data, nq, 20, args.batch);

    PgEnv pg(FreshDir(args, "fig18_" + bd.spec.name));
    pase::PaseIvfFlatOptions pf;
    pf.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_flat(pg.env(), bd.data.dim, pf);
    if (!pase_flat.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    Sweep("(b) PASE IVF_FLAT", pase_flat, bd.data, nq, 20, args.batch);

    faisslike::IvfPqOptions fq;
    fq.num_clusters = bd.clusters;
    fq.pq_m = bd.spec.pq_m;
    faisslike::IvfPqIndex faiss_pq(bd.data.dim, fq);
    if (!faiss_pq.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;
    Sweep("(c) Faiss IVF_PQ", faiss_pq, bd.data, nq, 20, args.batch);

    pase::PaseIvfPqOptions pq;
    pq.num_clusters = bd.clusters;
    pq.pq_m = bd.spec.pq_m;
    pq.rel_prefix = "pase_pq18";
    pase::PaseIvfPqIndex pase_pq(pg.env(), bd.data.dim, pq);
    if (!pase_pq.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;
    Sweep("(d) PASE IVF_PQ", pase_pq, bd.data, nq, 20, args.batch);
  }
  std::printf("expected shape: Faiss speedup approaches the thread count; "
              "PASE's saturates as the serialized share grows.\n");
  return 0;
}
