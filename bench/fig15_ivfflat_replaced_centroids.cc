// Fig 15: IVF_FLAT search with replaced centroids ("Faiss*"): Faiss is fed
// the centroids and clustering PASE produced, isolating the K-means
// difference (RC#5). Paper: the PASE-vs-Faiss* gap is smaller than the
// PASE-vs-Faiss gap of Fig 14.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 15: IVF_FLAT search with transplanted centroids (Faiss*)",
         "with PASE's centroids inside Faiss, the gap shrinks (RC#5 "
         "isolated)",
         args);

  TablePrinter table({"dataset", "Faiss ms", "Faiss* ms", "PASE ms",
                      "PASE/Faiss", "PASE/Faiss*"},
                     {10, 10, 10, 10, 11, 11});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    PgEnv pg(FreshDir(args, "fig15_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    // Faiss*: PASE's codebook transplanted into the specialized engine.
    faisslike::IvfFlatIndex faiss_star(bd.data.dim, fopt);
    if (!faiss_star
             .SetCentroids(pase_index.centroids(), pase_index.num_clusters())
             .ok() ||
        !faiss_star.AddBatch(bd.data.base.data(), bd.data.num_base).ok()) {
      return 1;
    }

    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    auto f = std::move(RunSearchBatch(faiss_index, bd.data, params,
                                      args.max_queries))
                 .ValueOrDie();
    auto fs = std::move(RunSearchBatch(faiss_star, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    auto p = std::move(RunSearchBatch(pase_index, bd.data, params,
                                      args.max_queries))
                 .ValueOrDie();
    table.Row({bd.spec.name, TablePrinter::Num(f.avg_millis, 3),
               TablePrinter::Num(fs.avg_millis, 3),
               TablePrinter::Num(p.avg_millis, 3),
               TablePrinter::Ratio(p.avg_millis / f.avg_millis),
               TablePrinter::Ratio(p.avg_millis / fs.avg_millis)});
  }
  std::printf("\nexpected shape: PASE/Faiss* <= PASE/Faiss on most "
              "datasets — part of Fig 14's gap was clustering quality, the "
              "rest is substrate overhead (RC#2, RC#6).\n");
  return 0;
}
