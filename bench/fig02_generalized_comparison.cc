// Fig 2: query time across open-source generalized vector databases. The
// paper uses this to justify picking PASE ("highest performance among all
// open-sourced generalized vector databases"); we reproduce the ordering
// with the PASE-like engine and its pgvector-mode variant (per-tuple
// operator dispatch + full ORDER BY sort instead of heap selection).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 2: generalized vector databases, IVF_FLAT query time",
         "PASE is the fastest open-source generalized vector database",
         args);

  TablePrinter table({"dataset", "system", "avg ms", "recall@100",
                      "vs PASE"},
                     {10, 16, 10, 10, 8});
  for (auto& bd : LoadDatasets(args)) {
    ComputeGroundTruth(&bd.data, 100, Metric::kL2);

    PgEnv pg(FreshDir(args, "fig02_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    popt.rel_prefix = "pase";
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    popt.pgvector_mode = true;
    popt.rel_prefix = "pgvector";
    pase::PaseIvfFlatIndex pgvector_index(pg.env(), bd.data.dim, popt);
    if (Status s =
            pgvector_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }

    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    // --batch drives the block-submission path; both PASE variants use the
    // one-statement-at-a-time fallback (PostgreSQL has no multi-query
    // executor), so results are unchanged and timings stay comparable.
    auto runner = args.batch ? RunSearchBatched : RunSearchBatch;
    auto pase_run = std::move(runner(pase_index, bd.data, params,
                                     args.max_queries))
                        .ValueOrDie();
    auto pgv_run = std::move(runner(pgvector_index, bd.data, params,
                                    args.max_queries))
                       .ValueOrDie();
    table.Row({bd.spec.name, "PASE",
               TablePrinter::Num(pase_run.avg_millis, 3),
               TablePrinter::Num(pase_run.recall_at_k, 3), "1.0x"});
    table.Row({bd.spec.name, "pgvector-like",
               TablePrinter::Num(pgv_run.avg_millis, 3),
               TablePrinter::Num(pgv_run.recall_at_k, 3),
               TablePrinter::Ratio(pgv_run.avg_millis /
                                   pase_run.avg_millis)});
    table.Separator();
  }
  std::printf("\nexpected shape: PASE faster than the pgvector-like "
              "executor on every dataset.\n");
  return 0;
}
