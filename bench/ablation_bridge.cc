// Ablation (our extension of the paper's §IX-C): walk the generalized
// IVF_FLAT from PASE-equivalent to Faiss-equivalent by enabling the
// guideline fixes one at a time, measuring build and search after each
// step. This is the constructive proof behind the paper's headline claim:
// every root cause is an implementation issue that an engineering fix
// removes.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Bridge ablation: PASE -> Faiss one fix at a time",
         "§IX-C guidelines close the gap (no fundamental limitation)",
         args);

  struct Step {
    const char* name;
    void (*apply)(bridge::BridgedIvfFlatOptions*);
  };
  const Step steps[] = {
      {"baseline (PASE-equivalent)", [](bridge::BridgedIvfFlatOptions*) {}},
      {"+ Step#5 Faiss K-means (RC#5)",
       [](bridge::BridgedIvfFlatOptions* o) { o->faiss_kmeans = true; }},
      {"+ Step#2 SGEMM (RC#1)",
       [](bridge::BridgedIvfFlatOptions* o) { o->use_sgemm = true; }},
      {"+ Step#3 k-heap (RC#6)",
       [](bridge::BridgedIvfFlatOptions* o) { o->k_heap = true; }},
      {"+ Step#1 memory table (RC#2)",
       [](bridge::BridgedIvfFlatOptions* o) { o->memory_table = true; }},
      {"+ Step#4 local heaps (RC#3)",
       [](bridge::BridgedIvfFlatOptions* o) { o->local_heaps = true; }},
  };

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu, c=%u) ---\n", bd.spec.name.c_str(),
                bd.data.num_base, bd.clusters);

    // Reference: the specialized engine on the same data.
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    auto faiss_run = std::move(RunSearchBatch(faiss_index, bd.data, params,
                                              args.max_queries))
                         .ValueOrDie();

    TablePrinter table({"configuration", "build s", "search ms",
                        "vs Faiss"},
                       {34, 9, 10, 9});
    bridge::BridgedIvfFlatOptions opt;
    opt.num_clusters = bd.clusters;
    opt.memory_table = false;
    opt.use_sgemm = false;
    opt.k_heap = false;
    opt.local_heaps = false;
    opt.faiss_kmeans = false;
    int step_id = 0;
    for (const auto& step : steps) {
      step.apply(&opt);
      opt.rel_prefix = "ablate_" + std::to_string(step_id);
      PgEnv pg(FreshDir(args, "ablation_" + bd.spec.name + "_" +
                                  std::to_string(step_id)));
      bridge::BridgedIvfFlatIndex index(pg.env(), bd.data.dim, opt);
      if (Status s = index.Build(bd.data.base.data(), bd.data.num_base);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      auto run = std::move(RunSearchBatch(index, bd.data, params,
                                          args.max_queries))
                     .ValueOrDie();
      table.Row({step.name,
                 TablePrinter::Num(index.build_stats().total_seconds(), 3),
                 TablePrinter::Num(run.avg_millis, 3),
                 TablePrinter::Ratio(run.avg_millis / faiss_run.avg_millis)});
      ++step_id;
    }
    table.Separator();
    table.Row({"Faiss (specialized reference)",
               TablePrinter::Num(faiss_index.build_stats().total_seconds(),
                                 3),
               TablePrinter::Num(faiss_run.avg_millis, 3), "1.0x"});
    std::printf("\n");
  }
  std::printf("expected shape: search converges to ~1x of Faiss by the "
              "final row, with Step#2 collapsing build time and Step#1 "
              "collapsing search time.\n");
  return 0;
}
