// Fig 16: IVF_PQ average query time. Paper: PASE 3.9x-11.2x slower — the
// new factor on top of Fig 14's causes is the naive precomputed distance
// table (RC#7).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 16: IVF_PQ search time",
         "PASE 3.9x-11.2x slower than Faiss (RC#7 on top of RC#2/5/6)",
         args);

  TablePrinter table({"dataset", "Faiss ms", "PASE ms", "slowdown"},
                     {10, 10, 10, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfPqOptions fopt;
    fopt.num_clusters = bd.clusters;
    fopt.pq_m = bd.spec.pq_m;
    faisslike::IvfPqIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    PgEnv pg(FreshDir(args, "fig16_" + bd.spec.name));
    pase::PaseIvfPqOptions popt;
    popt.num_clusters = bd.clusters;
    popt.pq_m = bd.spec.pq_m;
    pase::PaseIvfPqIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    auto fr = std::move(RunSearchBatch(faiss_index, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    auto pr = std::move(RunSearchBatch(pase_index, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    table.Row({bd.spec.name, TablePrinter::Num(fr.avg_millis, 3),
               TablePrinter::Num(pr.avg_millis, 3),
               TablePrinter::Ratio(pr.avg_millis / fr.avg_millis)});
  }
  std::printf("\nexpected shape: larger slowdowns than Fig 14, biggest on "
              "high-dimensional datasets where the naive per-query table "
              "(m*c_pq kernel calls) costs most.\n");
  return 0;
}
