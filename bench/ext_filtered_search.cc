// Extension (beyond the paper's figures): filtered vector search — the
// selectivity x strategy cost surface that motivates the planner's
// crossover thresholds. For each selectivity in {0.001 .. 1.0} the three
// strategies run over the same prefix selection; the planner's auto choice
// is printed alongside so its crossovers can be eyeballed against the
// measured minimum.
#include <chrono>

#include "bench/bench_common.h"
#include "filter/selection.h"
#include "filter/strategy.h"

using namespace vecdb;
using namespace vecdb::bench;

namespace {

filter::SelectionVector PrefixSelection(size_t n, double sel) {
  filter::SelectionVector out(n);
  const size_t matches = static_cast<size_t>(sel * static_cast<double>(n));
  for (size_t i = 0; i < matches; ++i) out.Set(i);
  return out;
}

/// Average FilteredSearch latency over the query block (one warm-up query
/// precedes timing, matching RunSearchBatch's methodology).
double AvgMillis(const VectorIndex& index, const Dataset& ds,
                 const FilterRequest& req, const SearchParams& params,
                 size_t max_queries) {
  const size_t nq = max_queries == 0
                        ? ds.num_queries
                        : std::min(ds.num_queries, max_queries);
  (void)index.FilteredSearch(ds.query_vector(0), req, params);
  const auto start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < nq; ++q) {
    auto result = index.FilteredSearch(ds.query_vector(q), req, params);
    if (!result.ok()) return -1.0;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         static_cast<double>(nq);
}

void Sweep(const VectorIndex& index, const Dataset& ds,
           const SearchParams& params, size_t max_queries) {
  std::printf("%s\n", index.Describe().c_str());
  TablePrinter table({"selectivity", "prefilter ms", "infilter ms",
                      "postfilter ms", "auto ms", "auto picks"},
                     {11, 13, 12, 14, 9, 11});
  for (double sel : {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const filter::SelectionVector selection =
        PrefixSelection(index.NumVectors(), sel);
    std::vector<std::string> cells = {TablePrinter::Num(sel, 3)};
    for (filter::FilterStrategy strategy :
         {filter::FilterStrategy::kPreFilter,
          filter::FilterStrategy::kInFilter,
          filter::FilterStrategy::kPostFilter,
          filter::FilterStrategy::kAuto}) {
      FilterRequest req;
      req.selection = &selection;
      req.strategy = strategy;
      cells.push_back(TablePrinter::Num(
          AvgMillis(index, ds, req, params, max_queries), 3));
    }
    cells.push_back(filter::StrategyName(
        filter::ChooseStrategy(sel, params.k, index.NumVectors())));
    table.Row(cells);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Extension: filtered search (selectivity x strategy sweep)",
         "filtered ANN cost is strategy-dependent; the crossover points "
         "justify the planner thresholds",
         args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu, dim=%u, c=%u) ---\n", bd.spec.name.c_str(),
                bd.data.num_base, bd.data.dim, bd.clusters);

    SearchParams params;
    params.k = 10;
    params.nprobe = std::max<uint32_t>(1, bd.clusters / 10);
    params.efs = 100;

    faisslike::IvfFlatOptions flat;
    flat.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex flat_index(bd.data.dim, flat);
    if (!flat_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    Sweep(flat_index, bd.data, params, args.max_queries);

    faisslike::HnswOptions hnsw;
    faisslike::HnswIndex hnsw_index(bd.data.dim, hnsw);
    if (!hnsw_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    Sweep(hnsw_index, bd.data, params, args.max_queries);
  }
  std::printf(
      "expected shape: prefilter wins at low selectivity (survivor scan "
      "beats any traversal), infilter in the mid band, postfilter near "
      "1.0 where amplification is negligible.\n");
  return 0;
}
