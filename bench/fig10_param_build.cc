// Fig 10: impact of index parameters on the build-time gap on SIFT1M —
// c in {100, 500, 1000} for IVF_FLAT/IVF_PQ and bnn in {16, 32, 64} for
// HNSW. Paper: the gap widens as c and bnn grow.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Fig 10: build-time gap vs parameters (SIFT1M)",
         "gap grows with c (IVF_*) and with bnn (HNSW)", args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu) ---\n", bd.spec.name.c_str(),
                bd.data.num_base);

    std::printf("(a) IVF_FLAT, varying c\n");
    TablePrinter t1({"c", "Faiss s", "PASE s", "slowdown"}, {6, 9, 9, 9});
    for (uint32_t c : {100u, 500u, 1000u}) {
      const uint32_t cc =
          std::min<uint32_t>(c, static_cast<uint32_t>(bd.data.num_base / 4));
      faisslike::IvfFlatOptions fopt;
      fopt.num_clusters = cc;
      faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
      if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
        return 1;
      PgEnv pg(FreshDir(args, "fig10a_" + std::to_string(c)));
      pase::PaseIvfFlatOptions popt;
      popt.num_clusters = cc;
      pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
      if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
        return 1;
      const double ft = faiss_index.build_stats().total_seconds();
      const double pt = pase_index.build_stats().total_seconds();
      t1.Row({std::to_string(cc), TablePrinter::Num(ft, 3),
              TablePrinter::Num(pt, 3), TablePrinter::Ratio(pt / ft)});
    }

    std::printf("\n(b) IVF_PQ, varying c\n");
    TablePrinter t2({"c", "Faiss s", "PASE s", "slowdown"}, {6, 9, 9, 9});
    for (uint32_t c : {100u, 500u, 1000u}) {
      const uint32_t cc =
          std::min<uint32_t>(c, static_cast<uint32_t>(bd.data.num_base / 4));
      faisslike::IvfPqOptions fopt;
      fopt.num_clusters = cc;
      fopt.pq_m = bd.spec.pq_m;
      faisslike::IvfPqIndex faiss_index(bd.data.dim, fopt);
      if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
        return 1;
      PgEnv pg(FreshDir(args, "fig10b_" + std::to_string(c)));
      pase::PaseIvfPqOptions popt;
      popt.num_clusters = cc;
      popt.pq_m = bd.spec.pq_m;
      pase::PaseIvfPqIndex pase_index(pg.env(), bd.data.dim, popt);
      if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
        return 1;
      const double ft = faiss_index.build_stats().total_seconds();
      const double pt = pase_index.build_stats().total_seconds();
      t2.Row({std::to_string(cc), TablePrinter::Num(ft, 3),
              TablePrinter::Num(pt, 3), TablePrinter::Ratio(pt / ft)});
    }

    std::printf("\n(c) HNSW, varying bnn\n");
    TablePrinter t3({"bnn", "Faiss s", "PASE s", "slowdown"}, {6, 9, 9, 9});
    for (uint32_t bnn : {16u, 32u, 64u}) {
      faisslike::HnswOptions fopt;
      fopt.bnn = bnn;
      fopt.efb = 40;
      faisslike::HnswIndex faiss_index(bd.data.dim, fopt);
      if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
        return 1;
      PgEnv pg(FreshDir(args, "fig10c_" + std::to_string(bnn)));
      pase::PaseHnswOptions popt;
      popt.bnn = bnn;
      popt.efb = 40;
      pase::PaseHnswIndex pase_index(pg.env(), bd.data.dim, popt);
      if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
        return 1;
      const double ft = faiss_index.build_stats().total_seconds();
      const double pt = pase_index.build_stats().total_seconds();
      t3.Row({std::to_string(bnn), TablePrinter::Num(ft, 2),
              TablePrinter::Num(pt, 2), TablePrinter::Ratio(pt / ft)});
    }
    std::printf("\n");
  }
  std::printf("expected shape: the slowdown column grows down each table.\n");
  return 0;
}
