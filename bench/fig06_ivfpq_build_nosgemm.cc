// Fig 6: IVF_PQ build with SGEMM disabled in Faiss. Paper: the gap becomes
// negligible; what remains is the K-means/PQ implementation difference.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 6: IVF_PQ build time with SGEMM disabled in Faiss",
         "gap is negligible without SGEMM", args);

  TablePrinter table({"dataset", "engine", "train s", "add s", "total s",
                      "slowdown"},
                     {10, 22, 9, 9, 9, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfPqOptions fopt;
    fopt.num_clusters = bd.clusters;
    fopt.pq_m = bd.spec.pq_m;
    fopt.use_sgemm = false;  // the Fig 6 switch
    faisslike::IvfPqIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "faiss: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& fs = faiss_index.build_stats();

    PgEnv pg(FreshDir(args, "fig06_" + bd.spec.name));
    pase::PaseIvfPqOptions popt;
    popt.num_clusters = bd.clusters;
    popt.pq_m = bd.spec.pq_m;
    pase::PaseIvfPqIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "pase: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& ps = pase_index.build_stats();

    table.Row({bd.spec.name, "Faiss w/o SGEMM",
               TablePrinter::Num(fs.train_seconds, 3),
               TablePrinter::Num(fs.add_seconds, 3),
               TablePrinter::Num(fs.total_seconds(), 3), "1.0x"});
    table.Row({bd.spec.name, "PASE IVF_PQ",
               TablePrinter::Num(ps.train_seconds, 3),
               TablePrinter::Num(ps.add_seconds, 3),
               TablePrinter::Num(ps.total_seconds(), 3),
               TablePrinter::Ratio(ps.total_seconds() / fs.total_seconds())});
    table.Separator();
  }
  std::printf("\nexpected shape: slowdown close to 1x (compare Fig 5).\n");
  return 0;
}
