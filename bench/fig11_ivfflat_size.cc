// Fig 11: IVF_FLAT index size, PASE vs Faiss. Paper: almost the same —
// the IVF page layout aligns well with the memory representation.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 11: IVF_FLAT index size",
         "sizes are nearly identical (sequential page layout aligns with "
         "memory layout)",
         args);

  TablePrinter table({"dataset", "Faiss size", "PASE size", "ratio"},
                     {10, 12, 12, 8});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    PgEnv pg(FreshDir(args, "fig11_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    table.Row({bd.spec.name, TablePrinter::Megabytes(faiss_index.SizeBytes()),
               TablePrinter::Megabytes(pase_index.SizeBytes()),
               TablePrinter::Ratio(
                   static_cast<double>(pase_index.SizeBytes()) /
                   static_cast<double>(faiss_index.SizeBytes()))});
  }
  std::printf("\nexpected shape: ratio near 1x on every dataset (page "
              "headers and partially filled chain tails add a few "
              "percent).\n");
  return 0;
}
