// Fig 4: IVF_FLAT build with SGEMM disabled in Faiss ("use the same code
// as in PASE"). Paper: the adding-phase gap vanishes; a minor training gap
// remains from the different K-means implementations (RC#5).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 4: IVF_FLAT build time with SGEMM disabled in Faiss",
         "without SGEMM the Faiss adding phase matches PASE", args);

  TablePrinter table({"dataset", "engine", "train s", "add s", "total s",
                      "slowdown"},
                     {10, 22, 9, 9, 9, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    fopt.use_sgemm = false;  // the Fig 4 switch
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const auto& fs = faiss_index.build_stats();

    PgEnv pg(FreshDir(args, "fig04_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const auto& ps = pase_index.build_stats();

    table.Row({bd.spec.name, "Faiss w/o SGEMM",
               TablePrinter::Num(fs.train_seconds, 3),
               TablePrinter::Num(fs.add_seconds, 3),
               TablePrinter::Num(fs.total_seconds(), 3), "1.0x"});
    table.Row({bd.spec.name, "PASE IVF_FLAT",
               TablePrinter::Num(ps.train_seconds, 3),
               TablePrinter::Num(ps.add_seconds, 3),
               TablePrinter::Num(ps.total_seconds(), 3),
               TablePrinter::Ratio(ps.total_seconds() / fs.total_seconds())});
    table.Separator();
  }
  std::printf("\nexpected shape: slowdown close to 1x (compare Fig 3); the "
              "residual gap is the K-means difference (RC#5) and page "
              "appends.\n");
  return 0;
}
