// Table V: time breakdown of IVF_FLAT search on SIFT1M — fvec_L2sqr /
// Tuple Access / Min-heap / Others. Paper: Faiss spends 94.96% of its time
// on distance computation; PASE only 54.80%, losing the rest to tuple
// access (23.5%) and its n-sized min-heap (13.4%).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Table V: IVF_FLAT search breakdown",
         "PASE: 54.8% distance / 23.5% tuple access / 13.4% min-heap; "
         "Faiss: 95% distance",
         args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu) ---\n", bd.spec.name.c_str(),
                bd.data.num_base);
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    PgEnv pg(FreshDir(args, "tab05_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    const size_t nq = std::min(args.max_queries, bd.data.num_queries);

    Profiler faiss_prof, pase_prof;
    Timer faiss_timer;
    for (size_t q = 0; q < nq; ++q) {
      params.ctx.profiler = &faiss_prof;
      if (!faiss_index.Search(bd.data.query_vector(q), params).ok())
        return 1;
    }
    const int64_t faiss_total = faiss_timer.ElapsedNanos();
    Timer pase_timer;
    for (size_t q = 0; q < nq; ++q) {
      params.ctx.profiler = &pase_prof;
      if (!pase_index.Search(bd.data.query_vector(q), params).ok()) return 1;
    }
    const int64_t pase_total = pase_timer.ElapsedNanos();

    PrintBreakdown("PASE IVF_FLAT search", pase_prof,
                   {"fvec_L2sqr", "TupleAccess", "MinHeap"}, pase_total);
    PrintBreakdown("Faiss IVF_FLAT search", faiss_prof,
                   {"fvec_L2sqr", "TupleAccess", "MinHeap"}, faiss_total);
    std::printf("per-query absolute: PASE %.2f ms vs Faiss %.2f ms "
                "(paper: 8.56 ms vs 3.14 ms)\n\n",
                pase_total * 1e-6 / nq, faiss_total * 1e-6 / nq);
  }
  return 0;
}
