// Fig 17: HNSW average query time (efs=200). Paper: PASE 2.2x-7.3x slower,
// almost entirely tuple access (RC#2) — per-distance cost is equal.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;
  Banner("Fig 17: HNSW search time",
         "PASE 2.2x-7.3x slower; tuple access dominates (RC#2)", args);

  TablePrinter table({"dataset", "Faiss ms", "PASE ms", "slowdown"},
                     {10, 10, 10, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::HnswOptions fopt;
    fopt.bnn = 16;
    fopt.efb = 40;
    faisslike::HnswIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    PgEnv pg(FreshDir(args, "fig17_" + bd.spec.name));
    pase::PaseHnswOptions popt;
    popt.bnn = 16;
    popt.efb = 40;
    pase::PaseHnswIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    SearchParams params;
    params.k = 100;
    params.efs = 200;
    auto fr = std::move(RunSearchBatch(faiss_index, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    auto pr = std::move(RunSearchBatch(pase_index, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    table.Row({bd.spec.name, TablePrinter::Num(fr.avg_millis, 3),
               TablePrinter::Num(pr.avg_millis, 3),
               TablePrinter::Ratio(pr.avg_millis / fr.avg_millis)});
  }
  std::printf("\nexpected shape: PASE a small multiple slower on every "
              "dataset.\n");
  return 0;
}
