// Fig 3: IVF_FLAT index construction time, PASE vs Faiss, on the six
// datasets with the Table II parameters, split into training and adding
// phases. Paper: PASE is 35.0x-84.8x slower, driven by SGEMM (RC#1).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 3: IVF_FLAT build time",
         "PASE 35.0x-84.8x slower than Faiss; adding phase dominates", args);

  TablePrinter table({"dataset", "engine", "train s", "add s", "total s",
                      "slowdown"},
                     {10, 18, 9, 9, 9, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const auto& fs = faiss_index.build_stats();

    PgEnv pg(FreshDir(args, "fig03_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const auto& ps = pase_index.build_stats();

    table.Row({bd.spec.name, "Faiss IVF_FLAT", TablePrinter::Num(fs.train_seconds, 3),
               TablePrinter::Num(fs.add_seconds, 3),
               TablePrinter::Num(fs.total_seconds(), 3), "1.0x"});
    table.Row({bd.spec.name, "PASE IVF_FLAT",
               TablePrinter::Num(ps.train_seconds, 3),
               TablePrinter::Num(ps.add_seconds, 3),
               TablePrinter::Num(ps.total_seconds(), 3),
               TablePrinter::Ratio(ps.total_seconds() / fs.total_seconds())});
    table.Separator();
  }
  std::printf("\nexpected shape: PASE total >> Faiss total on every dataset; "
              "the adding phase dominates both.\n");
  return 0;
}
