// Table IV: PASE HNSW index size at 8KB vs 4KB pages, on the 1M datasets.
// Paper: halving the page size (8333->4464 MB on SIFT1M etc.) confirms
// that page-per-adjacency-list rounding dominates the footprint.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 15000;
  if (args.datasets.empty()) args.datasets = {"SIFT1M", "GIST1M", "DEEP1M"};
  Banner("Table IV: PASE HNSW index size vs page size",
         "4KB pages nearly halve the index (page rounding dominates)",
         args);

  TablePrinter table({"dataset", "8KB pages", "4KB pages", "shrink"},
                     {10, 12, 12, 8});
  for (auto& bd : LoadDatasets(args)) {
    size_t sizes[2] = {0, 0};
    const uint32_t page_sizes[2] = {8192, 4096};
    for (int i = 0; i < 2; ++i) {
      PgEnv pg(FreshDir(args, "tab04_" + bd.spec.name + "_" +
                                  std::to_string(page_sizes[i])),
               page_sizes[i],
               /*pool_pages=*/1u << 18);
      pase::PaseHnswOptions opt;
      opt.bnn = 16;
      opt.efb = 40;
      pase::PaseHnswIndex index(pg.env(), bd.data.dim, opt);
      if (Status s = index.Build(bd.data.base.data(), bd.data.num_base);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      sizes[i] = index.SizeBytes();
    }
    table.Row({bd.spec.name, TablePrinter::Megabytes(sizes[0]),
               TablePrinter::Megabytes(sizes[1]),
               TablePrinter::Ratio(static_cast<double>(sizes[0]) /
                                   static_cast<double>(sizes[1]))});
  }
  std::printf("\nexpected shape: shrink close to 2x, slightly less where "
              "vector tuples (not adjacency pages) dominate.\n");
  return 0;
}
