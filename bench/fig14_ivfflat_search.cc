// Fig 14: IVF_FLAT average query time on the six datasets (k=100,
// nprobe=20). Paper: PASE 2.0x-3.4x slower than Faiss, due to K-means
// quality (RC#5), tuple access (RC#2), and the n-sized heap (RC#6).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 14: IVF_FLAT search time",
         "PASE 2.0x-3.4x slower than Faiss", args);

  TablePrinter table({"dataset", "Faiss ms", "PASE ms", "slowdown",
                      "recall F", "recall P"},
                     {10, 10, 10, 9, 9, 9});
  for (auto& bd : LoadDatasets(args)) {
    ComputeGroundTruth(&bd.data, 100, Metric::kL2);
    faisslike::IvfFlatOptions fopt;
    fopt.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    PgEnv pg(FreshDir(args, "fig14_" + bd.spec.name));
    pase::PaseIvfFlatOptions popt;
    popt.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    auto fr = std::move(RunSearchBatch(faiss_index, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    auto pr = std::move(RunSearchBatch(pase_index, bd.data, params,
                                       args.max_queries))
                  .ValueOrDie();
    table.Row({bd.spec.name, TablePrinter::Num(fr.avg_millis, 3),
               TablePrinter::Num(pr.avg_millis, 3),
               TablePrinter::Ratio(pr.avg_millis / fr.avg_millis),
               TablePrinter::Num(fr.recall_at_k, 3),
               TablePrinter::Num(pr.recall_at_k, 3)});
  }
  std::printf("\nexpected shape: PASE a small multiple slower on every "
              "dataset; recalls differ slightly because the K-means "
              "implementations differ (RC#5).\n");
  return 0;
}
