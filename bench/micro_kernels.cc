// google-benchmark micro benches over the kernels the root causes hinge on:
// per-pair vs SGEMM-decomposed distance batches (RC#1), k-heap vs n-heap
// (RC#6), naive vs optimized PQ tables (RC#7), and direct vs page-mediated
// tuple access (RC#2).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "distance/dispatch.h"
#include "distance/kernels.h"
#include "distance/sgemm.h"
#include "faisslike/ivf_flat.h"
#include "obs/metrics.h"
#include "pgstub/bufmgr.h"
#include "pgstub/crc32c.h"
#include "pgstub/heap_table.h"
#include "pgstub/wal.h"
#include "quantizer/pq.h"
#include "quantizer/sq8.h"
#include "topk/heaps.h"

namespace vecdb {
namespace {

std::vector<float> RandomVectors(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * d);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

void BM_L2SqrSingle(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  auto data = RandomVectors(2, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sqr(data.data(), data.data() + d, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2SqrSingle)->Arg(96)->Arg(128)->Arg(256)->Arg(960);

// --- Per-ISA kernel tiers -------------------------------------------------
// range(0) selects the tier (KernelIsa value); unsupported tiers skip, so
// one binary covers every host. Pair with BENCH_kernels.json, which records
// the same measurements machine-readably.

const KernelDispatch* TierOrSkip(benchmark::State& state) {
  const auto isa = static_cast<KernelIsa>(state.range(0));
  const KernelDispatch* t = KernelTableFor(isa);
  if (t == nullptr) {
    state.SkipWithError("ISA tier not supported on this host");
    return nullptr;
  }
  state.SetLabel(KernelIsaName(isa));
  return t;
}

void BM_L2SqrTier(benchmark::State& state) {
  const KernelDispatch* t = TierOrSkip(state);
  if (t == nullptr) return;
  const size_t d = static_cast<size_t>(state.range(1));
  auto data = RandomVectors(2, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t->l2sqr(data.data(), data.data() + d, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2SqrTier)->ArgsProduct({{0, 1, 2}, {128, 960}});

void BM_InnerProductTier(benchmark::State& state) {
  const KernelDispatch* t = TierOrSkip(state);
  if (t == nullptr) return;
  const size_t d = static_cast<size_t>(state.range(1));
  auto data = RandomVectors(2, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t->inner_product(data.data(), data.data() + d, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InnerProductTier)->ArgsProduct({{0, 1, 2}, {128}});

void BM_CosineTier(benchmark::State& state) {
  // Fused single-pass cosine per tier (the pre-dispatch code walked the
  // vectors three times).
  const KernelDispatch* t = TierOrSkip(state);
  if (t == nullptr) return;
  const size_t d = static_cast<size_t>(state.range(1));
  auto data = RandomVectors(2, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t->cosine(data.data(), data.data() + d, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CosineTier)->ArgsProduct({{0, 1, 2}, {128}});

void BM_DistanceBatchTier(benchmark::State& state) {
  // The bucket-scan shape: one query against n contiguous vectors.
  const KernelDispatch* t = TierOrSkip(state);
  if (t == nullptr) return;
  const size_t d = static_cast<size_t>(state.range(1)), n = 1024;
  auto base = RandomVectors(n, d, 2);
  auto query = RandomVectors(1, d, 3);
  std::vector<float> dists(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      dists[i] = t->l2sqr(query.data(), base.data() + i * d, d);
    }
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DistanceBatchTier)->ArgsProduct({{0, 1, 2}, {128}});

// --- SQ8 fast scan --------------------------------------------------------

struct Sq8BenchSetup {
  ScalarQuantizer8 sq;
  Sq8CodeStore store;
  std::vector<float> query;

  static Sq8BenchSetup Make(size_t n, size_t d) {
    auto data = RandomVectors(n, d, 21);
    Sq8BenchSetup out{
        ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie(),
        Sq8CodeStore{},
        RandomVectors(1, d, 22)};
    out.store.Reset(d);
    std::vector<uint8_t> code(d);
    for (size_t i = 0; i < n; ++i) {
      out.sq.Encode(data.data() + i * d, code.data());
      out.store.Append(code.data(), static_cast<int64_t>(i));
    }
    return out;
  }
};

void BM_Sq8PerCode(benchmark::State& state) {
  // Baseline: decode-on-the-fly distance, one code at a time — the
  // pre-fast-scan IVF_SQ8 bucket loop.
  const size_t d = static_cast<size_t>(state.range(0)), n = 1024;
  auto setup = Sq8BenchSetup::Make(n, d);
  std::vector<float> dists(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      dists[i] = setup.sq.DistanceToCode(setup.query.data(),
                                         setup.store.code_at(i));
    }
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sq8PerCode)->Arg(128);

void BM_Sq8FastScanTier(benchmark::State& state) {
  // Blocked fast scan per tier: query pre-expanded once, codes widened in
  // integer SIMD lanes, one kernel call per bucket.
  const KernelDispatch* t = TierOrSkip(state);
  if (t == nullptr) return;
  const size_t d = static_cast<size_t>(state.range(1)), n = 1024;
  auto setup = Sq8BenchSetup::Make(n, d);
  const Sq8Query prep = setup.sq.PrepareQuery(setup.query.data());
  std::vector<float> dists(n);
  for (auto _ : state) {
    t->sq8_l2_batch(prep.qadj.data(), setup.sq.scales(), d,
                    setup.store.codes(), n, dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sq8FastScanTier)->ArgsProduct({{0, 1, 2}, {128}});

void BM_Sq8GatherTier(benchmark::State& state) {
  // The page-resident shape: same kernel, codes addressed by pointer.
  const KernelDispatch* t = TierOrSkip(state);
  if (t == nullptr) return;
  const size_t d = static_cast<size_t>(state.range(1)), n = 1024;
  auto setup = Sq8BenchSetup::Make(n, d);
  const Sq8Query prep = setup.sq.PrepareQuery(setup.query.data());
  std::vector<const uint8_t*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = setup.store.code_at(i);
  std::vector<float> dists(n);
  for (auto _ : state) {
    t->sq8_l2_gather(prep.qadj.data(), setup.sq.scales(), d, ptrs.data(), n,
                     dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sq8GatherTier)->ArgsProduct({{0, 1, 2}, {128}});

void BM_AssignNaive(benchmark::State& state) {
  // RC#1 baseline: per-pair distance loops over 256 centroids.
  const size_t d = 128, n = 1024, c = 256;
  auto base = RandomVectors(n, d, 2);
  auto centroids = RandomVectors(c, d, 3);
  std::vector<float> dists(n * c);
  for (auto _ : state) {
    AllPairsL2SqrNaive(base.data(), n, centroids.data(), c, d, dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * n * c);
}
BENCHMARK(BM_AssignNaive);

void BM_AssignSgemm(benchmark::State& state) {
  // RC#1 fix: one SGEMM + norm tables.
  const size_t d = 128, n = 1024, c = 256;
  auto base = RandomVectors(n, d, 2);
  auto centroids = RandomVectors(c, d, 3);
  std::vector<float> cnorms(c);
  RowNormsSqr(centroids.data(), c, d, cnorms.data());
  std::vector<float> dists(n * c);
  for (auto _ : state) {
    AllPairsL2Sqr(base.data(), n, centroids.data(), c, d, nullptr,
                  cnorms.data(), dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * n * c);
}
BENCHMARK(BM_AssignSgemm);

void BM_SearchPerQuery(benchmark::State& state) {
  // Multi-query baseline: one Search call per query, so bucket selection
  // re-runs the per-pair centroid loop for every query.
  const size_t d = 64, n = 4096, nq = 64;
  auto base = RandomVectors(n, d, 10);
  auto queries = RandomVectors(nq, d, 11);
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 64;
  faisslike::IvfFlatIndex index(d, opt);
  if (!index.Build(base.data(), n).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (auto _ : state) {
    for (size_t q = 0; q < nq; ++q) {
      benchmark::DoNotOptimize(index.Search(queries.data() + q * d, params));
    }
  }
  state.SetItemsProcessed(state.iterations() * nq);
}
BENCHMARK(BM_SearchPerQuery);

void BM_SearchBatched(benchmark::State& state) {
  // RC#1 applied across queries: the whole block's bucket selection is one
  // SGEMM-decomposed batch against the codebook.
  const size_t d = 64, n = 4096, nq = 64;
  auto base = RandomVectors(n, d, 10);
  auto queries = RandomVectors(nq, d, 11);
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 64;
  faisslike::IvfFlatIndex index(d, opt);
  if (!index.Build(base.data(), n).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.SearchBatch(queries.data(), nq, params));
  }
  state.SetItemsProcessed(state.iterations() * nq);
}
BENCHMARK(BM_SearchBatched);

void BM_SearchPerQueryMetricsOn(benchmark::State& state) {
  // Counterpart to BM_SearchPerQuery with a live registry: every query pays
  // the latency scope plus one counter flush. Compare against the metrics-
  // disabled run to bound the instrumentation overhead (target: <2%).
  const size_t d = 64, n = 4096, nq = 64;
  auto base = RandomVectors(n, d, 10);
  auto queries = RandomVectors(nq, d, 11);
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 64;
  faisslike::IvfFlatIndex index(d, opt);
  if (!index.Build(base.data(), n).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  params.ctx.metrics = &registry;
  for (auto _ : state) {
    for (size_t q = 0; q < nq; ++q) {
      benchmark::DoNotOptimize(index.Search(queries.data() + q * d, params));
    }
  }
  state.SetItemsProcessed(state.iterations() * nq);
  state.counters["queries"] = static_cast<double>(
      registry.Value(obs::Counter::kFaissQueries));
}
BENCHMARK(BM_SearchPerQueryMetricsOn);

void BM_SearchBatchedMetricsOn(benchmark::State& state) {
  // Batched search with worker threads flushing into one shared registry;
  // doubles as the TSan smoke target for the sharded counters.
  const size_t d = 64, n = 4096, nq = 64;
  auto base = RandomVectors(n, d, 10);
  auto queries = RandomVectors(nq, d, 11);
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 64;
  faisslike::IvfFlatIndex index(d, opt);
  if (!index.Build(base.data(), n).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  params.num_threads = 4;
  params.ctx.metrics = &registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.SearchBatch(queries.data(), nq, params));
  }
  state.SetItemsProcessed(state.iterations() * nq);
  state.counters["queries"] = static_cast<double>(
      registry.Value(obs::Counter::kFaissQueries));
}
BENCHMARK(BM_SearchBatchedMetricsOn);

void BM_TopKKHeap(benchmark::State& state) {
  // RC#6 fix: bounded heap of k over n candidates.
  const size_t n = static_cast<size_t>(state.range(0)), k = 100;
  Rng rng(4);
  std::vector<float> dists(n);
  for (auto& v : dists) v = rng.UniformFloat();
  for (auto _ : state) {
    KMaxHeap heap(k);
    for (size_t i = 0; i < n; ++i) {
      heap.Push(dists[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(heap.TakeSorted());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKKHeap)->Arg(10000)->Arg(100000);

void BM_TopKNHeap(benchmark::State& state) {
  // RC#6 defect: heapify all n, pop k.
  const size_t n = static_cast<size_t>(state.range(0)), k = 100;
  Rng rng(4);
  std::vector<float> dists(n);
  for (auto& v : dists) v = rng.UniformFloat();
  for (auto _ : state) {
    NHeap heap;
    for (size_t i = 0; i < n; ++i) {
      heap.Push(dists[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(heap.PopK(k));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKNHeap)->Arg(10000)->Arg(100000);

void BM_PqTableNaive(benchmark::State& state) {
  const size_t d = 128, n = 2000;
  auto data = RandomVectors(n, d, 5);
  PqOptions opt;
  opt.num_subvectors = 16;
  opt.num_codes = 256;
  opt.max_iterations = 3;
  auto pq = ProductQuantizer::Train(data.data(), n, d, opt).ValueOrDie();
  auto query = RandomVectors(1, d, 6);
  std::vector<float> table(pq.table_size());
  for (auto _ : state) {
    pq.ComputeDistanceTableNaive(query.data(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_PqTableNaive);

void BM_PqTableOptimized(benchmark::State& state) {
  const size_t d = 128, n = 2000;
  auto data = RandomVectors(n, d, 5);
  PqOptions opt;
  opt.num_subvectors = 16;
  opt.num_codes = 256;
  opt.max_iterations = 3;
  auto pq = ProductQuantizer::Train(data.data(), n, d, opt).ValueOrDie();
  auto query = RandomVectors(1, d, 6);
  std::vector<float> table(pq.table_size());
  for (auto _ : state) {
    pq.ComputeDistanceTableOptimized(query.data(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_PqTableOptimized);

void BM_TupleAccessDirect(benchmark::State& state) {
  // RC#2 baseline: pointer-direct vector reads.
  const size_t d = 128, n = 1000;
  auto data = RandomVectors(n, d, 7);
  auto query = RandomVectors(1, d, 8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        L2Sqr(query.data(), data.data() + (i % n) * d, d));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleAccessDirect);

void BM_TupleAccessBufferManager(benchmark::State& state) {
  // RC#2 defect: Pin -> line pointer -> copy -> Unpin per access, even
  // with a 100% buffer hit rate.
  const size_t d = 128, n = 1000;
  auto data = RandomVectors(n, d, 7);
  auto query = RandomVectors(1, d, 8);
  const std::string dir = "/tmp/vecdb_micro_tuple";
  const std::string cmd = "rm -rf " + dir;
  if (std::system(cmd.c_str()) != 0) state.SkipWithError("cleanup failed");
  auto smgr = std::move(pgstub::StorageManager::Open(dir, 8192)).ValueOrDie();
  pgstub::BufferManager bufmgr(&smgr, 4096);
  auto table = std::move(pgstub::HeapTable::Create(&bufmgr, &smgr, "t",
                                                   static_cast<uint32_t>(d)))
                   .ValueOrDie();
  std::vector<pgstub::TupleId> tids;
  for (size_t i = 0; i < n; ++i) {
    tids.push_back(
        std::move(table.Insert(static_cast<int64_t>(i), data.data() + i * d))
            .ValueOrDie());
  }
  std::vector<float> vec(d);
  size_t i = 0;
  for (auto _ : state) {
    int64_t row_id;
    if (!table.Read(tids[i % n], &row_id, vec.data()).ok()) {
      state.SkipWithError("read failed");
      break;
    }
    benchmark::DoNotOptimize(L2Sqr(query.data(), vec.data(), d));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleAccessBufferManager);

void BM_HeapInsertNoWal(benchmark::State& state) {
  // Relational insert path without durability logging.
  const size_t d = 128;
  auto data = RandomVectors(1, d, 9);
  const std::string dir = "/tmp/vecdb_micro_nowal";
  if (std::system(("rm -rf " + dir).c_str()) != 0) {
    state.SkipWithError("cleanup failed");
  }
  auto smgr = std::move(pgstub::StorageManager::Open(dir, 8192)).ValueOrDie();
  pgstub::BufferManager bufmgr(&smgr, 4096);
  auto table = std::move(pgstub::HeapTable::Create(&bufmgr, &smgr, "t",
                                                   static_cast<uint32_t>(d)))
                   .ValueOrDie();
  int64_t id = 0;
  for (auto _ : state) {
    if (!table.Insert(id++, data.data()).ok()) {
      state.SkipWithError("insert failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsertNoWal);

void BM_HeapInsertWal(benchmark::State& state) {
  // The same insert path with full-page-image WAL attached: the durability
  // tax a generalized vector database pays on writes.
  const size_t d = 128;
  auto data = RandomVectors(1, d, 9);
  const std::string dir = "/tmp/vecdb_micro_wal";
  if (std::system(("rm -rf " + dir).c_str()) != 0) {
    state.SkipWithError("cleanup failed");
  }
  auto smgr = std::move(pgstub::StorageManager::Open(dir, 8192)).ValueOrDie();
  auto wal = std::move(pgstub::WalManager::Open(dir + "/wal.log")).ValueOrDie();
  pgstub::BufferManager bufmgr(&smgr, 4096);
  bufmgr.SetWal(&wal);
  auto table = std::move(pgstub::HeapTable::Create(&bufmgr, &smgr, "t",
                                                   static_cast<uint32_t>(d)))
                   .ValueOrDie();
  int64_t id = 0;
  for (auto _ : state) {
    if (!table.Insert(id++, data.data()).ok()) {
      state.SkipWithError("insert failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsertWal);

void BM_Crc32cBitwise(benchmark::State& state) {
  // Reference implementation; the floor the fast paths are measured against.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(n, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgstub::Crc32cBitwise(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32cBitwise)->Arg(64)->Arg(8192);

void BM_Crc32cTable(benchmark::State& state) {
  // Portable slicing-by-8: what the WAL pays per record without SSE4.2.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(n, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgstub::Crc32cTable(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32cTable)->Arg(64)->Arg(8192);

void BM_Crc32cDispatched(benchmark::State& state) {
  // Runtime-dispatched fast path (SSE4.2 _mm_crc32_* where available):
  // what WalManager actually calls when framing records.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(n, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgstub::Crc32c(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32cDispatched)->Arg(64)->Arg(8192);

}  // namespace
}  // namespace vecdb

BENCHMARK_MAIN();
