// Fig 8: breakdown of SearchNbToAdd during HNSW construction on SIFT1M.
// Paper: Faiss spends 80.6% on distance calculation; PASE only 22% — the
// rest disappears into Tuple Access (46%), HVTGet (14%), and pasepfirst
// (7.7%), all artifacts of the relational substrate (RC#2).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Fig 8: SearchNbToAdd breakdown in HNSW construction",
         "PASE: 22% distance / 46% tuple access / 14% HVTGet / 7.7% "
         "pasepfirst; Faiss: 80.6% distance",
         args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu, dim=%u) ---\n", bd.spec.name.c_str(),
                bd.data.num_base, bd.data.dim);

    Profiler faiss_prof;
    faisslike::HnswOptions fopt;
    fopt.bnn = 16;
    fopt.efb = 40;
    fopt.profiler = &faiss_prof;
    faisslike::HnswIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "faiss: %s\n", s.ToString().c_str());
      return 1;
    }

    Profiler pase_prof;
    PgEnv pg(FreshDir(args, "fig08_" + bd.spec.name));
    pase::PaseHnswOptions popt;
    popt.bnn = 16;
    popt.efb = 40;
    popt.profiler = &pase_prof;
    pase::PaseHnswIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "pase: %s\n", s.ToString().c_str());
      return 1;
    }

    // Both engines charge the same sub-phase labels inside SearchNbToAdd;
    // for Faiss, TupleAccess/pasepfirst do not exist (direct pointers).
    PrintBreakdown("PASE SearchNbToAdd", pase_prof,
                   {"fvec_L2sqr", "TupleAccess", "HVTGet", "pasepfirst"},
                   pase_prof.Nanos("SearchNbToAdd"));
    PrintBreakdown("Faiss SearchNbToAdd", faiss_prof,
                   {"fvec_L2sqr", "HVTGet"},
                   faiss_prof.Nanos("SearchNbToAdd"));
    std::printf("absolute distance time: PASE %.2f s vs Faiss %.2f s "
                "(paper: 107 s vs 114 s — roughly equal)\n\n",
                pase_prof.Seconds("fvec_L2sqr"),
                faiss_prof.Seconds("fvec_L2sqr"));
  }
  return 0;
}
