// Table III: time breakdown of HNSW building on SIFT1M — SearchNbToAdd /
// AddLink / GreedyUpdate / ShrinkNbList / Others, for PASE and Faiss.
// Paper: SearchNbToAdd dominates both (70-76%), and PASE's SearchNbToAdd
// is ~3.4x slower in absolute time.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

namespace {
void Report(const char* engine, const Profiler& profiler,
            double total_seconds) {
  const int64_t total = static_cast<int64_t>(total_seconds * 1e9);
  std::printf("%s (total %.2f s)\n", engine, total_seconds);
  PrintBreakdown("  phases", profiler,
                 {"SearchNbToAdd", "AddLink", "GreedyUpdate", "ShrinkNbList"},
                 total);
}
}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Table III: HNSW build time breakdown",
         "SearchNbToAdd dominates both engines; PASE's is ~3.4x slower",
         args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu, dim=%u) ---\n", bd.spec.name.c_str(),
                bd.data.num_base, bd.data.dim);

    Profiler faiss_prof;
    faisslike::HnswOptions fopt;
    fopt.bnn = 16;
    fopt.efb = 40;
    fopt.profiler = &faiss_prof;
    faisslike::HnswIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "faiss: %s\n", s.ToString().c_str());
      return 1;
    }

    Profiler pase_prof;
    PgEnv pg(FreshDir(args, "tab03_" + bd.spec.name));
    pase::PaseHnswOptions popt;
    popt.bnn = 16;
    popt.efb = 40;
    popt.profiler = &pase_prof;
    pase::PaseHnswIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "pase: %s\n", s.ToString().c_str());
      return 1;
    }

    Report("PASE", pase_prof, pase_index.build_stats().total_seconds());
    Report("Faiss", faiss_prof, faiss_index.build_stats().total_seconds());
    std::printf("SearchNbToAdd absolute: PASE %.2f s vs Faiss %.2f s "
                "(paper: 487.3 s vs 142.0 s)\n\n",
                pase_prof.Seconds("SearchNbToAdd"),
                faiss_prof.Seconds("SearchNbToAdd"));
  }
  return 0;
}
