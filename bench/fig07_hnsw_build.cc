// Fig 7: HNSW index construction time, PASE vs Faiss, bnn=16/efb=40.
// Paper: PASE 1.6x-8.7x slower — but here the cause is NOT SGEMM (HNSW
// never uses it); it is the buffer-manager tuple access (RC#2).
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;  // graph builds are O(n log n) page walks
  Banner("Fig 7: HNSW build time",
         "PASE 1.6x-8.7x slower; root cause is memory management (RC#2), "
         "not SGEMM",
         args);

  TablePrinter table({"dataset", "n", "Faiss s", "PASE s", "slowdown"},
                     {10, 9, 10, 10, 9});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::HnswOptions fopt;
    fopt.bnn = 16;
    fopt.efb = 40;
    faisslike::HnswIndex faiss_index(bd.data.dim, fopt);
    if (Status s = faiss_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "faiss: %s\n", s.ToString().c_str());
      return 1;
    }

    PgEnv pg(FreshDir(args, "fig07_" + bd.spec.name));
    pase::PaseHnswOptions popt;
    popt.bnn = 16;
    popt.efb = 40;
    pase::PaseHnswIndex pase_index(pg.env(), bd.data.dim, popt);
    if (Status s = pase_index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "pase: %s\n", s.ToString().c_str());
      return 1;
    }

    const double ft = faiss_index.build_stats().total_seconds();
    const double pt = pase_index.build_stats().total_seconds();
    table.Row({bd.spec.name, std::to_string(bd.data.num_base),
               TablePrinter::Num(ft, 2), TablePrinter::Num(pt, 2),
               TablePrinter::Ratio(pt / ft)});
  }
  std::printf("\nexpected shape: PASE consistently slower by a small "
              "multiple; see tab03/fig08 for the breakdown.\n");
  return 0;
}
