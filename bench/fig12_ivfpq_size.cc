// Fig 12: IVF_PQ index size, PASE vs Faiss. Paper: no obvious difference,
// for the same reason as Fig 11.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig 12: IVF_PQ index size", "sizes are nearly identical", args);

  TablePrinter table({"dataset", "Faiss size", "PASE size", "ratio"},
                     {10, 12, 12, 8});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::IvfPqOptions fopt;
    fopt.num_clusters = bd.clusters;
    fopt.pq_m = bd.spec.pq_m;
    faisslike::IvfPqIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    PgEnv pg(FreshDir(args, "fig12_" + bd.spec.name));
    pase::PaseIvfPqOptions popt;
    popt.num_clusters = bd.clusters;
    popt.pq_m = bd.spec.pq_m;
    pase::PaseIvfPqIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    table.Row({bd.spec.name, TablePrinter::Megabytes(faiss_index.SizeBytes()),
               TablePrinter::Megabytes(pase_index.SizeBytes()),
               TablePrinter::Ratio(
                   static_cast<double>(pase_index.SizeBytes()) /
                   static_cast<double>(faiss_index.SizeBytes()))});
  }
  std::printf("\nexpected shape: ratio near 1x on every dataset. PQ tuples "
              "are tiny, so page rounding of short bucket chains is the "
              "main residual.\n");
  return 0;
}
