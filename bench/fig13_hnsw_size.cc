// Fig 13: HNSW index size, PASE vs Faiss. Paper: PASE consumes
// 2.9x-13.3x more space, because of (1) 24-byte HNSWNeighborTuples vs
// 4-byte ids and (2) a fresh page for every vertex's adjacency lists
// (RC#4). The bridged engine's packed/compact image is shown as the fix.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;
  Banner("Fig 13: HNSW index size",
         "PASE 2.9x-13.3x larger than Faiss (RC#4)", args);

  TablePrinter table({"dataset", "n", "Faiss", "PASE", "ratio", "bridged",
                      "bridged ratio"},
                     {10, 8, 11, 11, 7, 11, 13});
  for (auto& bd : LoadDatasets(args)) {
    faisslike::HnswOptions fopt;
    fopt.bnn = 16;
    fopt.efb = 40;
    faisslike::HnswIndex faiss_index(bd.data.dim, fopt);
    if (!faiss_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    PgEnv pg(FreshDir(args, "fig13_" + bd.spec.name));
    pase::PaseHnswOptions popt;
    popt.bnn = 16;
    popt.efb = 40;
    pase::PaseHnswIndex pase_index(pg.env(), bd.data.dim, popt);
    if (!pase_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    bridge::BridgedHnswOptions bopt;
    bopt.bnn = 16;
    bopt.efb = 40;
    bridge::BridgedHnswIndex bridged(pg.env(), bd.data.dim, bopt);
    if (!bridged.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;

    const double f = static_cast<double>(faiss_index.SizeBytes());
    table.Row({bd.spec.name, std::to_string(bd.data.num_base),
               TablePrinter::Megabytes(faiss_index.SizeBytes()),
               TablePrinter::Megabytes(pase_index.SizeBytes()),
               TablePrinter::Ratio(pase_index.SizeBytes() / f),
               TablePrinter::Megabytes(bridged.SizeBytes()),
               TablePrinter::Ratio(bridged.SizeBytes() / f)});
  }
  std::printf("\nexpected shape: PASE several times larger; the bridged "
              "packed/compact image lands close to Faiss.\n");
  return 0;
}
