// Fig 9: parallel index construction in Faiss (PASE does not support
// parallel builds at all) with 1/2/4/8 threads, SGEMM enabled and
// disabled, for IVF_FLAT and IVF_PQ.
//
// Paper: everything scales well with threads EXCEPT IVF_FLAT with SGEMM,
// whose adding phase is already collapsed into matrix kernels.
//
// The reproduction container has one core, so wall-clock cannot show
// scaling; the harness therefore reports the MODELED makespan from the
// engines' work accounting (max per-worker busy time + serialized time;
// SGEMM kernels count as serialized since Faiss delegates them to BLAS).
// Wall time is printed alongside for honesty. See DESIGN.md §3.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

namespace {
template <typename IndexT, typename OptionsT>
void RunSweep(const char* title, const BenchDataset& bd, OptionsT opt) {
  std::printf("%s\n", title);
  TablePrinter table({"threads", "wall s", "modeled s", "speedup"},
                     {8, 9, 10, 8});
  double base_modeled = 0;
  for (int threads : {1, 2, 4, 8}) {
    opt.num_threads = threads;
    IndexT index(bd.data.dim, opt);
    if (Status s = index.Build(bd.data.base.data(), bd.data.num_base);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return;
    }
    const auto& stats = index.build_stats();
    // Training runs before the accounted adding phase; it is serial here.
    const double modeled =
        stats.train_seconds + stats.accounting.ModeledSeconds();
    if (threads == 1) base_modeled = modeled;
    table.Row({std::to_string(threads),
               TablePrinter::Num(stats.total_seconds(), 3),
               TablePrinter::Num(modeled, 3),
               TablePrinter::Ratio(base_modeled / modeled)});
  }
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Fig 9: parallel index construction in Faiss",
         "scales with threads except IVF_FLAT with SGEMM (9a)", args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu) ---\n\n", bd.spec.name.c_str(),
                bd.data.num_base);

    faisslike::IvfFlatOptions flat;
    flat.num_clusters = bd.clusters;
    flat.use_sgemm = true;
    RunSweep<faisslike::IvfFlatIndex>("(a) IVF_FLAT with SGEMM", bd, flat);
    flat.use_sgemm = false;
    RunSweep<faisslike::IvfFlatIndex>("(b) IVF_FLAT without SGEMM", bd, flat);

    faisslike::IvfPqOptions pq;
    pq.num_clusters = bd.clusters;
    pq.pq_m = bd.spec.pq_m;
    pq.use_sgemm = true;
    RunSweep<faisslike::IvfPqIndex>("(c) IVF_PQ with SGEMM", bd, pq);
    pq.use_sgemm = false;
    RunSweep<faisslike::IvfPqIndex>("(d) IVF_PQ without SGEMM", bd, pq);
  }
  std::printf("expected shape: (a) flat speedup curve; (b)/(d) near-linear; "
              "(c) scales because PQ encoding dominates its adding phase.\n");
  return 0;
}
