// Extension (beyond the paper's figures): the quantization trade-off
// spectrum the paper's §II-B surveys — IVF_FLAT vs IVF_SQ8 vs IVF_PQ vs
// IVF_PQ with re-ranking — measured on size, query time, and recall@100,
// in the specialized engine.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Extension: quantization trade-offs (IVF_FLAT / SQ8 / PQ / "
         "PQ+refine)",
         "paper §II-B: quantization trades recall for space", args);

  for (auto& bd : LoadDatasets(args)) {
    ComputeGroundTruth(&bd.data, 100, Metric::kL2);
    std::printf("--- %s (n=%zu, dim=%u, c=%u) ---\n", bd.spec.name.c_str(),
                bd.data.num_base, bd.data.dim, bd.clusters);

    SearchParams params;
    params.k = 100;
    params.nprobe = 20;
    TablePrinter table({"index", "size", "bytes/vec", "avg ms",
                        "recall@100"},
                       {22, 11, 10, 9, 10});
    auto report = [&](const VectorIndex& index, const char* name) {
      auto run = std::move(RunSearchBatch(index, bd.data, params,
                                          args.max_queries))
                     .ValueOrDie();
      table.Row({name, TablePrinter::Megabytes(index.SizeBytes()),
                 TablePrinter::Num(static_cast<double>(index.SizeBytes()) /
                                       static_cast<double>(bd.data.num_base),
                                   1),
                 TablePrinter::Num(run.avg_millis, 3),
                 TablePrinter::Num(run.recall_at_k, 3)});
    };

    faisslike::IvfFlatOptions flat;
    flat.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex flat_index(bd.data.dim, flat);
    if (!flat_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    report(flat_index, "IVF_FLAT (exact in-cell)");

    faisslike::IvfSq8Options sq8;
    sq8.num_clusters = bd.clusters;
    faisslike::IvfSq8Index sq8_index(bd.data.dim, sq8);
    if (!sq8_index.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    report(sq8_index, "IVF_SQ8 (8-bit scalar)");

    faisslike::IvfPqOptions pq;
    pq.num_clusters = bd.clusters;
    pq.pq_m = bd.spec.pq_m;
    faisslike::IvfPqIndex pq_index(bd.data.dim, pq);
    if (!pq_index.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;
    report(pq_index, "IVF_PQ (m-byte codes)");

    pq.refine_factor = 4;
    faisslike::IvfPqIndex refined(bd.data.dim, pq);
    if (!refined.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;
    report(refined, "IVF_PQ + refine x4");
    std::printf("\n");
  }
  std::printf("expected shape: recall FLAT > SQ8 > PQ+refine > PQ; size "
              "FLAT > PQ+refine > SQ8 > PQ.\n");
  return 0;
}
