// Machine-readable kernel-speedup report: BENCH_kernels.json.
//
// Times every compiled-and-runnable ISA tier (scalar / AVX2+FMA / AVX-512F)
// on the float kernels and the SQ8 fast scan at d=128, plus the legacy
// per-code decode-on-the-fly SQ8 distance as the fast-scan baseline, and
// writes the ns/op numbers and speedup ratios as JSON. This is the artifact
// backing the acceptance bars: AVX2 >= 2x scalar on L2Sqr/DistanceBatch and
// blocked fast scan >= 3x per-code at d=128.
//
// Usage: kernels_report [output.json]   (default ./BENCH_kernels.json)
//
// Unlike the micro_kernels google-benchmark binary this has no framework
// dependency — it is meant to run in CI-ish contexts and produce one small
// file, not interactive tables.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "distance/dispatch.h"
#include "distance/kernels.h"
#include "quantizer/sq8.h"

namespace vecdb {
namespace {

// 32 codes at d=128 is a 16 KiB float working set: big enough to rotate
// through (so a single hot pair isn't all we time), small enough to stay
// L1-resident — this measures the kernels, not the cache hierarchy. 32 is
// also Sq8CodeStore::kBlockCodes, so the SQ8 numbers are per-block.
constexpr size_t kDim = 128;
constexpr size_t kNumCodes = 32;
constexpr int kRepetitions = 5;

std::vector<float> RandomVectors(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * d);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

// Best-of-k timing of fn(), where one fn() call performs `ops` kernel
// operations. The inner iteration count is calibrated so each repetition
// runs long enough to dominate clock overhead.
template <typename Fn>
double NanosPerOp(size_t ops, Fn&& fn) {
  // Calibrate: grow iterations until a repetition takes >= 2ms.
  size_t iters = 1;
  for (;;) {
    Timer t;
    for (size_t i = 0; i < iters; ++i) fn();
    if (t.ElapsedNanos() >= 2'000'000 || iters >= (1u << 22)) break;
    iters *= 4;
  }
  int64_t best = INT64_MAX;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Timer t;
    for (size_t i = 0; i < iters; ++i) fn();
    const int64_t ns = t.ElapsedNanos();
    if (ns < best) best = ns;
  }
  return static_cast<double>(best) /
         (static_cast<double>(iters) * static_cast<double>(ops));
}

// Global sink defeating dead-code elimination across the timed lambdas.
volatile float g_sink = 0.f;

struct TierTimes {
  // ns/op per tier; negative when the tier is not runnable on this host.
  double by_isa[3] = {-1.0, -1.0, -1.0};

  double Speedup(KernelIsa over, KernelIsa base) const {
    const double a = by_isa[static_cast<int>(over)];
    const double b = by_isa[static_cast<int>(base)];
    if (a <= 0.0 || b <= 0.0) return -1.0;
    return b / a;
  }
};

void AppendTier(std::string* json, const char* name, const TierTimes& t) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"scalar_ns\": %.3f, \"avx2_ns\": %.3f, "
                "\"avx512_ns\": %.3f, \"avx2_speedup\": %.2f, "
                "\"avx512_speedup\": %.2f}",
                name, t.by_isa[0], t.by_isa[1], t.by_isa[2],
                t.Speedup(KernelIsa::kAvx2, KernelIsa::kScalar),
                t.Speedup(KernelIsa::kAvx512, KernelIsa::kScalar));
  *json += buf;
}

int Run(const char* out_path) {
  const auto base = RandomVectors(kNumCodes, kDim, 11);
  const auto query = RandomVectors(1, kDim, 12);

  // SQ8 setup: train on the base data, encode into a blocked store.
  auto sq = ScalarQuantizer8::Train(base.data(), kNumCodes, kDim).ValueOrDie();
  Sq8CodeStore store;
  store.Reset(kDim);
  {
    std::vector<uint8_t> code(kDim);
    for (size_t i = 0; i < kNumCodes; ++i) {
      sq.Encode(base.data() + i * kDim, code.data());
      store.Append(code.data(), static_cast<int64_t>(i));
    }
  }
  const Sq8Query prep = sq.PrepareQuery(query.data());
  std::vector<float> dists(kNumCodes);

  TierTimes l2sqr, cosine, batch, sq8_scan;
  for (int i = 0; i < 3; ++i) {
    const auto isa = static_cast<KernelIsa>(i);
    const KernelDispatch* t = KernelTableFor(isa);
    if (t == nullptr) {
      std::fprintf(stderr, "[kernels_report] tier %s not runnable, skipped\n",
                   KernelIsaName(isa));
      continue;
    }
    std::fprintf(stderr, "[kernels_report] timing tier %s...\n",
                 KernelIsaName(isa));
    // Single-pair kernels rotate through the base set so we measure the
    // kernel, not one cache-resident pair's best case.
    l2sqr.by_isa[i] = NanosPerOp(kNumCodes, [&] {
      float acc = 0.f;
      for (size_t j = 0; j < kNumCodes; ++j) {
        acc += t->l2sqr(query.data(), base.data() + j * kDim, kDim);
      }
      g_sink = acc;
    });
    cosine.by_isa[i] = NanosPerOp(kNumCodes, [&] {
      float acc = 0.f;
      for (size_t j = 0; j < kNumCodes; ++j) {
        acc += t->cosine(query.data(), base.data() + j * kDim, kDim);
      }
      g_sink = acc;
    });
    // The DistanceBatch shape: one query against the contiguous base,
    // results materialized — what every bucket scan does.
    batch.by_isa[i] = NanosPerOp(kNumCodes, [&] {
      for (size_t j = 0; j < kNumCodes; ++j) {
        dists[j] = t->l2sqr(query.data(), base.data() + j * kDim, kDim);
      }
      g_sink = dists[kNumCodes - 1];
    });
    sq8_scan.by_isa[i] = NanosPerOp(kNumCodes, [&] {
      t->sq8_l2_batch(prep.qadj.data(), sq.scales(), kDim, store.codes(),
                      kNumCodes, dists.data());
      g_sink = dists[kNumCodes - 1];
    });
  }

  // Fast-scan baseline: the pre-blocked bucket loop — decode-on-the-fly
  // distance, one code at a time (no prepared query, no batch kernel).
  std::fprintf(stderr, "[kernels_report] timing sq8 per-code baseline...\n");
  const double sq8_per_code_ns = NanosPerOp(kNumCodes, [&] {
    float acc = 0.f;
    for (size_t j = 0; j < kNumCodes; ++j) {
      acc += sq.DistanceToCode(query.data(), store.code_at(j));
    }
    g_sink = acc;
  });

  auto fastscan_speedup = [&](KernelIsa isa) {
    const double ns = sq8_scan.by_isa[static_cast<int>(isa)];
    return ns > 0.0 ? sq8_per_code_ns / ns : -1.0;
  };

  std::string json = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"d\": %zu, \"n_codes\": %zu, "
                "\"repetitions\": %d, \"active_isa\": \"%s\"},\n",
                kDim, kNumCodes, kRepetitions,
                KernelIsaName(ActiveKernelIsa()));
  json += buf;
  json += "  \"float_kernels\": {\n";
  AppendTier(&json, "l2sqr", l2sqr);
  json += ",\n";
  AppendTier(&json, "cosine", cosine);
  json += ",\n";
  AppendTier(&json, "distance_batch", batch);
  json += "\n  },\n";
  json += "  \"sq8\": {\n";
  std::snprintf(buf, sizeof(buf), "    \"per_code_ns\": %.3f,\n",
                sq8_per_code_ns);
  json += buf;
  AppendTier(&json, "fast_scan", sq8_scan);
  json += ",\n";
  std::snprintf(buf, sizeof(buf),
                "    \"fast_scan_speedup_avx2\": %.2f,\n"
                "    \"fast_scan_speedup_avx512\": %.2f,\n"
                "    \"fast_scan_speedup_scalar\": %.2f\n",
                fastscan_speedup(KernelIsa::kAvx2),
                fastscan_speedup(KernelIsa::kAvx512),
                fastscan_speedup(KernelIsa::kScalar));
  json += buf;
  json += "  }\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[kernels_report] cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[kernels_report] wrote %s\n", out_path);
  std::fputs(json.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace vecdb

int main(int argc, char** argv) {
  return vecdb::Run(argc > 1 ? argv[1] : "BENCH_kernels.json");
}
