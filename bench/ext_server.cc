// Networked front-end overhead report: BENCH_server.json.
//
// Quantifies what the wire protocol + connection scheduler cost over the
// in-process Session path, and how statement throughput scales with
// concurrent clients multiplexed onto the fixed worker pool:
//   - per-statement latency, in-process vs loopback TCP (same statement)
//   - aggregate statements/sec at 1 / 4 / 8 concurrent connections
//
// Usage: ext_server [output.json]   (default ./BENCH_server.json)
//
// Standalone like kernels_report: no benchmark framework, one small JSON
// artifact suitable for CI trend lines.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb {
namespace {

constexpr int kRows = 2000;
constexpr int kLatencyIters = 400;
constexpr int kThroughputStatements = 300;  // per client
constexpr const char* kSelect =
    "SELECT id FROM t ORDER BY vec <-> '1,2,3,4' OPTIONS (nprobe=8) "
    "LIMIT 10";

struct LatencyStats {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencyStats Summarize(std::vector<double>& micros) {
  LatencyStats out;
  if (micros.empty()) return out;
  std::sort(micros.begin(), micros.end());
  double sum = 0.0;
  for (double v : micros) sum += v;
  out.mean_us = sum / static_cast<double>(micros.size());
  out.p50_us = micros[micros.size() / 2];
  out.p99_us = micros[micros.size() * 99 / 100];
  return out;
}

template <typename ExecFn>
LatencyStats MeasureLatency(ExecFn&& exec) {
  // Warmup, then timed iterations.
  for (int i = 0; i < 20; ++i) {
    if (!exec()) return {};
  }
  std::vector<double> micros;
  micros.reserve(kLatencyIters);
  for (int i = 0; i < kLatencyIters; ++i) {
    Timer t;
    if (!exec()) return {};
    micros.push_back(t.ElapsedMicros());
  }
  return Summarize(micros);
}

/// Statements/sec with `nclients` connections hammering kSelect.
double MeasureThroughput(uint16_t port, int nclients) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < nclients; ++c) {
    threads.emplace_back([&] {
      auto client = net::VecClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kThroughputStatements; ++i) {
        if (!(*client)->Execute(kSelect).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  if (failures.load() != 0) {
    std::fprintf(stderr, "[ext_server] throughput run had failures\n");
    return -1.0;
  }
  return static_cast<double>(nclients) * kThroughputStatements / seconds;
}

int Run(const char* out_path) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "vecdb_bench_server";
  std::filesystem::remove_all(dir);
  sql::DatabaseOptions db_options;
  auto db = sql::MiniDatabase::Open(dir, db_options).ValueOrDie();
  auto setup = db->CreateSession();

  std::fprintf(stderr, "[ext_server] loading %d rows...\n", kRows);
  if (!setup->Execute("CREATE TABLE t (id int, vec float[4])").ok()) {
    return 1;
  }
  for (int first = 0; first < kRows; first += 100) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = 0; i < 100; ++i) {
      const int id = first + i;
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(id) + ", '" + std::to_string(id % 13) +
             "," + std::to_string(id % 7) + "," + std::to_string(id % 5) +
             "," + std::to_string(id) + "')";
    }
    if (!setup->Execute(sql).ok()) return 1;
  }
  if (!setup->Execute("CREATE INDEX t_idx ON t USING ivfflat (vec) WITH "
                      "(clusters=16, sample_ratio=1)")
           .ok()) {
    return 1;
  }

  net::ServerOptions server_options;
  server_options.worker_threads = 8;
  auto server = net::VecServer::Start(db.get(), server_options).ValueOrDie();
  std::fprintf(stderr, "[ext_server] server on port %u\n", server->port());

  std::fprintf(stderr, "[ext_server] in-process latency...\n");
  auto session = db->CreateSession();
  const LatencyStats inproc =
      MeasureLatency([&] { return session->Execute(kSelect).ok(); });

  std::fprintf(stderr, "[ext_server] loopback latency...\n");
  auto client =
      net::VecClient::Connect("127.0.0.1", server->port()).ValueOrDie();
  const LatencyStats wire =
      MeasureLatency([&] { return client->Execute(kSelect).ok(); });

  double throughput[3] = {-1.0, -1.0, -1.0};
  const int fleets[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    std::fprintf(stderr, "[ext_server] throughput with %d clients...\n",
                 fleets[i]);
    throughput[i] = MeasureThroughput(server->port(), fleets[i]);
  }

  char buf[512];
  std::string json = "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"rows\": %d, \"latency_iters\": %d, "
                "\"throughput_statements_per_client\": %d, "
                "\"worker_threads\": %u},\n",
                kRows, kLatencyIters, kThroughputStatements,
                server_options.worker_threads);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"inproc_latency_us\": {\"mean\": %.1f, \"p50\": %.1f, "
                "\"p99\": %.1f},\n",
                inproc.mean_us, inproc.p50_us, inproc.p99_us);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"wire_latency_us\": {\"mean\": %.1f, \"p50\": %.1f, "
                "\"p99\": %.1f},\n",
                wire.mean_us, wire.p50_us, wire.p99_us);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"wire_overhead_us_p50\": %.1f,\n",
                wire.p50_us - inproc.p50_us);
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"throughput_stmts_per_sec\": {\"clients_1\": %.0f, "
      "\"clients_4\": %.0f, \"clients_8\": %.0f}\n",
      throughput[0], throughput[1], throughput[2]);
  json += buf;
  json += "}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[ext_server] wrote %s\n", out_path);
  std::fputs(json.c_str(), stdout);

  client->Close();
  server->Stop();
  return 0;
}

}  // namespace
}  // namespace vecdb

int main(int argc, char** argv) {
  return vecdb::Run(argc > 1 ? argv[1] : "BENCH_server.json");
}
