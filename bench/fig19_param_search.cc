// Fig 19: impact of search parameters on the query-time gap on SIFT1M —
// nprobe in {10, 20, 50} for IVF_FLAT/IVF_PQ, efs in {16, 100, 200} for
// HNSW. Paper: IVF_FLAT's gap stays flat; IVF_PQ's and HNSW's grow.
#include "bench/bench_common.h"

using namespace vecdb;
using namespace vecdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.max_base == 0) args.max_base = 20000;
  if (args.datasets.empty()) args.datasets = {"SIFT1M"};
  Banner("Fig 19: search-time gap vs parameters (SIFT1M)",
         "flat for IVF_FLAT, growing for IVF_PQ (nprobe) and HNSW (efs)",
         args);

  for (auto& bd : LoadDatasets(args)) {
    std::printf("--- %s (n=%zu) ---\n", bd.spec.name.c_str(),
                bd.data.num_base);

    faisslike::IvfFlatOptions ff;
    ff.num_clusters = bd.clusters;
    faisslike::IvfFlatIndex faiss_flat(bd.data.dim, ff);
    if (!faiss_flat.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    PgEnv pg(FreshDir(args, "fig19_" + bd.spec.name));
    pase::PaseIvfFlatOptions pf;
    pf.num_clusters = bd.clusters;
    pase::PaseIvfFlatIndex pase_flat(pg.env(), bd.data.dim, pf);
    if (!pase_flat.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    std::printf("(a) IVF_FLAT, varying nprobe\n");
    TablePrinter t1({"nprobe", "Faiss ms", "PASE ms", "slowdown"},
                    {7, 10, 10, 9});
    for (uint32_t nprobe : {10u, 20u, 50u}) {
      SearchParams params;
      params.k = 100;
      params.nprobe = nprobe;
      auto f = std::move(RunSearchBatch(faiss_flat, bd.data, params,
                                        args.max_queries))
                   .ValueOrDie();
      auto p = std::move(RunSearchBatch(pase_flat, bd.data, params,
                                        args.max_queries))
                   .ValueOrDie();
      t1.Row({std::to_string(nprobe), TablePrinter::Num(f.avg_millis, 3),
              TablePrinter::Num(p.avg_millis, 3),
              TablePrinter::Ratio(p.avg_millis / f.avg_millis)});
    }

    faisslike::IvfPqOptions fq;
    fq.num_clusters = bd.clusters;
    fq.pq_m = bd.spec.pq_m;
    faisslike::IvfPqIndex faiss_pq(bd.data.dim, fq);
    if (!faiss_pq.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;
    pase::PaseIvfPqOptions pqo;
    pqo.num_clusters = bd.clusters;
    pqo.pq_m = bd.spec.pq_m;
    pqo.rel_prefix = "pase_pq19";
    pase::PaseIvfPqIndex pase_pq(pg.env(), bd.data.dim, pqo);
    if (!pase_pq.Build(bd.data.base.data(), bd.data.num_base).ok()) return 1;

    std::printf("\n(b) IVF_PQ, varying nprobe\n");
    TablePrinter t2({"nprobe", "Faiss ms", "PASE ms", "slowdown"},
                    {7, 10, 10, 9});
    for (uint32_t nprobe : {10u, 20u, 50u}) {
      SearchParams params;
      params.k = 100;
      params.nprobe = nprobe;
      auto f = std::move(RunSearchBatch(faiss_pq, bd.data, params,
                                        args.max_queries))
                   .ValueOrDie();
      auto p = std::move(RunSearchBatch(pase_pq, bd.data, params,
                                        args.max_queries))
                   .ValueOrDie();
      t2.Row({std::to_string(nprobe), TablePrinter::Num(f.avg_millis, 3),
              TablePrinter::Num(p.avg_millis, 3),
              TablePrinter::Ratio(p.avg_millis / f.avg_millis)});
    }

    faisslike::HnswOptions fh;
    fh.bnn = 16;
    fh.efb = 40;
    faisslike::HnswIndex faiss_hnsw(bd.data.dim, fh);
    if (!faiss_hnsw.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;
    pase::PaseHnswOptions ph;
    ph.bnn = 16;
    ph.efb = 40;
    ph.rel_prefix = "pase_hnsw19";
    pase::PaseHnswIndex pase_hnsw(pg.env(), bd.data.dim, ph);
    if (!pase_hnsw.Build(bd.data.base.data(), bd.data.num_base).ok())
      return 1;

    std::printf("\n(c) HNSW, varying efs\n");
    TablePrinter t3({"efs", "Faiss ms", "PASE ms", "slowdown"},
                    {7, 10, 10, 9});
    for (uint32_t efs : {16u, 100u, 200u}) {
      SearchParams params;
      params.k = std::min<size_t>(100, efs);
      params.efs = efs;
      auto f = std::move(RunSearchBatch(faiss_hnsw, bd.data, params,
                                        args.max_queries))
                   .ValueOrDie();
      auto p = std::move(RunSearchBatch(pase_hnsw, bd.data, params,
                                        args.max_queries))
                   .ValueOrDie();
      t3.Row({std::to_string(efs), TablePrinter::Num(f.avg_millis, 3),
              TablePrinter::Num(p.avg_millis, 3),
              TablePrinter::Ratio(p.avg_millis / f.avg_millis)});
    }
    std::printf("\n");
  }
  std::printf("expected shape: (a) roughly flat; (b) grows with nprobe "
              "(naive precomputed table amortizes worse); (c) grows with "
              "efs (more tuple accesses per query).\n");
  return 0;
}
