// Shared setup for the figure/table reproduction benchmarks: dataset
// materialization at the chosen scale, engine construction with the
// paper's Table II parameters, and a fresh pgstub environment per bench.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/vecdb.h"
#include "core/experiment.h"

namespace vecdb::bench {

/// One dataset prepared for benchmarking, plus its scaled Table II params.
struct BenchDataset {
  DatasetSpec spec;
  Dataset data;
  uint32_t clusters;  ///< c scaled as sqrt(scale)
};

/// Materializes the requested paper datasets (all six by default).
/// `args.max_base` (if nonzero) caps the scaled base count per dataset.
inline std::vector<BenchDataset> LoadDatasets(const BenchArgs& args) {
  std::vector<BenchDataset> out;
  for (const auto& spec : PaperDatasets()) {
    if (!args.datasets.empty()) {
      bool wanted = false;
      for (const auto& name : args.datasets) {
        if (FindDataset(name) == &spec) wanted = true;
      }
      if (!wanted) continue;
    }
    double scale = args.scale;
    if (args.max_base > 0) {
      scale = std::min(scale, static_cast<double>(args.max_base) /
                                  static_cast<double>(spec.paper_num_base));
    }
    BenchDataset bd{spec, MakePaperAnalog(spec, scale),
                    ScaledClusterCount(spec, scale)};
    out.push_back(std::move(bd));
  }
  return out;
}

/// A disposable PostgreSQL-like environment rooted in a unique directory.
class PgEnv {
 public:
  explicit PgEnv(const std::string& dir, uint32_t page_size = 8192,
                 size_t pool_pages = 262144)
      : smgr_(std::move(pgstub::StorageManager::Open(dir, page_size))
                  .ValueOrDie()),
        bufmgr_(&smgr_, pool_pages) {}

  pase::PaseEnv env() { return {&smgr_, &bufmgr_}; }
  pgstub::StorageManager* smgr() { return &smgr_; }
  pgstub::BufferManager* bufmgr() { return &bufmgr_; }

 private:
  pgstub::StorageManager smgr_;
  pgstub::BufferManager bufmgr_;
};

/// Scrubs and returns a unique data directory under args.data_dir.
inline std::string FreshDir(const BenchArgs& args, const std::string& tag) {
  const std::string dir = args.data_dir + "/" + tag;
  // Best-effort cleanup of a previous run's relation files.
  const std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "warning: could not reset %s\n", dir.c_str());
  }
  return dir;
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_claim,
                   const BenchArgs& args) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("scale=%.4g of paper dataset sizes, max_queries=%zu\n\n",
              args.scale, args.max_queries);
}

}  // namespace vecdb::bench
