// Interactive SQL shell over MiniDatabase — a psql-flavored REPL for the
// paper's query interface. Reads one statement per line; meta-commands:
//   \q        quit
//   \timing   toggle per-statement timing
//   \help     list the supported SQL surface
//
// Usage: vecdb_shell [data_dir]     (default /tmp/vecdb_shell)
// Also works non-interactively:  echo "CREATE TABLE ..." | vecdb_shell
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/vecdb.h"

using namespace vecdb;

namespace {
void PrintHelp() {
  std::printf(
      "statements:\n"
      "  CREATE TABLE t (id int, vec float[8]);\n"
      "  INSERT INTO t VALUES (1, '0.1,0.2,...'), (2, '[0.3, 0.4, ...]');\n"
      "  CREATE INDEX i ON t USING {ivfflat|ivfpq|ivfsq8|hnsw} (vec)\n"
      "      WITH (clusters=256, m=16, bnn=16, efb=40, sample_ratio=0.01,\n"
      "            engine='pase'|'faiss'|'bridge');\n"
      "  SELECT id FROM t ORDER BY vec <-> '...' [OPTIONS (nprobe=20,\n"
      "      efs=200)] LIMIT 10;      (also <#> inner product, <=> cosine)\n"
      "  EXPLAIN SELECT ...;\n"
      "  DROP INDEX i; / DROP TABLE t;\n");
}
}  // namespace

int main(int argc, char** argv) {
  const std::string data_dir = argc > 1 ? argv[1] : "/tmp/vecdb_shell";
  auto opened = sql::MiniDatabase::Open(data_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open database: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sql::MiniDatabase> db = std::move(opened).ValueOrDie();
  std::shared_ptr<sql::Session> session = db->CreateSession();
  std::printf("vecdb shell — data dir %s. Type \\help for syntax, \\q to "
              "quit.\n",
              data_dir.c_str());

  bool timing = false;
  std::string line;
  while (true) {
    std::printf("vecdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim whitespace.
    const auto begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r\n");
    line = line.substr(begin, end - begin + 1);

    if (line == "\\q" || line == "\\quit" || line == "exit") break;
    if (line == "\\help" || line == "help") {
      PrintHelp();
      continue;
    }
    if (line == "\\timing") {
      timing = !timing;
      std::printf("timing %s\n", timing ? "on" : "off");
      continue;
    }

    Timer timer;
    auto result = session->Execute(line);
    const double millis = timer.ElapsedMillis();
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
    if (!result->rows.empty()) {
      if (result->columns.size() == 2) {
        std::printf("%-12s %-12s\n", "id", "distance");
        for (const auto& row : result->rows) {
          std::printf("%-12lld %-12.4f\n", static_cast<long long>(row.id),
                      row.distance);
        }
      } else {
        std::printf("%-12s\n", "id");
        for (const auto& row : result->rows) {
          std::printf("%-12lld\n", static_cast<long long>(row.id));
        }
      }
      std::printf("(%zu rows)\n", result->rows.size());
    }
    if (timing) std::printf("Time: %.3f ms\n", millis);
  }
  std::printf("\nbye\n");
  return 0;
}
