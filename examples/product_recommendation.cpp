// Product-recommendation scenario: a large embedded catalog compressed with
// IVF_PQ (memory budget), plus the bridged engine showing the paper's
// conclusion — a relational substrate with the §IX-C fixes matches the
// specialized engine on the same workload.
#include <cstdio>

#include "core/vecdb.h"
#include <filesystem>

using namespace vecdb;

int main() {
  // item2vec-style catalog: 20k products, 96-dim embeddings.
  SyntheticOptions data_opt;
  data_opt.dim = 96;
  data_opt.num_base = 20000;
  data_opt.num_queries = 30;  // "users currently browsing"
  data_opt.num_natural_clusters = 50;
  Dataset ds = GenerateClustered(data_opt);
  ComputeGroundTruth(&ds, 10, Metric::kL2);
  std::printf("catalog: %zu products, dim %u\n", ds.num_base, ds.dim);

  const double raw_mb = ds.num_base * ds.dim * 4 / (1024.0 * 1024.0);

  // IVF_PQ compresses each embedding from 384 bytes to m=12 bytes.
  faisslike::IvfPqOptions pq_opt;
  pq_opt.num_clusters = 141;  // ~sqrt(20000)
  pq_opt.pq_m = 12;
  pq_opt.pq_codes = 256;
  pq_opt.sample_ratio = 0.2;
  faisslike::IvfPqIndex pq_index(ds.dim, pq_opt);
  if (Status s = pq_index.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("IVF_PQ: raw %.1f MB -> index %.1f MB (%.0fx compression)\n",
              raw_mb, pq_index.SizeBytes() / (1024.0 * 1024.0),
              raw_mb / (pq_index.SizeBytes() / (1024.0 * 1024.0)));

  SearchParams params;
  params.k = 10;
  params.nprobe = 20;
  auto pq_run = std::move(RunSearchBatch(pq_index, ds, params)).ValueOrDie();
  std::printf("recommendations: %.3f ms/user, recall@10 %.3f "
              "(PQ is lossy by design)\n",
              pq_run.avg_millis, pq_run.recall_at_k);

  // Exact variant for comparison: IVF_FLAT at the same cluster count.
  faisslike::IvfFlatOptions flat_opt;
  flat_opt.num_clusters = 141;
  flat_opt.sample_ratio = 0.2;
  faisslike::IvfFlatIndex flat_index(ds.dim, flat_opt);
  if (Status s = flat_index.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto flat_run =
      std::move(RunSearchBatch(flat_index, ds, params)).ValueOrDie();
  std::printf("IVF_FLAT reference: %.3f ms/user, recall@10 %.3f, "
              "%.1f MB\n",
              flat_run.avg_millis, flat_run.recall_at_k,
              flat_index.SizeBytes() / (1024.0 * 1024.0));

  // The paper's punchline: the bridged generalized engine (durable pages +
  // §IX-C fixes) keeps up with the specialized engine.
  std::filesystem::remove_all("/tmp/vecdb_product_rec");
  auto smgr = std::move(pgstub::StorageManager::Open(
                            "/tmp/vecdb_product_rec", 8192))
                  .ValueOrDie();
  pgstub::BufferManager bufmgr(&smgr, 32768);
  pase::PaseEnv env{&smgr, &bufmgr};
  bridge::BridgedIvfFlatOptions bridge_opt;
  bridge_opt.num_clusters = 141;
  bridge_opt.sample_ratio = 0.2;
  bridge::BridgedIvfFlatIndex bridged(env, ds.dim, bridge_opt);
  if (Status s = bridged.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto bridged_run =
      std::move(RunSearchBatch(bridged, ds, params)).ValueOrDie();
  std::printf("bridged generalized engine: %.3f ms/user, recall@10 %.3f "
              "(%.2fx of specialized)\n",
              bridged_run.avg_millis, bridged_run.recall_at_k,
              bridged_run.avg_millis / flat_run.avg_millis);
  return 0;
}
