// Networked SQL shell over VecClient — the remote twin of vecdb_shell.
// Connects to a running vecdb_server, reads one statement per line, and
// prints results. Ctrl-C cancels the statement in flight (out-of-band
// cancel frame) instead of killing the shell, exactly like psql.
//
// Meta-commands: \q quit, \timing toggle timing, \help syntax summary.
//
// Usage: vecdb_cli [host [port]]     (default 127.0.0.1 5433)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/timer.h"
#include "net/client.h"

using namespace vecdb;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void OnSigint(int) { g_interrupted = 1; }

void PrintHelp() {
  std::printf(
      "statements (executed on the server):\n"
      "  CREATE TABLE t (id int, vec float[8]);\n"
      "  INSERT INTO t VALUES (1, '0.1,0.2,...');\n"
      "  CREATE INDEX i ON t USING {ivfflat|ivfpq|ivfsq8|hnsw} (vec) "
      "WITH (...);\n"
      "  SELECT id FROM t [WHERE ...] ORDER BY vec <-> '...' "
      "[OPTIONS (...)] LIMIT 10;\n"
      "  SET statement_timeout_ms = 500;   SET nprobe = 32;\n"
      "  CANCEL <session-id>;   SHOW SESSIONS;   SHOW METRICS;\n"
      "meta: \\q quit, \\timing toggle timing, \\help this text\n"
      "Ctrl-C cancels the running statement without closing the "
      "connection.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string host = argc > 1 ? argv[1] : "127.0.0.1";
  const uint16_t port =
      argc > 2 ? static_cast<uint16_t>(std::stoul(argv[2])) : 5433;

  auto connected = net::VecClient::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n", host.c_str(), port,
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::VecClient> client = std::move(connected).ValueOrDie();
  std::printf("connected to %s:%u as session %llu. \\help for syntax, \\q "
              "to quit.\n",
              host.c_str(), port,
              static_cast<unsigned long long>(client->session_id()));

  // Ctrl-C → out-of-band cancel frame. The handler only sets a flag; a
  // watcher thread does the actual (non-signal-safe) socket write.
  std::signal(SIGINT, OnSigint);
  std::atomic<bool> shutdown{false};
  std::thread canceller([&] {
    while (!shutdown.load()) {
      if (g_interrupted) {
        g_interrupted = 0;
        std::printf("\ncancel requested\n");
        std::fflush(stdout);
        (void)client->Cancel();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  bool timing = false;
  std::string line;
  while (true) {
    std::printf("vecdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const auto begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r\n");
    line = line.substr(begin, end - begin + 1);

    if (line == "\\q" || line == "\\quit" || line == "exit") break;
    if (line == "\\help" || line == "help") {
      PrintHelp();
      continue;
    }
    if (line == "\\timing") {
      timing = !timing;
      std::printf("timing %s\n", timing ? "on" : "off");
      continue;
    }

    Timer timer;
    auto result = client->Execute(line);
    const double millis = timer.ElapsedMillis();
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      if (result.status().IsIOError()) break;  // connection gone
      continue;
    }
    if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
    if (!result->rows.empty()) {
      if (result->columns.size() == 2) {
        std::printf("%-12s %-12s\n", "id", "distance");
        for (const auto& row : result->rows) {
          std::printf("%-12lld %-12.4f\n", static_cast<long long>(row.id),
                      row.distance);
        }
      } else {
        std::printf("%-12s\n", "id");
        for (const auto& row : result->rows) {
          std::printf("%-12lld\n", static_cast<long long>(row.id));
        }
      }
      std::printf("(%zu rows)\n", result->rows.size());
    }
    if (timing) std::printf("Time: %.3f ms (round trip)\n", millis);
  }
  shutdown.store(true);
  canceller.join();
  client->Close();
  std::printf("bye\n");
  return 0;
}
