// Quickstart: build an index, run a top-k query, check recall.
//
// Demonstrates the three engines behind the shared VectorIndex interface:
// the specialized in-memory engine (Faiss analog), the generalized
// page-resident engine (PASE/PostgreSQL analog), and the bridged engine
// implementing the paper's §IX-C guidelines.
#include <cstdio>
#include <memory>

#include "core/vecdb.h"
#include <filesystem>

using namespace vecdb;

int main() {
  // 1. Make a dataset: 10k 64-dim clustered vectors + 20 queries.
  SyntheticOptions data_opt;
  data_opt.dim = 64;
  data_opt.num_base = 10000;
  data_opt.num_queries = 20;
  Dataset ds = GenerateClustered(data_opt);
  ComputeGroundTruth(&ds, /*k=*/10, Metric::kL2);
  std::printf("dataset: %zu vectors, dim %u\n", ds.num_base, ds.dim);

  // 2. Specialized engine: IVF_FLAT entirely in memory.
  faisslike::IvfFlatOptions faiss_opt;
  faiss_opt.num_clusters = 100;
  faisslike::IvfFlatIndex faiss_index(ds.dim, faiss_opt);
  if (Status s = faiss_index.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s in %.3f s (train %.3f, add %.3f)\n",
              faiss_index.Describe().c_str(),
              faiss_index.build_stats().total_seconds(),
              faiss_index.build_stats().train_seconds,
              faiss_index.build_stats().add_seconds);

  // 3. Search: top-10 with 10 probed buckets.
  SearchParams params;
  params.k = 10;
  params.nprobe = 10;
  auto results =
      std::move(faiss_index.Search(ds.query_vector(0), params)).ValueOrDie();
  std::printf("top-3 for query 0:\n");
  for (size_t i = 0; i < 3 && i < results.size(); ++i) {
    std::printf("  id=%lld dist=%.4f\n",
                static_cast<long long>(results[i].id), results[i].dist);
  }

  // 4. Recall across the whole query batch.
  auto run = std::move(RunSearchBatch(faiss_index, ds, params)).ValueOrDie();
  std::printf("avg query %.3f ms, recall@10 %.3f\n", run.avg_millis,
              run.recall_at_k);

  // 5. The same workload on the generalized (PASE-like) engine: real pages,
  // real buffer manager, real files on disk.
  std::filesystem::remove_all("/tmp/vecdb_quickstart");
  auto smgr = pgstub::StorageManager::Open("/tmp/vecdb_quickstart", 8192);
  if (!smgr.ok()) {
    std::fprintf(stderr, "%s\n", smgr.status().ToString().c_str());
    return 1;
  }
  pgstub::BufferManager bufmgr(&*smgr, 16384);
  pase::PaseEnv env{&*smgr, &bufmgr};
  pase::PaseIvfFlatOptions pase_opt;
  pase_opt.num_clusters = 100;
  pase::PaseIvfFlatIndex pase_index(env, ds.dim, pase_opt);
  if (Status s = pase_index.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "pase build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto pase_run =
      std::move(RunSearchBatch(pase_index, ds, params)).ValueOrDie();
  std::printf("%s: avg query %.3f ms, recall@10 %.3f\n",
              pase_index.Describe().c_str(), pase_run.avg_millis,
              pase_run.recall_at_k);
  std::printf("generalized/specialized query-time ratio: %.1fx\n",
              pase_run.avg_millis / run.avg_millis);
  return 0;
}
