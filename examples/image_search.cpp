// Image-search scenario: an HNSW index over SIFT-like 128-dim descriptors
// (the workload the paper's introduction motivates). Shows the
// recall/latency trade-off of the efs knob and compares the specialized
// engine against the generalized one on the same graph parameters.
#include <cstdio>

#include "core/vecdb.h"
#include <filesystem>

using namespace vecdb;

int main() {
  // A scaled-down analog of SIFT1M (dimensionality preserved at 128).
  const DatasetSpec* spec = FindDataset("SIFT1M");
  Dataset ds = MakePaperAnalog(*spec, /*scale=*/0.008);  // 8000 vectors
  ComputeGroundTruth(&ds, 10, Metric::kL2);
  std::printf("image corpus: %zu descriptors, dim %u, %zu queries\n",
              ds.num_base, ds.dim, ds.num_queries);

  // Specialized engine HNSW (paper Table II defaults: bnn=16, efb=40).
  faisslike::HnswOptions hnsw_opt;
  hnsw_opt.bnn = 16;
  hnsw_opt.efb = 40;
  faisslike::HnswIndex index(ds.dim, hnsw_opt);
  if (Status s = index.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s in %.2f s, size %.1f MB, top level %d\n",
              index.Describe().c_str(),
              index.build_stats().total_seconds(),
              index.SizeBytes() / (1024.0 * 1024.0), index.max_level());

  std::printf("\nefs sweep (recall@10 vs latency):\n");
  std::printf("  %-6s %-12s %-10s\n", "efs", "avg ms", "recall@10");
  for (uint32_t efs : {16, 50, 100, 200, 400}) {
    SearchParams params;
    params.k = 10;
    params.efs = efs;
    auto run = std::move(RunSearchBatch(index, ds, params)).ValueOrDie();
    std::printf("  %-6u %-12.3f %-10.3f\n", efs, run.avg_millis,
                run.recall_at_k);
  }

  // The same workload on the generalized engine: identical algorithm, but
  // every graph hop goes through pages and the buffer manager (RC#2).
  std::filesystem::remove_all("/tmp/vecdb_image_search");
  auto smgr = std::move(pgstub::StorageManager::Open(
                            "/tmp/vecdb_image_search", 8192))
                  .ValueOrDie();
  pgstub::BufferManager bufmgr(&smgr, 32768);
  pase::PaseEnv env{&smgr, &bufmgr};
  pase::PaseHnswOptions pase_opt;
  pase_opt.bnn = 16;
  pase_opt.efb = 40;
  pase::PaseHnswIndex pase_index(env, ds.dim, pase_opt);
  if (Status s = pase_index.Build(ds.base.data(), ds.num_base); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  SearchParams params;
  params.k = 10;
  params.efs = 200;
  auto faiss_run = std::move(RunSearchBatch(index, ds, params)).ValueOrDie();
  auto pase_run =
      std::move(RunSearchBatch(pase_index, ds, params)).ValueOrDie();
  std::printf("\nengine comparison at efs=200:\n");
  std::printf("  %-28s %8.3f ms  recall %.3f  size %6.1f MB\n",
              index.Describe().c_str(), faiss_run.avg_millis,
              faiss_run.recall_at_k, index.SizeBytes() / (1024.0 * 1024.0));
  std::printf("  %-28s %8.3f ms  recall %.3f  size %6.1f MB\n",
              pase_index.Describe().c_str(), pase_run.avg_millis,
              pase_run.recall_at_k,
              pase_index.SizeBytes() / (1024.0 * 1024.0));
  std::printf("  query slowdown %.1fx, space amplification %.1fx "
              "(paper: 2.2x-7.3x and 2.9x-13.3x)\n",
              pase_run.avg_millis / faiss_run.avg_millis,
              static_cast<double>(pase_index.SizeBytes()) /
                  static_cast<double>(index.SizeBytes()));
  return 0;
}
