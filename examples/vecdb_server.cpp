// Standalone vecdb server: opens (or creates) a database directory and
// serves it over the wire protocol on loopback TCP. Pair with vecdb_cli.
//
// Usage: vecdb_server [data_dir [port]]
//   data_dir  defaults to /tmp/vecdb_server
//   port      defaults to 0 (ephemeral; the bound port is printed)
//
// The server runs until stdin reaches EOF (Ctrl-D) — convenient both
// interactively and under a test harness (`vecdb_server dir 0 < /dev/null`
// exits immediately after printing the port).
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "net/server.h"
#include "sql/database.h"

using namespace vecdb;

int main(int argc, char** argv) {
  const std::string data_dir = argc > 1 ? argv[1] : "/tmp/vecdb_server";
  net::ServerOptions server_options;
  if (argc > 2) server_options.listen_port = std::stoul(argv[2]);

  auto opened = sql::MiniDatabase::Open(data_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open database: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sql::MiniDatabase> db = std::move(opened).ValueOrDie();

  auto started = net::VecServer::Start(db.get(), server_options);
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::VecServer> server = std::move(started).ValueOrDie();
  std::printf("vecdb server — data dir %s, listening on 127.0.0.1:%u\n",
              data_dir.c_str(), server->port());
  std::printf("connect with: vecdb_cli 127.0.0.1 %u\n", server->port());
  std::printf("Ctrl-D stops the server.\n");
  std::fflush(stdout);

  // Park until EOF; the server's own threads do all the work.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  std::printf("shutting down (%zu open connections)\n",
              server->connections());
  server->Stop();
  return 0;
}
