// SQL example: the paper's §II-E interface end to end — create a table,
// load vectors, build a PASE index with SQL options, and run top-k queries
// with the `<->` operator, including an EXPLAIN of the chosen plan.
#include <cstdio>
#include <memory>
#include <string>

#include "core/vecdb.h"
#include <filesystem>

using namespace vecdb;

namespace {
void Run(sql::Session* session, const std::string& statement) {
  auto result = session->Execute(statement);
  if (!result.ok()) {
    std::printf("ERROR: %s\n  (%s)\n", result.status().ToString().c_str(),
                statement.c_str());
    return;
  }
  if (!result->message.empty()) {
    std::printf("%s\n", result->message.c_str());
  }
  for (const auto& row : result->rows) {
    if (result->columns.size() == 2) {
      std::printf("  id=%lld  distance=%.4f\n",
                  static_cast<long long>(row.id), row.distance);
    } else {
      std::printf("  id=%lld\n", static_cast<long long>(row.id));
    }
  }
}
}  // namespace

int main() {
  std::filesystem::remove_all("/tmp/vecdb_sql_example");
  std::unique_ptr<sql::MiniDatabase> db =
      std::move(sql::MiniDatabase::Open("/tmp/vecdb_sql_example"))
          .ValueOrDie();
  std::shared_ptr<sql::Session> session = db->CreateSession();

  std::printf("-- schema --\n");
  Run(session.get(), "CREATE TABLE movies (id int, embedding float[8])");

  std::printf("-- load --\n");
  // Tiny hand-made embedding space: action around [1,...], drama around
  // [0,...,1], and one outlier.
  Run(session.get(),
      "INSERT INTO movies VALUES "
      "(1, '1.0, 0.9, 0.1, 0.0, 0.0, 0.1, 0.0, 0.0'), "
      "(2, '0.9, 1.0, 0.0, 0.1, 0.0, 0.0, 0.1, 0.0'), "
      "(3, '0.95, 0.85, 0.05, 0.0, 0.1, 0.0, 0.0, 0.1'), "
      "(4, '0.0, 0.1, 0.9, 1.0, 0.9, 0.0, 0.1, 0.0'), "
      "(5, '0.1, 0.0, 1.0, 0.9, 1.0, 0.1, 0.0, 0.0'), "
      "(6, '0.0, 0.0, 0.95, 1.0, 0.85, 0.0, 0.0, 0.1'), "
      "(7, '0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5')");

  std::printf("-- before an index exists: sequential scan --\n");
  Run(session.get(),
      "EXPLAIN SELECT id FROM movies ORDER BY embedding <-> "
      "'1,0.9,0,0,0,0,0,0' LIMIT 3");
  Run(session.get(),
      "SELECT * FROM movies ORDER BY embedding <-> "
      "'1,0.9,0,0,0,0,0,0' LIMIT 3");

  std::printf("-- create a PASE-style IVF_FLAT index --\n");
  Run(session.get(),
      "CREATE INDEX movies_ivf ON movies USING ivfflat (embedding) "
      "WITH (clusters=2, sample_ratio=1, engine='pase')");

  std::printf("-- with the index: index scan --\n");
  Run(session.get(),
      "EXPLAIN SELECT id FROM movies ORDER BY embedding <-> "
      "'1,0.9,0,0,0,0,0,0' LIMIT 3");
  Run(session.get(),
      "SELECT * FROM movies ORDER BY embedding <-> '1,0.9,0,0,0,0,0,0' "
      "OPTIONS (nprobe=2) LIMIT 3");

  std::printf("-- cosine queries fall back to a sequential scan --\n");
  Run(session.get(),
      "SELECT id FROM movies ORDER BY embedding <=> '0,0,1,1,1,0,0,0' "
      "LIMIT 3");

  std::printf("-- cleanup --\n");
  Run(session.get(), "DROP INDEX movies_ivf");
  Run(session.get(), "DROP TABLE movies");
  return 0;
}
