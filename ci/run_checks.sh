#!/usr/bin/env bash
# Full correctness matrix in one command (tier-1.5 verify):
#
#   Release + -Werror   functional tests, lint, DCHECKs compiled out
#   ASan + UBSan        Debug, so VECDB_DCHECK and the debug-path
#                       CheckInvariants() audits are active
#   TSan                RelWithDebInfo; concurrency_test/thread_pool_test
#                       run under the race detector
#   recovery            crash-recovery fault injection under ASan and the
#                       concurrent logging+checkpoint smoke under TSan
#   sessions            the multi-session front end: full session_test
#                       under ASan (epoch reclamation) and its stress
#                       suite under TSan (snapshot readers vs writers)
#   server              the networked front end: frame-decoder fuzz and
#                       the loopback e2e/cancellation suite under ASan,
#                       the connection-churn stress suite under TSan, and
#                       the wire-overhead bench artifact (BENCH_server.json)
#                       from the Release tree
#   kernels             the kernel/SQ8 dispatch suites re-run with
#                       VECDB_KERNEL_ISA=scalar (proving the override and
#                       the scalar tier), and again under ASan/UBSan per
#                       tier so the SIMD tails and masked loads are
#                       sanitizer-checked (AVX-512 skipped with a notice
#                       when the host lacks avx512f)
#   TSA                 clang, -DVECDB_TSA=ON: Clang Thread Safety Analysis
#                       as -Werror=thread-safety, with negative-compilation
#                       probes proving the gate is live (skipped with a
#                       notice when clang is unavailable)
#   tidy                clang-tidy (bugprone/concurrency/performance,
#                       .clang-tidy) off compile_commands.json (skipped
#                       with a notice when clang-tidy is unavailable)
#
# Usage: ci/run_checks.sh [extra ctest args...]
# Build trees land in build-release/, build-asan/, build-tsan/,
# build-tsa/ (gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  echo "=== ${dir}: configure ($*) ==="
  cmake -B "${dir}" -S . -DVECDB_WERROR=ON "$@"
  echo "=== ${dir}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${dir}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug \
  -DVECDB_SANITIZE="address;undefined"

# Batch-path smoke: exercise the SearchBatch kernels (SGEMM bucket
# selection + per-worker heap reuse) under ASan/UBSan, where the
# thread-pool and buffer-reuse bugs would actually trip.
echo "=== build-asan: batched-search smoke (micro_kernels) ==="
./build-asan/bench/micro_kernels \
  --benchmark_filter='BM_Search(PerQuery|Batched)'

# Filtered-search smoke: drive all three strategies (pre/in/post) across
# the selectivity sweep under ASan/UBSan — the pre-filter survivor scans
# and k-amplification retry loops are where an off-by-one would read past
# a bucket or result buffer.
echo "=== build-asan: filtered-search smoke (ext_filtered_search) ==="
./build-asan/bench/ext_filtered_search --scale=0.002 --max-queries=5

# Recovery stage, part 1: the full fault-injection harness under
# ASan/UBSan. Every sampled crash offset exercises torn-write handling,
# WAL replay, and catalog/orphan GC — recovery code paths touch freed
# and partially-initialized state more than any other subsystem, which
# is exactly where the sanitizers earn their keep.
echo "=== build-asan: crash-recovery fault-injection (recovery_test) ==="
./build-asan/tests/recovery_test

# Session front-end smoke: admission queueing, snapshot-bounded readers,
# and the mixed eight-session workload under ASan/UBSan — the epoch
# retire/reclaim path frees snapshots whose readers just left, exactly the
# use-after-free shape ASan exists to catch.
echo "=== build-asan: session front-end (session_test) ==="
./build-asan/tests/session_test

# Networked front end, part 1: the frame-decoder fuzz/property suite under
# ASan/UBSan — torn frames, bit flips, and hostile length fields must fail
# as clean Corruption errors with zero out-of-bounds reads. Then the full
# loopback e2e suite (concurrent clients, CANCEL SQL, out-of-band cancel
# frames, statement timeouts, protocol-error handling): the server's
# buffer handoffs between scheduler and workers run with poisoned
# redzones around every frame.
echo "=== build-asan: wire-protocol fuzz (net_frame_test) ==="
./build-asan/tests/net_frame_test
echo "=== build-asan: server loopback e2e (net_server_test) ==="
./build-asan/tests/net_server_test

# Kernel-dispatch stage, part 1: force the scalar tier and re-run the
# dispatch/SQ8/IVF_SQ8 suites in the already-built Release tree. The
# kernel_dispatch_test ActiveTableMatchesResolutionRule case asserts the
# override actually resolved to scalar, so this stage fails loudly if the
# env plumbing regresses rather than silently re-testing the SIMD tier.
echo "=== build-release: kernel suites under VECDB_KERNEL_ISA=scalar ==="
VECDB_KERNEL_ISA=scalar ctest --test-dir build-release \
  --output-on-failure -R '^(kernel_dispatch_test|sq8_test|ivf_sq8_test)$'

# Kernel-dispatch stage, part 2: the same suites under ASan/UBSan once per
# ISA tier the host can run. The masked tails and 64-bit partial loads in
# the AVX2/AVX-512 kernels are exactly where an out-of-bounds read would
# hide from functional tests; each forced tier pins the kernels the
# sanitizers actually execute.
KERNEL_TIERS=(scalar avx2)
if grep -q avx512f /proc/cpuinfo 2>/dev/null; then
  KERNEL_TIERS+=(avx512)
else
  echo "NOTICE: host lacks avx512f; SKIPPING the AVX-512 sanitizer pass"
  echo "NOTICE: (the avx512 tier self-skips in tests but cannot execute here)."
fi
for tier in "${KERNEL_TIERS[@]}"; do
  echo "=== build-asan: kernel suites under VECDB_KERNEL_ISA=${tier} ==="
  VECDB_KERNEL_ISA="${tier}" ctest --test-dir build-asan \
    --output-on-failure -R '^(kernel_dispatch_test|sq8_test|ivf_sq8_test)$'
done

run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVECDB_SANITIZE=thread

# Metrics-registry smoke: batched searches flush worker-local counters into
# one shared MetricsRegistry; run it under TSan so a racy shard or histogram
# bucket shows up as a hard failure, not a lost update.
echo "=== build-tsan: concurrent metrics-registry smoke (micro_kernels) ==="
./build-tsan/bench/micro_kernels \
  --benchmark_filter='BM_SearchBatchedMetricsOn'

# In-filter bitmap smoke: concurrent FilteredSearch calls share one
# read-only SelectionVector and flush filter.* counters into the shared
# registry; TSan turns a racy bitmap word or counter shard into a failure.
echo "=== build-tsan: concurrent in-filter bitmap smoke (filter_test) ==="
./build-tsan/tests/filter_test \
  --gtest_filter='FilteredSearchTest.ConcurrentInFilterSharedBitmap'

# Recovery stage, part 2: writers appending WAL records through the
# buffer manager while a checkpointer loops flush/sync/checkpoint/rotate.
# The WAL's internal mutex, the sticky wal_error latch, and rotation's
# swap of the underlying file are all shared state; TSan makes any
# unlocked access a hard failure instead of a one-in-a-thousand torn log.
echo "=== build-tsan: concurrent logging+checkpoint smoke (recovery_test) ==="
./build-tsan/tests/recovery_test \
  --gtest_filter='FaultInjectionTest.ConcurrentLoggingAndCheckpoint'

# Session stress under the race detector: lock-free snapshot readers
# overlap RCU-style snapshot publication and epoch reclamation, plus the
# admission controller's cv/queue handoff — every shared word here must be
# an atomic or under a mutex, and TSan proves it on the real workload.
echo "=== build-tsan: multi-session stress (session_test) ==="
./build-tsan/tests/session_test --gtest_filter='SessionStressTest.*'

# Networked front end, part 2: connection churn + concurrent statements +
# Stop() landing mid-statement, under the race detector. The per-Conn
# outbound buffer, the pending-statement queue, and the submit-vs-shutdown
# mutex are the shared state; TSan turns any unlocked touch into a hard
# failure instead of a corrupted frame once a week.
echo "=== build-tsan: server connection-churn stress (net_server_test) ==="
./build-tsan/tests/net_server_test --gtest_filter='ServerStressTest.*'

# Static lock discipline: compile everything under clang with Thread
# Safety Analysis promoted to errors. The tsa_probe ctest entries (and the
# configure-time try_compile probes) prove the gate actually rejects
# unguarded accesses, so a flag regression cannot silently disable it.
if command -v clang++ >/dev/null 2>&1; then
  echo "=== build-tsa: configure (clang, VECDB_TSA=ON) ==="
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Release -DVECDB_TSA=ON
  echo "=== build-tsa: build (-Werror=thread-safety) ==="
  cmake --build build-tsa -j "${JOBS}"
  echo "=== build-tsa: TSA gate-liveness probes ==="
  ctest --test-dir build-tsa --output-on-failure -R '^tsa_probe_'
else
  echo "NOTICE: clang++ not found; SKIPPING the VECDB_TSA static"
  echo "NOTICE: lock-discipline stage (install clang to enforce it)."
fi

# clang-tidy gate off the compile_commands.json build-release exported.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== tidy: clang-tidy over src/ (build-release database) ==="
  bash tools/run_clang_tidy.sh build-release src
else
  echo "NOTICE: clang-tidy not found; SKIPPING the tidy stage"
  echo "NOTICE: (install clang-tidy to enforce it)."
fi

# Networked front end, part 3: the wire-overhead/throughput artifact from
# the optimized tree — BENCH_server.json records loopback-vs-inproc
# statement latency and multi-client scaling for CI trend lines.
echo "=== build-release: server overhead bench (ext_server) ==="
./build-release/bench/ext_server BENCH_server.json

echo "=== lint (standalone) ==="
python3 tools/lint.py .

echo "All checks passed."
