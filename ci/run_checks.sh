#!/usr/bin/env bash
# Full correctness matrix in one command (tier-1.5 verify):
#
#   Release + -Werror   functional tests, lint, DCHECKs compiled out
#   ASan + UBSan        Debug, so VECDB_DCHECK and the debug-path
#                       CheckInvariants() audits are active
#   TSan                RelWithDebInfo; concurrency_test/thread_pool_test
#                       run under the race detector
#
# Usage: ci/run_checks.sh [extra ctest args...]
# Build trees land in build-release/, build-asan/, build-tsan/ (gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  echo "=== ${dir}: configure ($*) ==="
  cmake -B "${dir}" -S . -DVECDB_WERROR=ON "$@"
  echo "=== ${dir}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${dir}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug \
  -DVECDB_SANITIZE="address;undefined"

# Batch-path smoke: exercise the SearchBatch kernels (SGEMM bucket
# selection + per-worker heap reuse) under ASan/UBSan, where the
# thread-pool and buffer-reuse bugs would actually trip.
echo "=== build-asan: batched-search smoke (micro_kernels) ==="
./build-asan/bench/micro_kernels \
  --benchmark_filter='BM_Search(PerQuery|Batched)'

# Filtered-search smoke: drive all three strategies (pre/in/post) across
# the selectivity sweep under ASan/UBSan — the pre-filter survivor scans
# and k-amplification retry loops are where an off-by-one would read past
# a bucket or result buffer.
echo "=== build-asan: filtered-search smoke (ext_filtered_search) ==="
./build-asan/bench/ext_filtered_search --scale=0.002 --max-queries=5

run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVECDB_SANITIZE=thread

# Metrics-registry smoke: batched searches flush worker-local counters into
# one shared MetricsRegistry; run it under TSan so a racy shard or histogram
# bucket shows up as a hard failure, not a lost update.
echo "=== build-tsan: concurrent metrics-registry smoke (micro_kernels) ==="
./build-tsan/bench/micro_kernels \
  --benchmark_filter='BM_SearchBatchedMetricsOn'

# In-filter bitmap smoke: concurrent FilteredSearch calls share one
# read-only SelectionVector and flush filter.* counters into the shared
# registry; TSan turns a racy bitmap word or counter shard into a failure.
echo "=== build-tsan: concurrent in-filter bitmap smoke (filter_test) ==="
./build-tsan/tests/filter_test \
  --gtest_filter='FilteredSearchTest.ConcurrentInFilterSharedBitmap'

echo "=== lint (standalone) ==="
python3 tools/lint.py .

echo "All checks passed."
